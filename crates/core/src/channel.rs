//! RT channels and their per-link decomposition.
//!
//! An RT channel is the paper's unit of real-time service: a virtual
//! connection between two end nodes characterised by `{P_i, C_i, d_i}` —
//! period, amount of data per period and relative end-to-end deadline, all
//! expressed in maximum-sized-frame time slots (§18.2.2).  For scheduling,
//! each channel is decomposed into two supposed tasks (Eq. 18.6/18.7), one
//! on the source's uplink with deadline `d_iu` and one on the destination's
//! downlink with deadline `d_id`, subject to
//!
//! * `d_i = d_iu + d_id`  (Eq. 18.8), and
//! * `d_iu, d_id ≥ C_i`   (Eq. 18.9, required whenever `d_i ≥ 2·C_i`; a
//!   channel with `d_i < 2·C_i` can never be feasible on a store-and-forward
//!   switch).

use rt_edf::PeriodicTask;
use rt_types::{ChannelId, Ipv4Address, MacAddr, NodeId, RtError, RtResult, Slots};

/// The traffic contract of an RT channel: `{P_i, C_i, d_i}` in slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RtChannelSpec {
    /// Period `P_i`: a message of `C_i` frames is generated every `P_i`
    /// slots.
    pub period: Slots,
    /// Capacity `C_i`: number of maximum-sized frames per period.
    pub capacity: Slots,
    /// Relative end-to-end deadline `d_i`.
    pub deadline: Slots,
}

impl RtChannelSpec {
    /// The parameters used throughout the paper's evaluation (Figure 18.5):
    /// `C_i = 3`, `P_i = 100`, `d_i = 40`.
    pub fn paper_default() -> Self {
        RtChannelSpec {
            period: Slots::new(100),
            capacity: Slots::new(3),
            deadline: Slots::new(40),
        }
    }

    /// Construct a spec and validate it.
    pub fn new(period: Slots, capacity: Slots, deadline: Slots) -> RtResult<Self> {
        let spec = RtChannelSpec {
            period,
            capacity,
            deadline,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Check the invariants a channel must satisfy before it can even be
    /// considered for admission.
    pub fn validate(&self) -> RtResult<()> {
        if self.period.is_zero() {
            return Err(RtError::InvalidChannelSpec(
                "period must be positive".into(),
            ));
        }
        if self.capacity.is_zero() {
            return Err(RtError::InvalidChannelSpec(
                "capacity must be positive".into(),
            ));
        }
        if self.capacity > self.period {
            return Err(RtError::InvalidChannelSpec(format!(
                "capacity {} exceeds period {}",
                self.capacity, self.period
            )));
        }
        // Paper: "if D_i < 2C_i then the channel cannot, by definition, be
        // EDF-feasible for a store-and-forward switch."
        if self.deadline < self.capacity.saturating_mul(2) {
            return Err(RtError::InvalidChannelSpec(format!(
                "deadline {} is shorter than twice the capacity {} (store-and-forward needs both link deadlines >= C)",
                self.deadline, self.capacity
            )));
        }
        Ok(())
    }

    /// Utilisation `C_i / P_i` contributed by this channel to each of its two
    /// links.
    pub fn utilisation(&self) -> f64 {
        self.capacity.get() as f64 / self.period.get() as f64
    }
}

/// A concrete split of the end-to-end deadline over the two links.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeadlineSplit {
    /// `d_iu`: worst-case delivery budget on the uplink (source → switch).
    pub uplink: Slots,
    /// `d_id`: worst-case delivery budget on the downlink (switch →
    /// destination).
    pub downlink: Slots,
}

impl DeadlineSplit {
    /// Build a split and verify Eq. 18.8 / 18.9 against `spec`.
    pub fn new(spec: &RtChannelSpec, uplink: Slots, downlink: Slots) -> RtResult<Self> {
        let split = DeadlineSplit { uplink, downlink };
        split.validate(spec)?;
        Ok(split)
    }

    /// Build a split from the uplink fraction `U_part ∈ [0, 1]` (Eq. 18.11),
    /// rounding to whole slots and clamping both halves to at least `C_i`.
    pub fn from_upart(spec: &RtChannelSpec, upart: f64) -> RtResult<Self> {
        if !(0.0..=1.0).contains(&upart) || upart.is_nan() {
            return Err(RtError::InvalidPartition {
                reason: format!("U_part {upart} is outside [0, 1]"),
            });
        }
        let d = spec.deadline.get();
        let c = spec.capacity.get();
        // Round to the nearest slot, then clamp so both halves keep >= C.
        let mut up = (upart * d as f64).round() as u64;
        up = up.clamp(c, d.saturating_sub(c));
        let down = d - up;
        DeadlineSplit::new(spec, Slots::new(up), Slots::new(down))
    }

    /// The symmetric split `d/2, d - d/2` used by SDPS.
    pub fn symmetric(spec: &RtChannelSpec) -> RtResult<Self> {
        let half = spec.deadline / 2;
        DeadlineSplit::new(spec, half, spec.deadline - half)
    }

    /// Verify Eq. 18.8 (`d_iu + d_id = d_i`) and Eq. 18.9 (both ≥ `C_i`).
    pub fn validate(&self, spec: &RtChannelSpec) -> RtResult<()> {
        if self.uplink + self.downlink != spec.deadline {
            return Err(RtError::InvalidPartition {
                reason: format!(
                    "d_iu {} + d_id {} != d_i {}",
                    self.uplink, self.downlink, spec.deadline
                ),
            });
        }
        if self.uplink < spec.capacity || self.downlink < spec.capacity {
            return Err(RtError::InvalidPartition {
                reason: format!(
                    "per-link deadline below capacity: d_iu {}, d_id {}, C {}",
                    self.uplink, self.downlink, spec.capacity
                ),
            });
        }
        Ok(())
    }

    /// The uplink fraction `U_part = d_iu / d_i` (Eq. 18.11).
    pub fn upart(&self, spec: &RtChannelSpec) -> f64 {
        self.uplink.get() as f64 / spec.deadline.get() as f64
    }

    /// The downlink fraction `D_part = 1 − U_part` (Eq. 18.12).
    pub fn dpart(&self, spec: &RtChannelSpec) -> f64 {
        1.0 - self.upart(spec)
    }
}

/// The addressing information of a channel endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Endpoint {
    /// The node.
    pub node: NodeId,
    /// Its MAC address.
    pub mac: MacAddr,
    /// Its IPv4 address.
    pub ip: Ipv4Address,
}

impl Endpoint {
    /// The canonical simulated addressing of `node`.
    pub fn for_node(node: NodeId) -> Self {
        Endpoint {
            node,
            mac: MacAddr::for_node(node),
            ip: Ipv4Address::for_node(node),
        }
    }
}

/// An established RT channel: spec + endpoints + the accepted deadline split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtChannel {
    /// Network-unique identifier assigned by the switch.
    pub id: ChannelId,
    /// Source endpoint.
    pub source: Endpoint,
    /// Destination endpoint.
    pub destination: Endpoint,
    /// The traffic contract.
    pub spec: RtChannelSpec,
    /// The deadline split in force.
    pub split: DeadlineSplit,
}

impl RtChannel {
    /// The supposed task on the source's uplink (Eq. 18.6).
    pub fn uplink_task(&self) -> RtResult<PeriodicTask> {
        PeriodicTask::new(self.spec.period, self.spec.capacity, self.split.uplink)
    }

    /// The supposed task on the destination's downlink (Eq. 18.7).
    pub fn downlink_task(&self) -> RtResult<PeriodicTask> {
        PeriodicTask::new(self.spec.period, self.spec.capacity, self.split.downlink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_types::rng::Xoshiro256;

    fn spec(p: u64, c: u64, d: u64) -> RtChannelSpec {
        RtChannelSpec {
            period: Slots::new(p),
            capacity: Slots::new(c),
            deadline: Slots::new(d),
        }
    }

    #[test]
    fn paper_default_is_valid() {
        let s = RtChannelSpec::paper_default();
        assert!(s.validate().is_ok());
        assert_eq!(s.period, Slots::new(100));
        assert_eq!(s.capacity, Slots::new(3));
        assert_eq!(s.deadline, Slots::new(40));
        assert!((s.utilisation() - 0.03).abs() < 1e-12);
    }

    #[test]
    fn spec_validation() {
        assert!(spec(0, 1, 2).validate().is_err());
        assert!(spec(10, 0, 2).validate().is_err());
        assert!(spec(10, 11, 30).validate().is_err());
        // D < 2C rejected (store-and-forward argument from the paper).
        assert!(spec(10, 3, 5).validate().is_err());
        assert!(spec(10, 3, 6).validate().is_ok());
        assert!(RtChannelSpec::new(Slots::new(10), Slots::new(3), Slots::new(6)).is_ok());
        assert!(RtChannelSpec::new(Slots::new(10), Slots::new(3), Slots::new(5)).is_err());
    }

    #[test]
    fn symmetric_split_matches_sdps_definition() {
        let s = RtChannelSpec::paper_default();
        let split = DeadlineSplit::symmetric(&s).unwrap();
        assert_eq!(split.uplink, Slots::new(20));
        assert_eq!(split.downlink, Slots::new(20));
        assert!((split.upart(&s) - 0.5).abs() < 1e-12);
        assert!((split.dpart(&s) - 0.5).abs() < 1e-12);

        // Odd deadline: halves differ by one but still sum to d.
        let s = spec(100, 3, 41);
        let split = DeadlineSplit::symmetric(&s).unwrap();
        assert_eq!(split.uplink + split.downlink, Slots::new(41));
    }

    #[test]
    fn from_upart_clamps_to_capacity() {
        let s = RtChannelSpec::paper_default();
        // An extreme fraction cannot push a side below C=3.
        let split = DeadlineSplit::from_upart(&s, 0.999).unwrap();
        assert_eq!(split.downlink, Slots::new(3));
        assert_eq!(split.uplink, Slots::new(37));
        let split = DeadlineSplit::from_upart(&s, 0.0).unwrap();
        assert_eq!(split.uplink, Slots::new(3));
        assert!(DeadlineSplit::from_upart(&s, 1.5).is_err());
        assert!(DeadlineSplit::from_upart(&s, f64::NAN).is_err());
    }

    #[test]
    fn split_validation_enforces_equations() {
        let s = RtChannelSpec::paper_default();
        // Eq. 18.8 violated.
        assert!(DeadlineSplit::new(&s, Slots::new(10), Slots::new(20)).is_err());
        // Eq. 18.9 violated.
        assert!(DeadlineSplit::new(&s, Slots::new(38), Slots::new(2)).is_err());
        // Valid.
        assert!(DeadlineSplit::new(&s, Slots::new(30), Slots::new(10)).is_ok());
    }

    #[test]
    fn channel_tasks_use_split_deadlines() {
        let s = RtChannelSpec::paper_default();
        let ch = RtChannel {
            id: ChannelId::new(1),
            source: Endpoint::for_node(NodeId::new(0)),
            destination: Endpoint::for_node(NodeId::new(1)),
            spec: s,
            split: DeadlineSplit::new(&s, Slots::new(30), Slots::new(10)).unwrap(),
        };
        let up = ch.uplink_task().unwrap();
        assert_eq!(up.relative_deadline(), Slots::new(30));
        assert_eq!(up.period(), Slots::new(100));
        assert_eq!(up.capacity(), Slots::new(3));
        let down = ch.downlink_task().unwrap();
        assert_eq!(down.relative_deadline(), Slots::new(10));
    }

    #[test]
    fn endpoint_for_node_addresses() {
        let e = Endpoint::for_node(NodeId::new(5));
        assert_eq!(e.mac, MacAddr::for_node(NodeId::new(5)));
        assert_eq!(e.ip, Ipv4Address::for_node(NodeId::new(5)));
    }

    /// from_upart always satisfies Eq. 18.8 and 18.9 for valid specs.
    #[test]
    fn prop_from_upart_valid() {
        let mut rng = Xoshiro256::new(0xc4a2_0001);
        for _ in 0..512 {
            let p = rng.range_inclusive(4, 999);
            let c = rng.range_inclusive(1, 19).min(p);
            let extra = rng.below(200);
            let upart = rng.unit();
            let d = 2 * c + extra;
            let s = spec(p, c, d);
            if s.validate().is_err() {
                continue;
            }
            let split = DeadlineSplit::from_upart(&s, upart).unwrap();
            assert_eq!(split.uplink + split.downlink, s.deadline);
            assert!(split.uplink >= s.capacity);
            assert!(split.downlink >= s.capacity);
        }
    }
}
