//! Glue: the complete RT-layer stack running over the simulated switched
//! Ethernet.
//!
//! [`RtNetwork`] instantiates a fabric — the single-switch star of §18.1 by
//! default, or an arbitrary multi-switch tree [`Topology`] (the paper's
//! stated future work) — and wires the control plane into it:
//!
//! * each end node gets an [`RtLayer`],
//! * the managing switch gets a channel manager — a
//!   [`SwitchChannelManager`] on the star, a
//!   [`crate::multihop::FabricChannelManager`] (admission over every link of
//!   the route, multi-hop deadline partitioning) on a fabric,
//! * every RT-layer action (RequestFrame, ResponseFrame, data frame,
//!   TeardownFrame) is carried as a real Ethernet frame through the
//!   [`rt_netsim::Simulator`], so channel establishment itself competes for
//!   the links — and crosses the trunks — exactly as in the paper.
//!
//! On top of that the type offers the conveniences the experiments need:
//! establishing channels and waiting for the handshake to complete, driving
//! periodic traffic on established channels, injecting best-effort cross
//! traffic, and validating measured end-to-end delays against the Eq. 18.1
//! bound `d_i + T_latency` (with `T_latency` hop-count-aware on multi-hop
//! paths).

use std::collections::BTreeMap;

use rt_frames::{EthernetFrame, Frame};
use rt_netsim::{Delivery, SimConfig, Simulator};
use rt_types::constants::ETHERTYPE_IPV4;
use rt_types::{
    ChannelId, ConnectionRequestId, Duration, HopLink, Ipv4Address, MacAddr, NodeId, RtError,
    RtResult, SimTime, Slots, Topology,
};

use crate::admission::AdmissionController;
use crate::channel::RtChannelSpec;
use crate::dps::DpsKind;
use crate::manager::{SwitchAction, SwitchChannelManager};
use crate::multihop::{FabricChannelManager, MultiHopAdmission, MultiHopDps};
use crate::rtlayer::{EstablishmentOutcome, ReceivedMessage, RtLayer, RtLayerConfig, TxChannel};
use crate::system_state::SystemState;

/// Configuration of a simulated RT network.
#[derive(Debug, Clone)]
pub struct RtNetworkConfig {
    /// The data-plane simulator configuration.
    pub sim: SimConfig,
    /// Which deadline-partitioning scheme the switch uses (single-switch
    /// star mode).
    pub dps: DpsKind,
    /// The end nodes attached to the switch (star mode; ignored when a
    /// topology is given — the topology's attachments win).
    pub nodes: Vec<NodeId>,
    /// Per-node limit on incoming channels (`None` = unlimited).
    pub max_incoming_channels: Option<usize>,
    /// An explicit multi-switch topology.  `None` builds the single-switch
    /// star over `nodes`.
    pub topology: Option<Topology>,
    /// The multi-hop deadline-partitioning scheme (used only with an
    /// explicit topology).
    pub multihop_dps: MultiHopDps,
}

impl RtNetworkConfig {
    /// A star network of `n` nodes (ids `0..n`) with default simulator
    /// settings and the given DPS.
    pub fn with_nodes(n: u32, dps: DpsKind) -> Self {
        RtNetworkConfig {
            sim: SimConfig::default(),
            dps,
            nodes: (0..n).map(NodeId::new).collect(),
            max_incoming_channels: None,
            topology: None,
            multihop_dps: MultiHopDps::Asymmetric,
        }
    }

    /// A multi-switch fabric over `topology` with default simulator
    /// settings and the given multi-hop DPS.
    pub fn with_topology(topology: Topology, multihop_dps: MultiHopDps) -> Self {
        RtNetworkConfig {
            sim: SimConfig::default(),
            dps: DpsKind::Asymmetric,
            nodes: topology.nodes().collect(),
            max_incoming_channels: None,
            topology: Some(topology),
            multihop_dps,
        }
    }
}

/// A delivered real-time message together with when and where it arrived.
#[derive(Debug, Clone)]
pub struct DeliveredMessage {
    /// The receiving node.
    pub receiver: NodeId,
    /// The decoded message.
    pub message: ReceivedMessage,
    /// When the last bit arrived.
    pub delivered_at: SimTime,
    /// Whether the frame arrived after its stamped absolute deadline.
    pub missed_deadline: bool,
}

/// The channel-management software of the managing switch: star or fabric.
#[derive(Debug)]
enum NetworkManager {
    /// Single-switch star: the paper's §18.3 admission over two links.
    Star(SwitchChannelManager),
    /// Multi-switch tree: per-link admission along the whole route.
    Fabric(FabricChannelManager),
}

/// The full stack: simulator + switch manager + per-node RT layers.
pub struct RtNetwork {
    sim: Simulator,
    manager: NetworkManager,
    layers: BTreeMap<u32, RtLayer>,
    outcomes: BTreeMap<(u32, u8), EstablishmentOutcome>,
    received: Vec<DeliveredMessage>,
    be_received: u64,
    t_latency: Duration,
}

impl std::fmt::Debug for RtNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RtNetwork")
            .field("nodes", &self.layers.len())
            .field("channels", &self.channel_count())
            .field("now", &self.sim.now())
            .finish()
    }
}

impl RtNetwork {
    /// Build the network.
    pub fn new(config: RtNetworkConfig) -> Self {
        let (sim, manager) = match config.topology {
            None => {
                let sim = Simulator::new(config.sim, config.nodes.iter().copied());
                let admission = AdmissionController::new(
                    SystemState::with_nodes(config.nodes.iter().copied()),
                    config.dps.build(),
                );
                (
                    sim,
                    NetworkManager::Star(SwitchChannelManager::new(admission)),
                )
            }
            Some(topology) => {
                let sim = Simulator::with_topology(config.sim, topology.clone())
                    .expect("RtNetworkConfig carries a valid topology");
                let admission = MultiHopAdmission::new(topology, config.multihop_dps);
                (
                    sim,
                    NetworkManager::Fabric(FabricChannelManager::new(admission)),
                )
            }
        };
        // Eq. 18.1's constant term for the two-hop star path; multi-hop
        // channels get a per-channel override once their route is known.
        let t_latency = config.sim.t_latency();
        let layer_config = RtLayerConfig {
            link_speed: config.sim.link_speed,
            t_latency,
            max_incoming_channels: config.max_incoming_channels,
        };
        let layers: BTreeMap<u32, RtLayer> = sim
            .topology()
            .nodes()
            .map(|n| (n.get(), RtLayer::new(n, layer_config)))
            .collect();
        RtNetwork {
            sim,
            manager,
            layers,
            outcomes: BTreeMap::new(),
            received: Vec::new(),
            be_received: 0,
            t_latency,
        }
    }

    /// The underlying simulator (read access for statistics).
    pub fn simulator(&self) -> &Simulator {
        &self.sim
    }

    /// The switch-side channel manager of a single-switch star.
    ///
    /// # Panics
    /// Panics on a multi-switch fabric — use
    /// [`RtNetwork::fabric_manager`] there.
    pub fn manager(&self) -> &SwitchChannelManager {
        match &self.manager {
            NetworkManager::Star(m) => m,
            NetworkManager::Fabric(_) => {
                panic!("this network runs a multi-switch fabric; use fabric_manager()")
            }
        }
    }

    /// The channel manager of a multi-switch fabric, or `None` on a star.
    pub fn fabric_manager(&self) -> Option<&FabricChannelManager> {
        match &self.manager {
            NetworkManager::Star(_) => None,
            NetworkManager::Fabric(m) => Some(m),
        }
    }

    /// Established channel count, in either mode.
    pub fn channel_count(&self) -> usize {
        match &self.manager {
            NetworkManager::Star(m) => m.channel_count(),
            NetworkManager::Fabric(m) => m.channel_count(),
        }
    }

    /// The RT layer of `node`.
    pub fn layer(&self, node: NodeId) -> Option<&RtLayer> {
        self.layers.get(&node.get())
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// The constant latency term `T_latency` (Eq. 18.1) of a two-hop star
    /// path in this network.
    pub fn t_latency(&self) -> Duration {
        self.t_latency
    }

    /// The end-to-end delay bound `d_i + T_latency` (Eq. 18.1) for a
    /// star-path channel with contract `spec`.
    pub fn deadline_bound(&self, spec: &RtChannelSpec) -> Duration {
        self.sim
            .config()
            .link_speed
            .slots_to_duration(spec.deadline)
            + self.t_latency
    }

    /// The hop-count-aware end-to-end delay bound of an *established*
    /// channel: `d_i·slot + T_latency(hops)` — the multi-hop analogue of
    /// Eq. 18.1.  `None` if the channel is unknown.
    pub fn channel_deadline_bound(&self, channel: ChannelId) -> Option<Duration> {
        let link_speed = self.sim.config().link_speed;
        match &self.manager {
            NetworkManager::Star(m) => m
                .admission()
                .state()
                .channel(channel)
                .map(|ch| link_speed.slots_to_duration(ch.spec.deadline) + self.t_latency),
            NetworkManager::Fabric(m) => m.channel(channel).map(|ch| {
                link_speed.slots_to_duration(ch.spec.deadline)
                    + self.sim.config().t_latency_for_hops(ch.path.len())
            }),
        }
    }

    /// Real-time messages delivered to their destination so far.
    pub fn received_messages(&self) -> &[DeliveredMessage] {
        &self.received
    }

    /// Best-effort frames delivered to end nodes so far.
    pub fn best_effort_received(&self) -> u64 {
        self.be_received
    }

    // --- control plane -------------------------------------------------------

    /// Establish an RT channel by running the full handshake over the
    /// simulated network.  Returns the established channel, or `None` if the
    /// switch or the destination rejected it.
    ///
    /// On a fabric, a successful establishment also registers the channel's
    /// per-hop EDF deadline budgets with every port of its route and the
    /// hop-count-aware `T_latency` with the source's RT layer.
    pub fn establish_channel(
        &mut self,
        source: NodeId,
        destination: NodeId,
        spec: RtChannelSpec,
    ) -> RtResult<Option<TxChannel>> {
        let now = self.sim.now();
        let (request_id, eth) = self
            .layers
            .get_mut(&source.get())
            .ok_or(RtError::UnknownNode(source))?
            .request_channel(destination, spec)?;
        self.sim.inject(source, eth, now)?;
        self.pump()?;
        match self.outcomes.remove(&(source.get(), request_id.get())) {
            Some(EstablishmentOutcome::Established(tx)) => {
                self.finish_fabric_establishment(source, &tx);
                Ok(Some(tx))
            }
            Some(EstablishmentOutcome::Rejected { .. }) => Ok(None),
            None => Err(RtError::ProtocolViolation(format!(
                "handshake for request {request_id} from {source} did not complete"
            ))),
        }
    }

    /// After a fabric handshake completes: push the per-hop deadline
    /// schedule into the simulator and the per-channel `T_latency` into the
    /// source RT layer.
    fn finish_fabric_establishment(&mut self, source: NodeId, tx: &TxChannel) {
        let NetworkManager::Fabric(manager) = &self.manager else {
            return;
        };
        let Some(channel) = manager.channel(tx.id) else {
            return;
        };
        let config = *self.sim.config();
        let link_speed = config.link_speed;
        let hops = channel.path.len();
        // Cumulative per-hop budgets: by the end of link k the frame has
        // consumed the first k per-link deadlines plus the constant
        // overheads of k link traversals.
        let mut offsets: Vec<(HopLink, Duration)> = Vec::with_capacity(hops);
        let mut cumulative = Slots::ZERO;
        for (k, (link, deadline)) in channel
            .path
            .iter()
            .zip(channel.link_deadlines.iter())
            .enumerate()
        {
            cumulative += *deadline;
            let offset =
                link_speed.slots_to_duration(cumulative) + config.t_latency_for_hops(k + 1);
            offsets.push((*link, offset));
        }
        self.sim.set_channel_hop_schedule(tx.id, offsets);
        if let Some(layer) = self.layers.get_mut(&source.get()) {
            layer.set_channel_t_latency(tx.id, config.t_latency_for_hops(hops));
        }
    }

    /// Tear down an established channel (source side), releasing its
    /// capacity at the switch.
    pub fn teardown_channel(&mut self, source: NodeId, channel: ChannelId) -> RtResult<()> {
        let now = self.sim.now();
        let eth = self
            .layers
            .get_mut(&source.get())
            .ok_or(RtError::UnknownNode(source))?
            .teardown_channel(channel)?;
        self.sim.inject(source, eth, now)?;
        self.pump()
    }

    // --- data plane ----------------------------------------------------------

    /// Schedule `count` periodic messages on an established channel,
    /// starting at `start` and spaced by the channel's period.  Each message
    /// is `C_i` frames of `payload_len` bytes, all stamped with the same
    /// absolute deadline (they belong to the same periodic message).
    pub fn send_periodic(
        &mut self,
        source: NodeId,
        channel: ChannelId,
        count: u64,
        payload_len: usize,
        start: SimTime,
    ) -> RtResult<()> {
        let layer = self
            .layers
            .get_mut(&source.get())
            .ok_or(RtError::UnknownNode(source))?;
        let spec = layer
            .tx_channel(channel)
            .ok_or(RtError::UnknownChannel(channel))?
            .spec;
        let period = self.sim.config().link_speed.slots_to_duration(spec.period);
        let start = start.max(self.sim.now());
        for k in 0..count {
            let gen = start + period.saturating_mul(k);
            for _ in 0..spec.capacity.get() {
                let eth = layer.prepare_data(channel, vec![0u8; payload_len], gen)?;
                self.sim.inject(source, eth, gen)?;
            }
        }
        Ok(())
    }

    /// Inject a single best-effort (non-RT) UDP frame from `source` to
    /// `destination` at time `at`.
    pub fn send_best_effort(
        &mut self,
        source: NodeId,
        destination: NodeId,
        payload_len: usize,
        at: SimTime,
    ) -> RtResult<()> {
        let udp = rt_frames::UdpHeader::new(0x2000, 0x2001, payload_len)?;
        let ip = rt_frames::Ipv4Header::udp(
            Ipv4Address::for_node(source),
            Ipv4Address::for_node(destination),
            payload_len + rt_types::constants::UDP_HEADER_BYTES,
        )?;
        let mut bytes = ip.encode();
        bytes.extend_from_slice(&udp.encode());
        bytes.extend(std::iter::repeat_n(0u8, payload_len));
        let eth = EthernetFrame::new(
            MacAddr::for_node(destination),
            MacAddr::for_node(source),
            ETHERTYPE_IPV4,
            bytes,
        )?;
        self.sim.inject(source, eth, at.max(self.sim.now()))?;
        Ok(())
    }

    // --- execution -----------------------------------------------------------

    /// Run the simulation until no events remain, dispatching every
    /// delivered frame to the switch manager or the receiving RT layer (and
    /// injecting whatever frames they produce in response).
    pub fn run_to_completion(&mut self) -> RtResult<SimTime> {
        self.pump()?;
        Ok(self.sim.now())
    }

    /// Run-and-dispatch until the event queue drains.
    fn pump(&mut self) -> RtResult<()> {
        loop {
            self.sim.run_to_idle();
            let deliveries = self.sim.poll_deliveries();
            if deliveries.is_empty() {
                return Ok(());
            }
            for delivery in deliveries {
                self.dispatch(delivery)?;
            }
        }
    }

    fn handle_control_teardown(&mut self, channel: ChannelId) -> RtResult<()> {
        let (id, destination) = match &mut self.manager {
            NetworkManager::Star(m) => {
                let ch = m.handle_teardown(channel)?;
                (ch.id, ch.destination.node)
            }
            NetworkManager::Fabric(m) => {
                let ch = m.handle_teardown(channel)?;
                (ch.id, ch.destination)
            }
        };
        self.sim.clear_channel_hop_schedule(id);
        // Let the destination forget the channel too.
        if let Some(layer) = self.layers.get_mut(&destination.get()) {
            layer.forget_rx_channel(id);
        }
        Ok(())
    }

    fn dispatch(&mut self, delivery: Delivery) -> RtResult<()> {
        let now = self.sim.now();
        let frame = Frame::classify(delivery.eth.clone())?;
        if delivery.receiver == NodeId::SWITCH {
            // Control-plane traffic addressed to the managing switch.
            let actions = match frame {
                Frame::Request(req) => match &mut self.manager {
                    NetworkManager::Star(m) => m.handle_request(&req)?,
                    NetworkManager::Fabric(m) => m.handle_request(&req)?,
                },
                Frame::Response(resp) => match &mut self.manager {
                    NetworkManager::Star(m) => m.handle_response(&resp)?,
                    NetworkManager::Fabric(m) => m.handle_response(&resp)?,
                },
                Frame::Teardown(td) => {
                    self.handle_control_teardown(td.rt_channel_id)?;
                    Vec::new()
                }
                other => {
                    return Err(RtError::ProtocolViolation(format!(
                        "unexpected frame at the switch control plane: {other:?}"
                    )))
                }
            };
            for action in actions {
                self.emit(action, now)?;
            }
            return Ok(());
        }

        // Traffic delivered to an end node.
        let node_key = delivery.receiver.get();
        let Some(layer) = self.layers.get_mut(&node_key) else {
            return Err(RtError::UnknownNode(delivery.receiver));
        };
        match frame {
            Frame::Request(req) => {
                // The switch forwarded a request: this node is the
                // destination and must answer.
                let (eth, _accepted) = layer.handle_forwarded_request(&req)?;
                self.sim.inject(delivery.receiver, eth, now)?;
            }
            Frame::Response(resp) => {
                let outcome = layer.handle_response(&resp)?;
                self.outcomes
                    .insert((node_key, resp.connection_request_id.get()), outcome);
            }
            Frame::RtData(data) => {
                let message = layer.handle_data(&data)?;
                let missed = delivery.deadline.is_some_and(|d| delivery.delivered_at > d);
                self.received.push(DeliveredMessage {
                    receiver: delivery.receiver,
                    message,
                    delivered_at: delivery.delivered_at,
                    missed_deadline: missed,
                });
            }
            Frame::Teardown(_) => {
                // Nodes do not receive teardown frames in this protocol.
            }
            Frame::BestEffort(_) => {
                self.be_received += 1;
            }
        }
        Ok(())
    }

    fn emit(&mut self, action: SwitchAction, now: SimTime) -> RtResult<()> {
        match action {
            SwitchAction::ForwardRequest { to, frame } => {
                let eth = frame.into_ethernet(MacAddr::for_switch(), MacAddr::for_node(to))?;
                self.sim.inject_from_switch(to, eth, now)?;
            }
            SwitchAction::SendResponse { to, frame } => {
                let eth = frame.into_ethernet(MacAddr::for_switch(), MacAddr::for_node(to))?;
                self.sim.inject_from_switch(to, eth, now)?;
            }
        }
        Ok(())
    }

    /// Look up the outcome of a finished establishment attempt (mainly for
    /// tests that drive the handshake manually).
    pub fn establishment_outcome(
        &self,
        source: NodeId,
        request: ConnectionRequestId,
    ) -> Option<&EstablishmentOutcome> {
        self.outcomes.get(&(source.get(), request.get()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_types::SwitchId;

    fn network(nodes: u32, dps: DpsKind) -> RtNetwork {
        RtNetwork::new(RtNetworkConfig::with_nodes(nodes, dps))
    }

    #[test]
    fn establish_channel_over_the_wire() {
        let mut net = network(4, DpsKind::Asymmetric);
        let spec = RtChannelSpec::paper_default();
        let tx = net
            .establish_channel(NodeId::new(0), NodeId::new(1), spec)
            .unwrap()
            .expect("channel should be accepted");
        assert_eq!(tx.destination.node, NodeId::new(1));
        assert_eq!(net.manager().channel_count(), 1);
        assert_eq!(net.channel_count(), 1);
        // The destination registered the incoming channel.
        assert_eq!(net.layer(NodeId::new(1)).unwrap().rx_channels().count(), 1);
        // The handshake itself took simulated time.
        assert!(net.now() > SimTime::ZERO);
    }

    #[test]
    fn rejected_channel_reports_none() {
        let mut net = network(10, DpsKind::Symmetric);
        let spec = RtChannelSpec::paper_default();
        let mut accepted = 0;
        for dst in 1..=8u32 {
            if net
                .establish_channel(NodeId::new(0), NodeId::new(dst), spec)
                .unwrap()
                .is_some()
            {
                accepted += 1;
            }
        }
        // SDPS caps one uplink at 6 channels with the paper parameters.
        assert_eq!(accepted, 6);
        assert_eq!(net.manager().channel_count(), 6);
    }

    #[test]
    fn periodic_traffic_meets_the_delay_bound() {
        let mut net = network(3, DpsKind::Asymmetric);
        let spec = RtChannelSpec::paper_default();
        let tx = net
            .establish_channel(NodeId::new(0), NodeId::new(1), spec)
            .unwrap()
            .unwrap();
        let start = net.now() + Duration::from_millis(1);
        net.send_periodic(NodeId::new(0), tx.id, 20, 1000, start)
            .unwrap();
        net.run_to_completion().unwrap();
        let received = net.received_messages();
        assert_eq!(received.len(), 20 * 3, "C=3 frames per message");
        assert!(received.iter().all(|m| !m.missed_deadline));
        assert!(net.simulator().stats().all_deadlines_met());
        // Every latency respects d + T_latency.
        let bound = net.deadline_bound(&spec);
        assert_eq!(net.channel_deadline_bound(tx.id), Some(bound));
        let worst = net
            .simulator()
            .stats()
            .worst_case_latency()
            .expect("frames were delivered");
        assert!(worst <= bound, "worst {worst} exceeds bound {bound}");
    }

    #[test]
    fn teardown_over_the_wire_releases_capacity() {
        let mut net = network(3, DpsKind::Symmetric);
        let spec = RtChannelSpec::paper_default();
        let tx = net
            .establish_channel(NodeId::new(0), NodeId::new(1), spec)
            .unwrap()
            .unwrap();
        assert_eq!(net.manager().channel_count(), 1);
        net.teardown_channel(NodeId::new(0), tx.id).unwrap();
        assert_eq!(net.manager().channel_count(), 0);
        assert_eq!(net.layer(NodeId::new(1)).unwrap().rx_channels().count(), 0);
    }

    #[test]
    fn best_effort_coexists_without_breaking_rt_deadlines() {
        let mut net = network(3, DpsKind::Asymmetric);
        let spec = RtChannelSpec::paper_default();
        let tx = net
            .establish_channel(NodeId::new(0), NodeId::new(1), spec)
            .unwrap()
            .unwrap();
        let start = net.now() + Duration::from_millis(1);
        net.send_periodic(NodeId::new(0), tx.id, 10, 1200, start)
            .unwrap();
        // Flood best-effort traffic from the same source to the same
        // destination: it shares both links with the RT channel.
        for k in 0..200u64 {
            net.send_best_effort(
                NodeId::new(0),
                NodeId::new(1),
                1400,
                start + Duration::from_micros(30 * k),
            )
            .unwrap();
        }
        net.run_to_completion().unwrap();
        assert!(net.simulator().stats().all_deadlines_met());
        assert!(net.best_effort_received() > 0);
        assert_eq!(net.received_messages().len(), 30);
    }

    #[test]
    fn unknown_nodes_are_errors() {
        let mut net = network(2, DpsKind::Symmetric);
        let spec = RtChannelSpec::paper_default();
        assert!(net
            .establish_channel(NodeId::new(9), NodeId::new(0), spec)
            .is_err());
        assert!(net
            .send_periodic(NodeId::new(9), ChannelId::new(1), 1, 10, SimTime::ZERO)
            .is_err());
        assert!(net
            .send_periodic(NodeId::new(0), ChannelId::new(99), 1, 10, SimTime::ZERO)
            .is_err());
    }

    // --- multi-switch fabric ----------------------------------------------

    /// A 3-switch line with 2 nodes per switch (nodes 0..6, switch-major).
    fn fabric(dps: MultiHopDps) -> RtNetwork {
        RtNetwork::new(RtNetworkConfig::with_topology(Topology::line(3, 2), dps))
    }

    #[test]
    fn fabric_establishes_channels_across_trunks_on_the_wire() {
        let mut net = fabric(MultiHopDps::Asymmetric);
        let spec = RtChannelSpec::paper_default();
        // node 0 (sw0) -> node 5 (sw2): 4 link hops.
        let tx = net
            .establish_channel(NodeId::new(0), NodeId::new(5), spec)
            .unwrap()
            .expect("an empty fabric accepts the first channel");
        assert!(net.fabric_manager().is_some());
        assert_eq!(net.channel_count(), 1);
        let channel = net.fabric_manager().unwrap().channel(tx.id).unwrap();
        assert_eq!(channel.path.len(), 4);
        // The handshake itself crossed the trunks.
        assert!(net
            .simulator()
            .stats()
            .hop_link(HopLink::Trunk {
                from: SwitchId::new(0),
                to: SwitchId::new(1),
            })
            .is_some());
        // The destination registered the incoming channel.
        assert_eq!(net.layer(NodeId::new(5)).unwrap().rx_channels().count(), 1);
        // The bound is hop-count aware: larger than the star bound.
        let bound = net.channel_deadline_bound(tx.id).unwrap();
        assert!(bound > net.deadline_bound(&spec));
    }

    #[test]
    fn fabric_periodic_traffic_meets_the_multihop_bound() {
        let mut net = fabric(MultiHopDps::Asymmetric);
        let spec = RtChannelSpec::paper_default();
        let tx = net
            .establish_channel(NodeId::new(0), NodeId::new(5), spec)
            .unwrap()
            .unwrap();
        let start = net.now() + Duration::from_millis(1);
        net.send_periodic(NodeId::new(0), tx.id, 25, 1000, start)
            .unwrap();
        net.run_to_completion().unwrap();
        assert_eq!(net.received_messages().len(), 25 * 3);
        assert!(net.received_messages().iter().all(|m| !m.missed_deadline));
        assert!(net.simulator().stats().all_deadlines_met());
        let bound = net.channel_deadline_bound(tx.id).unwrap();
        let worst = net
            .simulator()
            .stats()
            .channel(tx.id)
            .expect("frames delivered")
            .max_latency;
        assert!(
            worst <= bound,
            "worst {worst} exceeds multi-hop bound {bound}"
        );
    }

    #[test]
    fn fabric_same_switch_channel_behaves_like_a_star_channel() {
        let mut net = fabric(MultiHopDps::Symmetric);
        let spec = RtChannelSpec::paper_default();
        // node 2 and node 3 both live on switch 1.
        let tx = net
            .establish_channel(NodeId::new(2), NodeId::new(3), spec)
            .unwrap()
            .unwrap();
        let channel = net.fabric_manager().unwrap().channel(tx.id).unwrap();
        assert_eq!(channel.path.len(), 2);
        assert_eq!(channel.link_deadlines, vec![Slots::new(20), Slots::new(20)]);
        assert_eq!(
            net.channel_deadline_bound(tx.id),
            Some(net.deadline_bound(&spec))
        );
        let start = net.now() + Duration::from_millis(1);
        net.send_periodic(NodeId::new(2), tx.id, 10, 900, start)
            .unwrap();
        net.run_to_completion().unwrap();
        assert!(net.simulator().stats().all_deadlines_met());
    }

    #[test]
    fn fabric_teardown_releases_every_hop_over_the_wire() {
        let mut net = fabric(MultiHopDps::Symmetric);
        let spec = RtChannelSpec::paper_default();
        let tx = net
            .establish_channel(NodeId::new(0), NodeId::new(5), spec)
            .unwrap()
            .unwrap();
        let trunk = HopLink::Trunk {
            from: SwitchId::new(0),
            to: SwitchId::new(1),
        };
        assert_eq!(
            net.fabric_manager().unwrap().admission().link_load(trunk),
            1
        );
        net.teardown_channel(NodeId::new(0), tx.id).unwrap();
        assert_eq!(net.channel_count(), 0);
        assert_eq!(
            net.fabric_manager().unwrap().admission().link_load(trunk),
            0
        );
        assert_eq!(net.layer(NodeId::new(5)).unwrap().rx_channels().count(), 0);
    }

    #[test]
    fn fabric_rejects_when_the_trunk_saturates() {
        let mut net = fabric(MultiHopDps::Symmetric);
        let spec = RtChannelSpec::paper_default();
        // All channels from switch-0 nodes to switch-2 nodes: every one
        // crosses both trunks (4 hops, 10 slots per hop symmetric).
        let mut accepted = 0;
        let mut rejected = 0;
        for k in 0..12u32 {
            let src = NodeId::new(k % 2);
            let dst = NodeId::new(4 + (k % 2));
            match net.establish_channel(src, dst, spec).unwrap() {
                Some(_) => accepted += 1,
                None => rejected += 1,
            }
        }
        assert!(accepted > 0, "an empty fabric must accept some channels");
        assert!(rejected > 0, "the shared trunks must eventually saturate");
        assert_eq!(net.channel_count(), accepted);
    }
}
