//! Glue: the complete RT-layer stack running over the simulated switched
//! Ethernet.
//!
//! [`RtNetwork`] instantiates the star network of §18.1 — one switch, a set
//! of end nodes — and wires the control plane into it:
//!
//! * each end node gets an [`RtLayer`],
//! * the switch gets a [`SwitchChannelManager`] (admission control + the
//!   establishment handshake),
//! * every RT-layer action (RequestFrame, ResponseFrame, data frame,
//!   TeardownFrame) is carried as a real Ethernet frame through the
//!   [`rt_netsim::Simulator`], so channel establishment itself competes for
//!   the links exactly as in the paper.
//!
//! On top of that the type offers the conveniences the experiments need:
//! establishing channels and waiting for the handshake to complete, driving
//! periodic traffic on established channels, injecting best-effort cross
//! traffic, and validating measured end-to-end delays against the Eq. 18.1
//! bound `d_i + T_latency`.

use std::collections::BTreeMap;

use rt_frames::{EthernetFrame, Frame};
use rt_netsim::{Delivery, SimConfig, Simulator};
use rt_types::constants::ETHERTYPE_IPV4;
use rt_types::{
    ChannelId, ConnectionRequestId, Duration, Ipv4Address, MacAddr, NodeId, RtError, RtResult,
    SimTime,
};

use crate::admission::AdmissionController;
use crate::channel::RtChannelSpec;
use crate::dps::DpsKind;
use crate::manager::{SwitchAction, SwitchChannelManager};
use crate::rtlayer::{EstablishmentOutcome, ReceivedMessage, RtLayer, RtLayerConfig, TxChannel};
use crate::system_state::SystemState;

/// Configuration of a simulated RT network.
#[derive(Debug, Clone)]
pub struct RtNetworkConfig {
    /// The data-plane simulator configuration.
    pub sim: SimConfig,
    /// Which deadline-partitioning scheme the switch uses.
    pub dps: DpsKind,
    /// The end nodes attached to the switch.
    pub nodes: Vec<NodeId>,
    /// Per-node limit on incoming channels (`None` = unlimited).
    pub max_incoming_channels: Option<usize>,
}

impl RtNetworkConfig {
    /// A network of `n` nodes (ids `0..n`) with default simulator settings
    /// and the given DPS.
    pub fn with_nodes(n: u32, dps: DpsKind) -> Self {
        RtNetworkConfig {
            sim: SimConfig::default(),
            dps,
            nodes: (0..n).map(NodeId::new).collect(),
            max_incoming_channels: None,
        }
    }
}

/// A delivered real-time message together with when and where it arrived.
#[derive(Debug, Clone)]
pub struct DeliveredMessage {
    /// The receiving node.
    pub receiver: NodeId,
    /// The decoded message.
    pub message: ReceivedMessage,
    /// When the last bit arrived.
    pub delivered_at: SimTime,
    /// Whether the frame arrived after its stamped absolute deadline.
    pub missed_deadline: bool,
}

/// The full stack: simulator + switch manager + per-node RT layers.
pub struct RtNetwork {
    sim: Simulator,
    manager: SwitchChannelManager,
    layers: BTreeMap<u32, RtLayer>,
    outcomes: BTreeMap<(u32, u8), EstablishmentOutcome>,
    received: Vec<DeliveredMessage>,
    be_received: u64,
    t_latency: Duration,
}

impl std::fmt::Debug for RtNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RtNetwork")
            .field("nodes", &self.layers.len())
            .field("channels", &self.manager.channel_count())
            .field("now", &self.sim.now())
            .finish()
    }
}

impl RtNetwork {
    /// Build the network.
    pub fn new(config: RtNetworkConfig) -> Self {
        let sim = Simulator::new(config.sim, config.nodes.iter().copied());
        // Eq. 18.1's constant term for this substrate: two propagation
        // delays + switch processing + up to one non-preemptable frame
        // already on the wire on each of the two links.
        let t_latency = config.sim.t_latency()
            + config.sim.link_speed.slot_duration() * 2;
        let layer_config = RtLayerConfig {
            link_speed: config.sim.link_speed,
            t_latency,
            max_incoming_channels: config.max_incoming_channels,
        };
        let layers: BTreeMap<u32, RtLayer> = config
            .nodes
            .iter()
            .map(|&n| (n.get(), RtLayer::new(n, layer_config)))
            .collect();
        let admission = AdmissionController::new(
            SystemState::with_nodes(config.nodes.iter().copied()),
            config.dps.build(),
        );
        RtNetwork {
            sim,
            manager: SwitchChannelManager::new(admission),
            layers,
            outcomes: BTreeMap::new(),
            received: Vec::new(),
            be_received: 0,
            t_latency,
        }
    }

    /// The underlying simulator (read access for statistics).
    pub fn simulator(&self) -> &Simulator {
        &self.sim
    }

    /// The switch-side channel manager.
    pub fn manager(&self) -> &SwitchChannelManager {
        &self.manager
    }

    /// The RT layer of `node`.
    pub fn layer(&self, node: NodeId) -> Option<&RtLayer> {
        self.layers.get(&node.get())
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// The constant latency term `T_latency` (Eq. 18.1) of this network.
    pub fn t_latency(&self) -> Duration {
        self.t_latency
    }

    /// The end-to-end delay bound `d_i + T_latency` (Eq. 18.1) for a channel
    /// with contract `spec`.
    pub fn deadline_bound(&self, spec: &RtChannelSpec) -> Duration {
        self.sim.config().link_speed.slots_to_duration(spec.deadline) + self.t_latency
    }

    /// Real-time messages delivered to their destination so far.
    pub fn received_messages(&self) -> &[DeliveredMessage] {
        &self.received
    }

    /// Best-effort frames delivered to end nodes so far.
    pub fn best_effort_received(&self) -> u64 {
        self.be_received
    }

    // --- control plane -------------------------------------------------------

    /// Establish an RT channel by running the full handshake over the
    /// simulated network.  Returns the established channel, or `None` if the
    /// switch or the destination rejected it.
    pub fn establish_channel(
        &mut self,
        source: NodeId,
        destination: NodeId,
        spec: RtChannelSpec,
    ) -> RtResult<Option<TxChannel>> {
        let now = self.sim.now();
        let (request_id, eth) = self
            .layers
            .get_mut(&source.get())
            .ok_or(RtError::UnknownNode(source))?
            .request_channel(destination, spec)?;
        self.sim.inject(source, eth, now)?;
        self.pump()?;
        match self.outcomes.remove(&(source.get(), request_id.get())) {
            Some(EstablishmentOutcome::Established(tx)) => Ok(Some(tx)),
            Some(EstablishmentOutcome::Rejected { .. }) => Ok(None),
            None => Err(RtError::ProtocolViolation(format!(
                "handshake for request {request_id} from {source} did not complete"
            ))),
        }
    }

    /// Tear down an established channel (source side), releasing its
    /// capacity at the switch.
    pub fn teardown_channel(&mut self, source: NodeId, channel: ChannelId) -> RtResult<()> {
        let now = self.sim.now();
        let eth = self
            .layers
            .get_mut(&source.get())
            .ok_or(RtError::UnknownNode(source))?
            .teardown_channel(channel)?;
        self.sim.inject(source, eth, now)?;
        self.pump()
    }

    // --- data plane ----------------------------------------------------------

    /// Schedule `count` periodic messages on an established channel,
    /// starting at `start` and spaced by the channel's period.  Each message
    /// is `frames_per_message` maximum-sized frames long if `payload_len` is
    /// `None`, otherwise a single frame with the given payload size.
    pub fn send_periodic(
        &mut self,
        source: NodeId,
        channel: ChannelId,
        count: u64,
        payload_len: usize,
        start: SimTime,
    ) -> RtResult<()> {
        let layer = self
            .layers
            .get_mut(&source.get())
            .ok_or(RtError::UnknownNode(source))?;
        let spec = layer
            .tx_channel(channel)
            .ok_or(RtError::UnknownChannel(channel))?
            .spec;
        let period = self
            .sim
            .config()
            .link_speed
            .slots_to_duration(spec.period);
        let start = start.max(self.sim.now());
        for k in 0..count {
            let gen = start + period.saturating_mul(k);
            // A message of C_i frames: send C_i frames back-to-back, all
            // stamped with the same absolute deadline (they belong to the
            // same periodic message).
            for _ in 0..spec.capacity.get() {
                let eth = layer.prepare_data(channel, vec![0u8; payload_len], gen)?;
                self.sim.inject(source, eth, gen)?;
            }
        }
        Ok(())
    }

    /// Inject a single best-effort (non-RT) UDP frame from `source` to
    /// `destination` at time `at`.
    pub fn send_best_effort(
        &mut self,
        source: NodeId,
        destination: NodeId,
        payload_len: usize,
        at: SimTime,
    ) -> RtResult<()> {
        let udp = rt_frames::UdpHeader::new(0x2000, 0x2001, payload_len)?;
        let ip = rt_frames::Ipv4Header::udp(
            Ipv4Address::for_node(source),
            Ipv4Address::for_node(destination),
            payload_len + rt_types::constants::UDP_HEADER_BYTES,
        )?;
        let mut bytes = ip.encode();
        bytes.extend_from_slice(&udp.encode());
        bytes.extend(std::iter::repeat_n(0u8, payload_len));
        let eth = EthernetFrame::new(
            MacAddr::for_node(destination),
            MacAddr::for_node(source),
            ETHERTYPE_IPV4,
            bytes,
        )?;
        self.sim.inject(source, eth, at.max(self.sim.now()))?;
        Ok(())
    }

    // --- execution -----------------------------------------------------------

    /// Run the simulation until no events remain, dispatching every
    /// delivered frame to the switch manager or the receiving RT layer (and
    /// injecting whatever frames they produce in response).
    pub fn run_to_completion(&mut self) -> RtResult<SimTime> {
        self.pump()?;
        Ok(self.sim.now())
    }

    /// Run-and-dispatch until the event queue drains.
    fn pump(&mut self) -> RtResult<()> {
        loop {
            self.sim.run_to_idle();
            let deliveries = self.sim.poll_deliveries();
            if deliveries.is_empty() {
                return Ok(());
            }
            for delivery in deliveries {
                self.dispatch(delivery)?;
            }
        }
    }

    fn dispatch(&mut self, delivery: Delivery) -> RtResult<()> {
        let now = self.sim.now();
        let frame = Frame::classify(delivery.eth.clone())?;
        if delivery.receiver == NodeId::SWITCH {
            // Control-plane traffic addressed to the switch.
            let actions = match frame {
                Frame::Request(req) => self.manager.handle_request(&req)?,
                Frame::Response(resp) => self.manager.handle_response(&resp)?,
                Frame::Teardown(td) => {
                    let channel = self.manager.handle_teardown(td.rt_channel_id)?;
                    // Let the destination forget the channel too.
                    if let Some(layer) =
                        self.layers.get_mut(&channel.destination.node.get())
                    {
                        layer.forget_rx_channel(channel.id);
                    }
                    Vec::new()
                }
                other => {
                    return Err(RtError::ProtocolViolation(format!(
                        "unexpected frame at the switch control plane: {other:?}"
                    )))
                }
            };
            for action in actions {
                self.emit(action, now)?;
            }
            return Ok(());
        }

        // Traffic delivered to an end node.
        let node_key = delivery.receiver.get();
        let Some(layer) = self.layers.get_mut(&node_key) else {
            return Err(RtError::UnknownNode(delivery.receiver));
        };
        match frame {
            Frame::Request(req) => {
                // The switch forwarded a request: this node is the
                // destination and must answer.
                let (eth, _accepted) = layer.handle_forwarded_request(&req)?;
                self.sim.inject(delivery.receiver, eth, now)?;
            }
            Frame::Response(resp) => {
                let outcome = layer.handle_response(&resp)?;
                self.outcomes.insert(
                    (node_key, resp.connection_request_id.get()),
                    outcome,
                );
            }
            Frame::RtData(data) => {
                let message = layer.handle_data(&data)?;
                let missed = delivery
                    .deadline
                    .is_some_and(|d| delivery.delivered_at > d);
                self.received.push(DeliveredMessage {
                    receiver: delivery.receiver,
                    message,
                    delivered_at: delivery.delivered_at,
                    missed_deadline: missed,
                });
            }
            Frame::Teardown(_) => {
                // Nodes do not receive teardown frames in this protocol.
            }
            Frame::BestEffort(_) => {
                self.be_received += 1;
            }
        }
        Ok(())
    }

    fn emit(&mut self, action: SwitchAction, now: SimTime) -> RtResult<()> {
        match action {
            SwitchAction::ForwardRequest { to, frame } => {
                let eth = frame.into_ethernet(MacAddr::for_switch(), MacAddr::for_node(to))?;
                self.sim.inject_from_switch(to, eth, now)?;
            }
            SwitchAction::SendResponse { to, frame } => {
                let eth = frame.into_ethernet(MacAddr::for_switch(), MacAddr::for_node(to))?;
                self.sim.inject_from_switch(to, eth, now)?;
            }
        }
        Ok(())
    }

    /// Look up the outcome of a finished establishment attempt (mainly for
    /// tests that drive the handshake manually).
    pub fn establishment_outcome(
        &self,
        source: NodeId,
        request: ConnectionRequestId,
    ) -> Option<&EstablishmentOutcome> {
        self.outcomes.get(&(source.get(), request.get()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn network(nodes: u32, dps: DpsKind) -> RtNetwork {
        RtNetwork::new(RtNetworkConfig::with_nodes(nodes, dps))
    }

    #[test]
    fn establish_channel_over_the_wire() {
        let mut net = network(4, DpsKind::Asymmetric);
        let spec = RtChannelSpec::paper_default();
        let tx = net
            .establish_channel(NodeId::new(0), NodeId::new(1), spec)
            .unwrap()
            .expect("channel should be accepted");
        assert_eq!(tx.destination.node, NodeId::new(1));
        assert_eq!(net.manager().channel_count(), 1);
        // The destination registered the incoming channel.
        assert_eq!(net.layer(NodeId::new(1)).unwrap().rx_channels().count(), 1);
        // The handshake itself took simulated time.
        assert!(net.now() > SimTime::ZERO);
    }

    #[test]
    fn rejected_channel_reports_none() {
        let mut net = network(10, DpsKind::Symmetric);
        let spec = RtChannelSpec::paper_default();
        let mut accepted = 0;
        for dst in 1..=8u32 {
            if net
                .establish_channel(NodeId::new(0), NodeId::new(dst), spec)
                .unwrap()
                .is_some()
            {
                accepted += 1;
            }
        }
        // SDPS caps one uplink at 6 channels with the paper parameters.
        assert_eq!(accepted, 6);
        assert_eq!(net.manager().channel_count(), 6);
    }

    #[test]
    fn periodic_traffic_meets_the_delay_bound() {
        let mut net = network(3, DpsKind::Asymmetric);
        let spec = RtChannelSpec::paper_default();
        let tx = net
            .establish_channel(NodeId::new(0), NodeId::new(1), spec)
            .unwrap()
            .unwrap();
        let start = net.now() + Duration::from_millis(1);
        net.send_periodic(NodeId::new(0), tx.id, 20, 1000, start)
            .unwrap();
        net.run_to_completion().unwrap();
        let received = net.received_messages();
        assert_eq!(received.len(), 20 * 3, "C=3 frames per message");
        assert!(received.iter().all(|m| !m.missed_deadline));
        assert!(net.simulator().stats().all_deadlines_met());
        // Every latency respects d + T_latency.
        let bound = net.deadline_bound(&spec);
        let worst = net
            .simulator()
            .stats()
            .worst_case_latency()
            .expect("frames were delivered");
        assert!(worst <= bound, "worst {worst} exceeds bound {bound}");
    }

    #[test]
    fn teardown_over_the_wire_releases_capacity() {
        let mut net = network(3, DpsKind::Symmetric);
        let spec = RtChannelSpec::paper_default();
        let tx = net
            .establish_channel(NodeId::new(0), NodeId::new(1), spec)
            .unwrap()
            .unwrap();
        assert_eq!(net.manager().channel_count(), 1);
        net.teardown_channel(NodeId::new(0), tx.id).unwrap();
        assert_eq!(net.manager().channel_count(), 0);
        assert_eq!(net.layer(NodeId::new(1)).unwrap().rx_channels().count(), 0);
    }

    #[test]
    fn best_effort_coexists_without_breaking_rt_deadlines() {
        let mut net = network(3, DpsKind::Asymmetric);
        let spec = RtChannelSpec::paper_default();
        let tx = net
            .establish_channel(NodeId::new(0), NodeId::new(1), spec)
            .unwrap()
            .unwrap();
        let start = net.now() + Duration::from_millis(1);
        net.send_periodic(NodeId::new(0), tx.id, 10, 1200, start)
            .unwrap();
        // Flood best-effort traffic from the same source to the same
        // destination: it shares both links with the RT channel.
        for k in 0..200u64 {
            net.send_best_effort(
                NodeId::new(0),
                NodeId::new(1),
                1400,
                start + Duration::from_micros(30 * k),
            )
            .unwrap();
        }
        net.run_to_completion().unwrap();
        assert!(net.simulator().stats().all_deadlines_met());
        assert!(net.best_effort_received() > 0);
        assert_eq!(net.received_messages().len(), 30);
    }

    #[test]
    fn unknown_nodes_are_errors() {
        let mut net = network(2, DpsKind::Symmetric);
        let spec = RtChannelSpec::paper_default();
        assert!(net
            .establish_channel(NodeId::new(9), NodeId::new(0), spec)
            .is_err());
        assert!(net
            .send_periodic(NodeId::new(9), ChannelId::new(1), 1, 10, SimTime::ZERO)
            .is_err());
        assert!(net
            .send_periodic(NodeId::new(0), ChannelId::new(99), 1, 10, SimTime::ZERO)
            .is_err());
    }
}
