//! Glue: the complete RT-layer stack running over the simulated switched
//! Ethernet.
//!
//! [`RtNetwork`] instantiates a fabric — from the single-switch star of
//! §18.1 up to arbitrary connected meshes (the paper's stated future work,
//! one step further) — and wires the control plane into it:
//!
//! * each end node gets an [`RtLayer`],
//! * the managing switch gets a [`ChannelManager`] — a
//!   [`SwitchChannelManager`] on the star, a
//!   [`crate::multihop::FabricChannelManager`] (admission over every link of
//!   the route, multi-hop deadline partitioning) on a fabric — behind one
//!   trait, so callers never care which,
//! * a [`Router`] picks the path of every admitted channel; the network
//!   registers the route's forwarding entries and per-hop deadline budgets
//!   with the simulator at establishment time,
//! * every RT-layer action (RequestFrame, ResponseFrame, data frame,
//!   TeardownFrame) is carried as a real Ethernet frame through the
//!   [`rt_netsim::Simulator`], so channel establishment itself competes for
//!   the links — and crosses the trunks — exactly as in the paper.
//!
//! Networks are built through [`RtNetworkBuilder`] (see
//! [`RtNetwork::builder`]): topology, routing policy, deadline partitioning,
//! link parameters and admission limits all in one place, with the star as
//! the one-switch degenerate build.
//!
//! On top of that the type offers the conveniences the experiments need:
//! establishing channels and waiting for the handshake to complete, driving
//! periodic traffic on established channels, injecting best-effort cross
//! traffic, and validating measured end-to-end delays against the Eq. 18.1
//! bound `d_i + T_latency` (with `T_latency` hop-count-aware on multi-hop
//! paths).

use std::collections::BTreeMap;
use std::sync::Arc;

use rt_frames::{EthernetFrame, Frame};
use rt_netsim::{Delivery, SimConfig, Simulator};
use rt_types::constants::ETHERTYPE_IPV4;
use rt_types::{
    ChannelId, ConnectionRequestId, Duration, HopLink, Ipv4Address, LinkSpeed, MacAddr,
    ManagerPlacement, NodeId, Router, RtError, RtResult, ShortestPathRouter, SimTime, Slots,
    SwitchId, Topology,
};

use crate::admission::AdmissionController;
use crate::channel::RtChannelSpec;
use crate::distributed::DistributedChannelManager;
use crate::dps::DpsKind;
use crate::manager::{
    ChannelManager, FailoverReport, ReleasedChannel, SwitchAction, SwitchChannelManager,
};
use crate::multihop::{FabricChannelManager, MultiHopAdmission, MultiHopDps};
use crate::rtlayer::{EstablishmentOutcome, ReceivedMessage, RtLayer, RtLayerConfig, TxChannel};
use crate::system_state::SystemState;

/// Which channel-management software the managing switch runs.
#[derive(Debug, Clone)]
enum FabricShape {
    /// Single-switch star over the given nodes: the paper's §18.3 two-link
    /// admission with the full set of DPS variants.
    Star(Vec<NodeId>),
    /// Explicit multi-switch topology: per-link admission along routed
    /// paths.
    Fabric(Topology),
}

/// Builder for a simulated RT network — the single entry point for stars,
/// trees and meshes.
///
/// A star is just the one-switch degenerate build:
///
/// ```
/// use rt_core::{DpsKind, RtChannelSpec, RtNetwork};
/// use rt_types::NodeId;
///
/// let mut net = RtNetwork::builder()
///     .star(4)
///     .dps(DpsKind::Asymmetric)
///     .build()
///     .unwrap();
/// let tx = net
///     .establish_channel(NodeId::new(0), NodeId::new(1), RtChannelSpec::paper_default())
///     .unwrap()
///     .expect("the empty star accepts the first channel");
/// assert_eq!(net.manager().channel_count(), 1);
/// # let _ = tx;
/// ```
///
/// A tree fabric routes over unique paths (the default shortest-path
/// routing coincides with [`rt_types::TreeRouter`] on trees):
///
/// ```
/// use rt_core::{MultiHopDps, RtChannelSpec, RtNetwork};
/// use rt_types::{NodeId, Topology};
///
/// let mut net = RtNetwork::builder()
///     .topology(Topology::line(3, 2)) // sw0 - sw1 - sw2, 2 nodes each
///     .multihop_dps(MultiHopDps::Asymmetric)
///     .build()
///     .unwrap();
/// let tx = net
///     .establish_channel(NodeId::new(0), NodeId::new(5), RtChannelSpec::paper_default())
///     .unwrap()
///     .expect("4-hop channel across both trunks");
/// assert_eq!(net.manager().channel_route(tx.id).unwrap().path.len(), 4);
/// ```
///
/// A ring is a *cyclic* mesh: shortest-path (or ECMP) routing picks the
/// short way around, and admission, deadline partitioning and the wire all
/// follow that route:
///
/// ```
/// use rt_core::{MultiHopDps, RtChannelSpec, RtNetwork};
/// use rt_types::{NodeId, ShortestPathRouter, Topology};
///
/// let mut net = RtNetwork::builder()
///     .topology(Topology::ring(4, 1)) // sw0 - sw1 - sw2 - sw3 - sw0
///     .router(ShortestPathRouter::new())
///     .multihop_dps(MultiHopDps::Symmetric)
///     .build()
///     .unwrap();
/// // node 0 (sw0) -> node 3 (sw3): one trunk hop via the closing edge.
/// let tx = net
///     .establish_channel(NodeId::new(0), NodeId::new(3), RtChannelSpec::paper_default())
///     .unwrap()
///     .expect("accepted");
/// assert_eq!(net.manager().channel_route(tx.id).unwrap().path.len(), 3);
/// ```
#[derive(Debug)]
pub struct RtNetworkBuilder {
    sim: SimConfig,
    dps: DpsKind,
    multihop_dps: MultiHopDps,
    shape: Option<FabricShape>,
    router: Option<Arc<dyn Router>>,
    max_incoming_channels: Option<usize>,
    placement: ManagerPlacement,
}

impl Default for RtNetworkBuilder {
    fn default() -> Self {
        RtNetworkBuilder {
            sim: SimConfig::default(),
            dps: DpsKind::Asymmetric,
            multihop_dps: MultiHopDps::Asymmetric,
            shape: None,
            router: None,
            max_incoming_channels: None,
            placement: ManagerPlacement::Central,
        }
    }
}

impl RtNetworkBuilder {
    /// Start an empty builder (equivalent to [`RtNetwork::builder`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Build the paper's single-switch star over nodes `0..n`.
    pub fn star(self, n: u32) -> Self {
        self.nodes((0..n).map(NodeId::new))
    }

    /// Build a single-switch star over an explicit node set.
    pub fn nodes(mut self, nodes: impl IntoIterator<Item = NodeId>) -> Self {
        self.shape = Some(FabricShape::Star(nodes.into_iter().collect()));
        self
    }

    /// Build a multi-switch fabric over `topology` (tree or mesh).  The
    /// topology's attachments define the end nodes.
    pub fn topology(mut self, topology: Topology) -> Self {
        self.shape = Some(FabricShape::Fabric(topology));
        self
    }

    /// The deadline-partitioning scheme of a star build (ignored on
    /// fabrics; see [`RtNetworkBuilder::multihop_dps`]).
    pub fn dps(mut self, dps: DpsKind) -> Self {
        self.dps = dps;
        self
    }

    /// The multi-hop deadline-partitioning scheme of a fabric build
    /// (ignored on stars; see [`RtNetworkBuilder::dps`]).
    pub fn multihop_dps(mut self, dps: MultiHopDps) -> Self {
        self.multihop_dps = dps;
        self
    }

    /// The data-plane simulator configuration (link speed, propagation
    /// delay, switch latency, best-effort queue bound).
    pub fn sim_config(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// Shorthand: override only the link speed of the simulator
    /// configuration.
    pub fn link_speed(mut self, speed: LinkSpeed) -> Self {
        self.sim.link_speed = speed;
        self
    }

    /// Shorthand: pick the event scheduler the simulator runs on — the
    /// calendar queue by default, [`rt_netsim::SchedulerKind::Heap`] for the
    /// bit-exact reference.
    pub fn scheduler(mut self, scheduler: rt_netsim::SchedulerKind) -> Self {
        self.sim.scheduler = scheduler;
        self
    }

    /// Shorthand: pick how the simulator stores in-flight frame payloads —
    /// arena-pooled buffers by default,
    /// [`rt_netsim::FrameStoreKind::Owned`] for the clone-per-delivery
    /// reference.
    pub fn frame_store(mut self, frame_store: rt_netsim::FrameStoreKind) -> Self {
        self.sim.frame_store = frame_store;
        self
    }

    /// The path-selection policy.  Defaults to [`ShortestPathRouter`]
    /// (identical to the historical tree routing on trees and stars; picks
    /// shortest paths on meshes).  Use [`rt_types::TreeRouter`] to *enforce*
    /// acyclic fabrics, or [`rt_types::EcmpRouter`] to spread equal-cost
    /// channels over redundant trunks.
    pub fn router(self, router: impl Router + 'static) -> Self {
        self.router_arc(Arc::new(router))
    }

    /// Like [`RtNetworkBuilder::router`], for an already-shared router.
    pub fn router_arc(mut self, router: Arc<dyn Router>) -> Self {
        self.router = Some(router);
        self
    }

    /// Route table-free from switch coordinates: shorthand for
    /// `.router(StructuralRouter::new())`.  Requires a
    /// [`Topology::fat_tree`] / [`Topology::torus_nd`] fabric (the build
    /// fails on anything else); next hops are byte-identical to the
    /// default [`ShortestPathRouter`], but routing state stays O(V) and a
    /// fault flip costs a per-destination detour scan instead of a full
    /// O(V·E) table rebuild — the difference between milliseconds and
    /// minutes of rebuild on a `fat_tree(32)`-class fabric under churn.
    pub fn structural_routing(self) -> Self {
        self.router(rt_types::StructuralRouter::new())
    }

    /// Per-node limit on incoming channels (`None` = unlimited).
    pub fn max_incoming_channels(mut self, limit: impl Into<Option<usize>>) -> Self {
        self.max_incoming_channels = limit.into();
        self
    }

    /// Run the control plane *distributed*: every switch hosts its own
    /// channel manager owning the slack ledgers of its local links, and
    /// multi-hop admission runs as a two-phase reservation in control
    /// frames that really traverse the fabric (see
    /// [`DistributedChannelManager`]).  Requires a
    /// [`RtNetworkBuilder::topology`] fabric — the single-switch star has
    /// nothing to distribute.
    pub fn distributed_control(self) -> Self {
        self.manager_placement(ManagerPlacement::Distributed)
    }

    /// Select the channel-management placement explicitly (central — the
    /// paper's model and the default — or distributed).
    pub fn manager_placement(mut self, placement: ManagerPlacement) -> Self {
        self.placement = placement;
        self
    }

    /// Build the network: validate the topology against the router, build
    /// the simulator fabric, the channel manager and one RT layer per node.
    pub fn build(self) -> RtResult<RtNetwork> {
        let shape = self.shape.ok_or_else(|| {
            RtError::Config(
                "RtNetworkBuilder needs a fabric: call .star(n), .nodes(..) or .topology(..)"
                    .into(),
            )
        })?;
        let router: Arc<dyn Router> = self
            .router
            .unwrap_or_else(|| Arc::new(ShortestPathRouter::new()));
        let (topology, manager): (Topology, Box<dyn ChannelManager>) = match shape {
            FabricShape::Star(nodes) => {
                if self.placement == ManagerPlacement::Distributed {
                    return Err(RtError::Config(
                        "distributed control needs a .topology(..) fabric: a single-switch \
                         star has nothing to distribute"
                            .into(),
                    ));
                }
                let topology = Topology::star(SwitchId::new(0), nodes.iter().copied());
                let admission = AdmissionController::new(
                    SystemState::with_nodes(nodes.iter().copied()),
                    self.dps.build(),
                );
                (topology, Box::new(SwitchChannelManager::new(admission)))
            }
            FabricShape::Fabric(mut topology) => {
                topology.set_manager_placement(self.placement);
                match self.placement {
                    ManagerPlacement::Central => {
                        let admission = MultiHopAdmission::with_router(
                            topology.clone(),
                            self.multihop_dps,
                            Arc::clone(&router),
                        );
                        (topology, Box::new(FabricChannelManager::new(admission)))
                    }
                    ManagerPlacement::Distributed => {
                        let manager = DistributedChannelManager::new(
                            topology.clone(),
                            self.multihop_dps,
                            Arc::clone(&router),
                        );
                        (topology, Box::new(manager))
                    }
                }
            }
        };
        // Simulator::with_router runs the router's capability check (e.g.
        // TreeRouter rejecting cyclic graphs) on this same topology.
        let sim = Simulator::with_router(self.sim, topology, Arc::clone(&router))?;
        // Eq. 18.1's constant term for the two-hop star path; multi-hop
        // channels get a per-channel override once their route is known.
        let t_latency = self.sim.t_latency();
        let layer_config = RtLayerConfig {
            link_speed: self.sim.link_speed,
            t_latency,
            max_incoming_channels: self.max_incoming_channels,
        };
        let layers: BTreeMap<u32, RtLayer> = sim
            .topology()
            .nodes()
            .map(|n| (n.get(), RtLayer::new(n, layer_config)))
            .collect();
        Ok(RtNetwork {
            sim,
            manager,
            router,
            layers,
            outcomes: BTreeMap::new(),
            received: Vec::new(),
            be_received: 0,
            t_latency,
        })
    }
}

/// A delivered real-time message together with when and where it arrived.
#[derive(Debug, Clone)]
pub struct DeliveredMessage {
    /// The receiving node.
    pub receiver: NodeId,
    /// The decoded message.
    pub message: ReceivedMessage,
    /// When the last bit arrived.
    pub delivered_at: SimTime,
    /// Whether the frame arrived after its stamped absolute deadline.
    pub missed_deadline: bool,
}

/// The full stack: simulator + switch manager + per-node RT layers.
pub struct RtNetwork {
    sim: Simulator,
    manager: Box<dyn ChannelManager>,
    router: Arc<dyn Router>,
    layers: BTreeMap<u32, RtLayer>,
    outcomes: BTreeMap<(u32, u8), EstablishmentOutcome>,
    received: Vec<DeliveredMessage>,
    be_received: u64,
    t_latency: Duration,
}

impl std::fmt::Debug for RtNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RtNetwork")
            .field("nodes", &self.layers.len())
            .field("channels", &self.channel_count())
            .field("now", &self.sim.now())
            .finish()
    }
}

impl RtNetwork {
    /// Start building a network: star, tree or mesh, all through the same
    /// [`RtNetworkBuilder`].
    pub fn builder() -> RtNetworkBuilder {
        RtNetworkBuilder::new()
    }

    /// The underlying simulator (read access for statistics).
    pub fn simulator(&self) -> &Simulator {
        &self.sim
    }

    /// The switch-side channel manager — star or fabric, behind one
    /// interface.  Infallible: every network has exactly one.
    pub fn manager(&self) -> &dyn ChannelManager {
        self.manager.as_ref()
    }

    /// The path-selection policy the network was built with.
    pub fn router(&self) -> &Arc<dyn Router> {
        &self.router
    }

    /// Established channel count, in either mode.
    pub fn channel_count(&self) -> usize {
        self.manager.channel_count()
    }

    /// The RT layer of `node`.
    pub fn layer(&self, node: NodeId) -> Option<&RtLayer> {
        self.layers.get(&node.get())
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// The constant latency term `T_latency` (Eq. 18.1) of a two-hop star
    /// path in this network.
    pub fn t_latency(&self) -> Duration {
        self.t_latency
    }

    /// The end-to-end delay bound `d_i + T_latency` (Eq. 18.1) for a
    /// star-path channel with contract `spec`.
    pub fn deadline_bound(&self, spec: &RtChannelSpec) -> Duration {
        self.sim
            .config()
            .link_speed
            .slots_to_duration(spec.deadline)
            + self.t_latency
    }

    /// The hop-count-aware end-to-end delay bound of an *established*
    /// channel: `d_i·slot + T_latency(hops)` — the multi-hop analogue of
    /// Eq. 18.1.  `None` if the channel is unknown.
    pub fn channel_deadline_bound(&self, channel: ChannelId) -> Option<Duration> {
        let link_speed = self.sim.config().link_speed;
        self.manager.channel_route(channel).map(|route| {
            link_speed.slots_to_duration(route.spec.deadline)
                + self.sim.config().t_latency_for_hops(route.path.len())
        })
    }

    /// Real-time messages delivered to their destination so far.
    pub fn received_messages(&self) -> &[DeliveredMessage] {
        &self.received
    }

    /// Best-effort frames delivered to end nodes so far.
    pub fn best_effort_received(&self) -> u64 {
        self.be_received
    }

    // --- control plane -------------------------------------------------------

    /// Establish an RT channel by running the full handshake over the
    /// simulated network.  Returns the established channel, or `None` if the
    /// switch or the destination rejected it.
    ///
    /// On a fabric, a successful establishment also registers the channel's
    /// per-hop EDF deadline budgets with every port of its route and the
    /// hop-count-aware `T_latency` with the source's RT layer.
    pub fn establish_channel(
        &mut self,
        source: NodeId,
        destination: NodeId,
        spec: RtChannelSpec,
    ) -> RtResult<Option<TxChannel>> {
        let now = self.sim.now();
        let (request_id, eth) = self
            .layers
            .get_mut(&source.get())
            .ok_or(RtError::UnknownNode(source))?
            .request_channel(destination, spec)?;
        self.sim.inject(source, eth, now)?;
        self.pump()?;
        // Under distributed control a handshake can stall instead of
        // completing — e.g. a fault mid-reservation strands a coordination
        // whose lease must expire before the requester hears `Rejected`.
        // Fire the manager's pending timeouts (lease sweeps) until the
        // outcome lands or no timeout remains.
        loop {
            if let Some(outcome) = self.outcomes.remove(&(source.get(), request_id.get())) {
                return match outcome {
                    EstablishmentOutcome::Established(tx) => {
                        self.finish_establishment(source, &tx);
                        Ok(Some(tx))
                    }
                    EstablishmentOutcome::Rejected { .. } => Ok(None),
                };
            }
            if !self.tick_manager()? {
                return Err(RtError::ProtocolViolation(format!(
                    "handshake for request {request_id} from {source} did not complete"
                )));
            }
        }
    }

    /// Advance simulated time to the manager's next timeout (a lease
    /// expiry), fire it, emit whatever it produced and pump the wire dry.
    /// Returns `false` when no timeout was pending.
    fn tick_manager(&mut self) -> RtResult<bool> {
        let Some(deadline) = self.manager.next_timeout() else {
            return Ok(false);
        };
        let at = deadline.max(self.sim.now());
        let outcome = self.manager.on_tick(at)?;
        for (origin, action) in outcome.emissions {
            self.emit(origin, action, at)?;
        }
        for released in outcome.released {
            self.process_released(released);
        }
        self.pump()?;
        Ok(true)
    }

    /// Drive the network to control-plane quiescence: pump the wire dry,
    /// then fire every pending manager timeout (lease sweeps) in order,
    /// pumping after each, until no timeout remains.  After `settle()` a
    /// distributed manager holds no leases, no half-open coordinations and
    /// no pending responders — [`ChannelManager::audit_quiescent`] is
    /// answerable.
    pub fn settle(&mut self) -> RtResult<SimTime> {
        self.pump()?;
        while self.tick_manager()? {}
        Ok(self.sim.now())
    }

    /// After a fabric handshake completes: push the per-hop deadline
    /// schedule and the route's forwarding entries into the simulator, and
    /// the per-channel `T_latency` into the source RT layer.  Star networks
    /// keep the paper's end-to-end EDF stamps, so nothing to do there.
    fn finish_establishment(&mut self, source: NodeId, tx: &TxChannel) {
        if !self.manager.schedules_hops() {
            return;
        }
        let Some(route) = self.manager.channel_route(tx.id) else {
            return;
        };
        debug_assert_eq!(route.source, source);
        self.install_channel_wire(&route);
    }

    /// Register a channel's wire state from its [`ChannelRoute`] view: the
    /// per-switch forwarding entries pinning the route, the per-hop EDF
    /// deadline budgets, and the hop-count-aware `T_latency` at the source
    /// RT layer.  Used at establishment *and* at fail-over re-admission (the
    /// new route simply replaces the old wire state under the same id).
    fn install_channel_wire(&mut self, route: &crate::manager::ChannelRoute) {
        let config = *self.sim.config();
        let link_speed = config.link_speed;
        let hops = route.path.len();
        // Cumulative per-hop budgets: by the end of link k the frame has
        // consumed the first k per-link deadlines plus the constant
        // overheads of k link traversals.
        let mut offsets: Vec<(HopLink, Duration)> = Vec::with_capacity(hops);
        let mut cumulative = Slots::ZERO;
        for (k, (link, deadline)) in route
            .path
            .iter()
            .zip(route.link_deadlines.iter())
            .enumerate()
        {
            cumulative += *deadline;
            let offset =
                link_speed.slots_to_duration(cumulative) + config.t_latency_for_hops(k + 1);
            offsets.push((*link, offset));
        }
        self.sim.set_channel_hop_schedule(route.id, offsets);
        if let Some(layer) = self.layers.get_mut(&route.source.get()) {
            layer.set_channel_t_latency(route.id, config.t_latency_for_hops(hops));
        }
    }

    /// Tear down an established channel (source side), releasing its
    /// capacity at the switch.
    pub fn teardown_channel(&mut self, source: NodeId, channel: ChannelId) -> RtResult<()> {
        let now = self.sim.now();
        let eth = self
            .layers
            .get_mut(&source.get())
            .ok_or(RtError::UnknownNode(source))?
            .teardown_channel(channel)?;
        self.sim.inject(source, eth, now)?;
        self.pump()
    }

    // --- fault injection -----------------------------------------------------

    /// Cut a trunk at the current simulated time and fail over: the wire
    /// loses the link first (queued and in-flight frames on the dead edge
    /// are lost and counted), then the manager releases every admitted
    /// channel whose route crossed it and re-admits each over the surviving
    /// routes — keeping channel ids — and the new routes' forwarding entries
    /// and per-hop budgets replace the old wire state.  Channels that no
    /// surviving route can admit are dropped end to end: wire state torn
    /// down (their late frames drop, counted), source and destination RT
    /// layers forget them.  Channels off the failed trunk are untouched.
    pub fn fail_trunk(&mut self, from: SwitchId, to: SwitchId) -> RtResult<FailoverReport> {
        self.sim.fail_link(from, to)?;
        let report = self.manager.handle_link_failure(from, to)?;
        self.flood_pending_control()?;
        for route in &report.rerouted {
            self.install_channel_wire(route);
        }
        for old in &report.dropped {
            self.sim.release_channel(old.id);
            if let Some(layer) = self.layers.get_mut(&old.destination.get()) {
                layer.forget_rx_channel(old.id);
            }
            if let Some(layer) = self.layers.get_mut(&old.source.get()) {
                layer.forget_tx_channel(old.id);
            }
        }
        Ok(report)
    }

    /// Fail a whole switch at the current simulated time: every healthy
    /// trunk incident to it dies atomically on the wire (queued and
    /// in-flight frames lost and counted), then admission fails over every
    /// channel that crossed any of those trunks — re-routes keep their ids
    /// and get fresh wire state, unroutable channels are torn down end to
    /// end, exactly as in [`RtNetwork::fail_trunk`].  The switch keeps its
    /// access links: its local nodes can still talk to each other.
    pub fn fail_switch(&mut self, switch: SwitchId) -> RtResult<FailoverReport> {
        self.sim.fail_switch(switch)?;
        let report = self.manager.handle_switch_failure(switch)?;
        self.flood_pending_control()?;
        for route in &report.rerouted {
            self.install_channel_wire(route);
        }
        for old in &report.dropped {
            self.sim.release_channel(old.id);
            if let Some(layer) = self.layers.get_mut(&old.destination.get()) {
                layer.forget_rx_channel(old.id);
            }
            if let Some(layer) = self.layers.get_mut(&old.source.get()) {
                layer.forget_tx_channel(old.id);
            }
        }
        Ok(report)
    }

    /// Splice a previously cut trunk back, on the wire and in admission
    /// control, then *re-optimise*: channels sitting on fail-over detours
    /// are re-admitted onto their restored primary routes (ids preserved)
    /// and their forwarding entries and per-hop budgets are refreshed on
    /// the wire.  Channels the primary route cannot admit stay on their
    /// detours — a repair never drops a channel, so the report's `dropped`
    /// is always empty.
    pub fn repair_trunk(&mut self, from: SwitchId, to: SwitchId) -> RtResult<FailoverReport> {
        self.sim.repair_link(from, to)?;
        let report = self.manager.handle_link_repair(from, to)?;
        self.flood_pending_control()?;
        for route in &report.rerouted {
            self.install_channel_wire(route);
        }
        Ok(report)
    }

    /// Inject the link-state frames a fault origin wants flooded — the seed
    /// hops of the topology-event flood — at the current simulated time.
    /// Deliberately does *not* pump: the caller decides when the fabric runs,
    /// so admission attempts can race the still-propagating flood (the
    /// convergence window the adversarial tests exercise).
    fn flood_pending_control(&mut self) -> RtResult<()> {
        let now = self.sim.now();
        for (origin, action) in self.manager.drain_control() {
            self.emit(origin, action, now)?;
        }
        Ok(())
    }

    // --- data plane ----------------------------------------------------------

    /// Schedule `count` periodic messages on an established channel,
    /// starting at `start` and spaced by the channel's period.  Each message
    /// is `C_i` frames of `payload_len` bytes, all stamped with the same
    /// absolute deadline (they belong to the same periodic message).
    pub fn send_periodic(
        &mut self,
        source: NodeId,
        channel: ChannelId,
        count: u64,
        payload_len: usize,
        start: SimTime,
    ) -> RtResult<()> {
        let layer = self
            .layers
            .get_mut(&source.get())
            .ok_or(RtError::UnknownNode(source))?;
        let spec = layer
            .tx_channel(channel)
            .ok_or(RtError::UnknownChannel(channel))?
            .spec;
        let period = self.sim.config().link_speed.slots_to_duration(spec.period);
        let start = start.max(self.sim.now());
        for k in 0..count {
            let gen = start + period.saturating_mul(k);
            for _ in 0..spec.capacity.get() {
                let eth = layer.prepare_data(channel, vec![0u8; payload_len], gen)?;
                self.sim.inject(source, eth, gen)?;
            }
        }
        Ok(())
    }

    /// Inject a single best-effort (non-RT) UDP frame from `source` to
    /// `destination` at time `at`.
    pub fn send_best_effort(
        &mut self,
        source: NodeId,
        destination: NodeId,
        payload_len: usize,
        at: SimTime,
    ) -> RtResult<()> {
        let udp = rt_frames::UdpHeader::new(0x2000, 0x2001, payload_len)?;
        let ip = rt_frames::Ipv4Header::udp(
            Ipv4Address::for_node(source),
            Ipv4Address::for_node(destination),
            payload_len + rt_types::constants::UDP_HEADER_BYTES,
        )?;
        let mut bytes = ip.encode();
        bytes.extend_from_slice(&udp.encode());
        bytes.extend(std::iter::repeat_n(0u8, payload_len));
        let eth = EthernetFrame::new(
            MacAddr::for_node(destination),
            MacAddr::for_node(source),
            ETHERTYPE_IPV4,
            bytes,
        )?;
        self.sim.inject(source, eth, at.max(self.sim.now()))?;
        Ok(())
    }

    // --- execution -----------------------------------------------------------

    /// Run the simulation until no events remain, dispatching every
    /// delivered frame to the switch manager or the receiving RT layer (and
    /// injecting whatever frames they produce in response).
    pub fn run_to_completion(&mut self) -> RtResult<SimTime> {
        self.pump()?;
        Ok(self.sim.now())
    }

    /// Run and dispatch up to `limit` (inclusive); events after `limit`
    /// stay pending.  This is how a mid-run fault is scripted at the
    /// network level: run to the cut instant, call
    /// [`RtNetwork::fail_trunk`], then keep running.  Like
    /// [`RtNetwork::run_to_completion`], every delivery is dispatched at
    /// its simulated time, so a teardown inside the window takes effect on
    /// the traffic behind it.
    pub fn run_until(&mut self, limit: SimTime) -> RtResult<SimTime> {
        loop {
            self.sim.run_until_delivery_before(limit);
            let deliveries = self.sim.poll_deliveries();
            if deliveries.is_empty() {
                return Ok(self.sim.now());
            }
            for delivery in deliveries {
                self.dispatch(delivery)?;
            }
        }
    }

    /// Run-and-dispatch until the event queue drains, reacting to every
    /// delivery at its simulated time (not after the queue empties): the
    /// switch software processes a control frame — and e.g. releases a
    /// channel's wire state — while later traffic is still in flight,
    /// exactly as a real switch would.
    fn pump(&mut self) -> RtResult<()> {
        loop {
            self.sim.run_until_delivery();
            let deliveries = self.sim.poll_deliveries();
            if deliveries.is_empty() {
                return Ok(());
            }
            for delivery in deliveries {
                self.dispatch(delivery)?;
            }
        }
    }

    /// Tear a released channel down on the wire and at the endpoints: its
    /// forwarding entries and per-hop budgets are forgotten AND its late
    /// frames are dropped at the first switch (counted in the statistics),
    /// never delivered on the stale route; the destination RT layer forgets
    /// it too.
    fn process_released(&mut self, released: ReleasedChannel) {
        self.sim.release_channel(released.id);
        if let Some(layer) = self.layers.get_mut(&released.destination.get()) {
            layer.forget_rx_channel(released.id);
        }
    }

    fn dispatch(&mut self, delivery: Delivery) -> RtResult<()> {
        let now = self.sim.now();
        let frame = Frame::classify(delivery.eth.clone())?;
        if delivery.receiver == NodeId::SWITCH {
            // Control-plane traffic: the delivery names the switch whose
            // control plane received the frame (the managing switch under
            // central placement, any switch under distributed placement).
            let at = delivery.switch.unwrap_or(self.sim.manager_switch());
            let outcome = self
                .manager
                .handle_frame_at(at, delivery.source, &frame, now)?;
            for (origin, action) in outcome.emissions {
                self.emit(origin, action, now)?;
            }
            for released in outcome.released {
                self.process_released(released);
            }
            return Ok(());
        }

        // Traffic delivered to an end node.
        let node_key = delivery.receiver.get();
        let Some(layer) = self.layers.get_mut(&node_key) else {
            return Err(RtError::UnknownNode(delivery.receiver));
        };
        match frame {
            Frame::Request(req) => {
                // The switch forwarded a request: this node is the
                // destination and must answer.
                let (eth, _accepted) = layer.handle_forwarded_request(&req)?;
                self.sim.inject(delivery.receiver, eth, now)?;
            }
            Frame::Response(resp) => {
                let outcome = layer.handle_response(&resp)?;
                self.outcomes
                    .insert((node_key, resp.connection_request_id.get()), outcome);
            }
            Frame::RtData(data) => {
                match layer.handle_data(&data) {
                    Ok(message) => {
                        let missed = delivery.deadline.is_some_and(|d| delivery.delivered_at > d);
                        self.received.push(DeliveredMessage {
                            receiver: delivery.receiver,
                            message,
                            delivered_at: delivery.delivered_at,
                            missed_deadline: missed,
                        });
                    }
                    // A frame of a channel released while it was already
                    // past its last switch (on the downlink when the
                    // teardown / fail-over drop landed): the receiver has
                    // forgotten the channel, so the late frame is ignored —
                    // a mid-run release must never abort the whole run.
                    Err(RtError::UnknownChannel(_)) => {}
                    Err(e) => return Err(e),
                }
            }
            Frame::Teardown(_) | Frame::Reservation(_) => {
                // Nodes do not receive teardown or reservation frames in
                // this protocol.
            }
            Frame::BestEffort(_) => {
                self.be_received += 1;
            }
        }
        Ok(())
    }

    fn emit(&mut self, origin: SwitchId, action: SwitchAction, now: SimTime) -> RtResult<()> {
        match action {
            SwitchAction::ForwardRequest { to, frame } => {
                let eth = frame.into_ethernet(MacAddr::for_switch(), MacAddr::for_node(to))?;
                self.sim.inject_at_switch(origin, eth, now)?;
            }
            SwitchAction::SendResponse { to, frame } => {
                let eth = frame.into_ethernet(MacAddr::for_switch(), MacAddr::for_node(to))?;
                self.sim.inject_at_switch(origin, eth, now)?;
            }
            SwitchAction::SendControl { to, frame } => {
                let eth = frame
                    .into_ethernet(MacAddr::for_switch_id(origin), MacAddr::for_switch_id(to))?;
                self.sim.inject_at_switch(origin, eth, now)?;
            }
        }
        Ok(())
    }

    /// Look up the outcome of a finished establishment attempt (mainly for
    /// tests that drive the handshake manually).
    pub fn establishment_outcome(
        &self,
        source: NodeId,
        request: ConnectionRequestId,
    ) -> Option<&EstablishmentOutcome> {
        self.outcomes.get(&(source.get(), request.get()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_types::{EcmpRouter, TreeRouter};

    fn network(nodes: u32, dps: DpsKind) -> RtNetwork {
        RtNetwork::builder()
            .star(nodes)
            .dps(dps)
            .build()
            .expect("a star always builds")
    }

    #[test]
    fn establish_channel_over_the_wire() {
        let mut net = network(4, DpsKind::Asymmetric);
        let spec = RtChannelSpec::paper_default();
        let tx = net
            .establish_channel(NodeId::new(0), NodeId::new(1), spec)
            .unwrap()
            .expect("channel should be accepted");
        assert_eq!(tx.destination.node, NodeId::new(1));
        assert_eq!(net.manager().channel_count(), 1);
        assert_eq!(net.channel_count(), 1);
        // The destination registered the incoming channel.
        assert_eq!(net.layer(NodeId::new(1)).unwrap().rx_channels().count(), 1);
        // The handshake itself took simulated time.
        assert!(net.now() > SimTime::ZERO);
    }

    #[test]
    fn rejected_channel_reports_none() {
        let mut net = network(10, DpsKind::Symmetric);
        let spec = RtChannelSpec::paper_default();
        let mut accepted = 0;
        for dst in 1..=8u32 {
            if net
                .establish_channel(NodeId::new(0), NodeId::new(dst), spec)
                .unwrap()
                .is_some()
            {
                accepted += 1;
            }
        }
        // SDPS caps one uplink at 6 channels with the paper parameters.
        assert_eq!(accepted, 6);
        assert_eq!(net.manager().channel_count(), 6);
    }

    #[test]
    fn periodic_traffic_meets_the_delay_bound() {
        let mut net = network(3, DpsKind::Asymmetric);
        let spec = RtChannelSpec::paper_default();
        let tx = net
            .establish_channel(NodeId::new(0), NodeId::new(1), spec)
            .unwrap()
            .unwrap();
        let start = net.now() + Duration::from_millis(1);
        net.send_periodic(NodeId::new(0), tx.id, 20, 1000, start)
            .unwrap();
        net.run_to_completion().unwrap();
        let received = net.received_messages();
        assert_eq!(received.len(), 20 * 3, "C=3 frames per message");
        assert!(received.iter().all(|m| !m.missed_deadline));
        assert!(net.simulator().stats().all_deadlines_met());
        // Every latency respects d + T_latency.
        let bound = net.deadline_bound(&spec);
        assert_eq!(net.channel_deadline_bound(tx.id), Some(bound));
        let worst = net
            .simulator()
            .stats()
            .worst_case_latency()
            .expect("frames were delivered");
        assert!(worst <= bound, "worst {worst} exceeds bound {bound}");
    }

    #[test]
    fn teardown_over_the_wire_releases_capacity() {
        let mut net = network(3, DpsKind::Symmetric);
        let spec = RtChannelSpec::paper_default();
        let tx = net
            .establish_channel(NodeId::new(0), NodeId::new(1), spec)
            .unwrap()
            .unwrap();
        assert_eq!(net.manager().channel_count(), 1);
        net.teardown_channel(NodeId::new(0), tx.id).unwrap();
        assert_eq!(net.manager().channel_count(), 0);
        assert_eq!(net.layer(NodeId::new(1)).unwrap().rx_channels().count(), 0);
    }

    #[test]
    fn best_effort_coexists_without_breaking_rt_deadlines() {
        let mut net = network(3, DpsKind::Asymmetric);
        let spec = RtChannelSpec::paper_default();
        let tx = net
            .establish_channel(NodeId::new(0), NodeId::new(1), spec)
            .unwrap()
            .unwrap();
        let start = net.now() + Duration::from_millis(1);
        net.send_periodic(NodeId::new(0), tx.id, 10, 1200, start)
            .unwrap();
        // Flood best-effort traffic from the same source to the same
        // destination: it shares both links with the RT channel.
        for k in 0..200u64 {
            net.send_best_effort(
                NodeId::new(0),
                NodeId::new(1),
                1400,
                start + Duration::from_micros(30 * k),
            )
            .unwrap();
        }
        net.run_to_completion().unwrap();
        assert!(net.simulator().stats().all_deadlines_met());
        assert!(net.best_effort_received() > 0);
        assert_eq!(net.received_messages().len(), 30);
    }

    #[test]
    fn unknown_nodes_are_errors() {
        let mut net = network(2, DpsKind::Symmetric);
        let spec = RtChannelSpec::paper_default();
        assert!(net
            .establish_channel(NodeId::new(9), NodeId::new(0), spec)
            .is_err());
        assert!(net
            .send_periodic(NodeId::new(9), ChannelId::new(1), 1, 10, SimTime::ZERO)
            .is_err());
        assert!(net
            .send_periodic(NodeId::new(0), ChannelId::new(99), 1, 10, SimTime::ZERO)
            .is_err());
    }

    // --- multi-switch fabric ----------------------------------------------

    /// A 3-switch line with 2 nodes per switch (nodes 0..6, switch-major).
    fn fabric(dps: MultiHopDps) -> RtNetwork {
        RtNetwork::builder()
            .topology(Topology::line(3, 2))
            .multihop_dps(dps)
            .build()
            .expect("a line fabric always builds")
    }

    #[test]
    fn fabric_establishes_channels_across_trunks_on_the_wire() {
        let mut net = fabric(MultiHopDps::Asymmetric);
        let spec = RtChannelSpec::paper_default();
        // node 0 (sw0) -> node 5 (sw2): 4 link hops.
        let tx = net
            .establish_channel(NodeId::new(0), NodeId::new(5), spec)
            .unwrap()
            .expect("an empty fabric accepts the first channel");
        assert_eq!(net.channel_count(), 1);
        let channel = net.manager().channel_route(tx.id).unwrap();
        assert_eq!(channel.path.len(), 4);
        // The handshake itself crossed the trunks.
        assert!(net
            .simulator()
            .stats()
            .hop_link(HopLink::Trunk {
                from: SwitchId::new(0),
                to: SwitchId::new(1),
            })
            .is_some());
        // The destination registered the incoming channel.
        assert_eq!(net.layer(NodeId::new(5)).unwrap().rx_channels().count(), 1);
        // The bound is hop-count aware: larger than the star bound.
        let bound = net.channel_deadline_bound(tx.id).unwrap();
        assert!(bound > net.deadline_bound(&spec));
    }

    #[test]
    fn fabric_periodic_traffic_meets_the_multihop_bound() {
        let mut net = fabric(MultiHopDps::Asymmetric);
        let spec = RtChannelSpec::paper_default();
        let tx = net
            .establish_channel(NodeId::new(0), NodeId::new(5), spec)
            .unwrap()
            .unwrap();
        let start = net.now() + Duration::from_millis(1);
        net.send_periodic(NodeId::new(0), tx.id, 25, 1000, start)
            .unwrap();
        net.run_to_completion().unwrap();
        assert_eq!(net.received_messages().len(), 25 * 3);
        assert!(net.received_messages().iter().all(|m| !m.missed_deadline));
        assert!(net.simulator().stats().all_deadlines_met());
        let bound = net.channel_deadline_bound(tx.id).unwrap();
        let worst = net
            .simulator()
            .stats()
            .channel(tx.id)
            .expect("frames delivered")
            .max_latency;
        assert!(
            worst <= bound,
            "worst {worst} exceeds multi-hop bound {bound}"
        );
    }

    #[test]
    fn fabric_same_switch_channel_behaves_like_a_star_channel() {
        let mut net = fabric(MultiHopDps::Symmetric);
        let spec = RtChannelSpec::paper_default();
        // node 2 and node 3 both live on switch 1.
        let tx = net
            .establish_channel(NodeId::new(2), NodeId::new(3), spec)
            .unwrap()
            .unwrap();
        let channel = net.manager().channel_route(tx.id).unwrap();
        assert_eq!(channel.path.len(), 2);
        assert_eq!(channel.link_deadlines, vec![Slots::new(20), Slots::new(20)]);
        assert_eq!(
            net.channel_deadline_bound(tx.id),
            Some(net.deadline_bound(&spec))
        );
        let start = net.now() + Duration::from_millis(1);
        net.send_periodic(NodeId::new(2), tx.id, 10, 900, start)
            .unwrap();
        net.run_to_completion().unwrap();
        assert!(net.simulator().stats().all_deadlines_met());
    }

    #[test]
    fn fabric_teardown_releases_every_hop_over_the_wire() {
        let mut net = fabric(MultiHopDps::Symmetric);
        let spec = RtChannelSpec::paper_default();
        let tx = net
            .establish_channel(NodeId::new(0), NodeId::new(5), spec)
            .unwrap()
            .unwrap();
        let trunk = HopLink::Trunk {
            from: SwitchId::new(0),
            to: SwitchId::new(1),
        };
        assert_eq!(net.manager().link_load(trunk), 1);
        net.teardown_channel(NodeId::new(0), tx.id).unwrap();
        assert_eq!(net.channel_count(), 0);
        assert_eq!(net.manager().link_load(trunk), 0);
        assert_eq!(net.layer(NodeId::new(5)).unwrap().rx_channels().count(), 0);
    }

    #[test]
    fn fabric_rejects_when_the_trunk_saturates() {
        let mut net = fabric(MultiHopDps::Symmetric);
        let spec = RtChannelSpec::paper_default();
        // All channels from switch-0 nodes to switch-2 nodes: every one
        // crosses both trunks (4 hops, 10 slots per hop symmetric).
        let mut accepted = 0;
        let mut rejected = 0;
        for k in 0..12u32 {
            let src = NodeId::new(k % 2);
            let dst = NodeId::new(4 + (k % 2));
            match net.establish_channel(src, dst, spec).unwrap() {
                Some(_) => accepted += 1,
                None => rejected += 1,
            }
        }
        assert!(accepted > 0, "an empty fabric must accept some channels");
        assert!(rejected > 0, "the shared trunks must eventually saturate");
        assert_eq!(net.channel_count(), accepted);
    }

    // --- builder + router (mesh) ------------------------------------------

    #[test]
    fn builder_requires_a_fabric_shape() {
        assert!(RtNetwork::builder().build().is_err());
        assert!(RtNetwork::builder().star(0).build().is_ok());
    }

    #[test]
    fn builder_wires_the_scheduler_through() {
        use rt_netsim::SchedulerKind;
        let heap = RtNetwork::builder()
            .star(2)
            .scheduler(SchedulerKind::Heap)
            .build()
            .unwrap();
        assert_eq!(heap.simulator().scheduler_kind(), SchedulerKind::Heap);
        let default = RtNetwork::builder().star(2).build().unwrap();
        assert_eq!(
            default.simulator().scheduler_kind(),
            SchedulerKind::default()
        );
    }

    #[test]
    fn schedulers_agree_on_an_established_channel_run() {
        use rt_netsim::SchedulerKind;
        let drive = |scheduler: SchedulerKind| {
            let mut net = RtNetwork::builder()
                .topology(Topology::ring(4, 2))
                .scheduler(scheduler)
                .multihop_dps(MultiHopDps::Asymmetric)
                .build()
                .unwrap();
            let spec = RtChannelSpec::paper_default();
            let tx = net
                .establish_channel(NodeId::new(0), NodeId::new(7), spec)
                .unwrap()
                .expect("empty ring accepts the channel");
            let start = net.now() + Duration::from_millis(1);
            net.send_periodic(NodeId::new(0), tx.id, 10, 900, start)
                .unwrap();
            net.run_to_completion().unwrap();
            net.received_messages()
                .iter()
                .map(|m| (m.receiver, m.delivered_at))
                .collect::<Vec<_>>()
        };
        assert_eq!(drive(SchedulerKind::Heap), drive(SchedulerKind::Calendar));
    }

    #[test]
    fn structural_routing_builds_fat_trees_and_rejects_untagged_fabrics() {
        // Structural routing needs the builder's coordinate metadata.
        let result = RtNetwork::builder()
            .topology(Topology::ring(4, 1))
            .structural_routing()
            .build();
        assert!(result.is_err(), "a ring carries no structure tag");

        // On a fat tree it admits and delivers exactly like the tabled
        // shortest-path default (the closed forms are byte-identical).
        let drive = |structural: bool| {
            let builder = RtNetwork::builder()
                .topology(Topology::fat_tree(4).unwrap())
                .multihop_dps(MultiHopDps::Asymmetric);
            let mut net = if structural {
                builder.structural_routing().build().unwrap()
            } else {
                builder.build().unwrap()
            };
            let spec = RtChannelSpec::paper_default();
            let tx = net
                .establish_channel(NodeId::new(0), NodeId::new(15), spec)
                .unwrap()
                .expect("empty fat tree accepts the channel");
            let start = net.now() + Duration::from_millis(1);
            net.send_periodic(NodeId::new(0), tx.id, 10, 900, start)
                .unwrap();
            net.run_to_completion().unwrap();
            net.received_messages()
                .iter()
                .map(|m| (m.receiver, m.delivered_at))
                .collect::<Vec<_>>()
        };
        let structural = drive(true);
        assert!(!structural.is_empty());
        assert_eq!(structural, drive(false));
    }

    #[test]
    fn tree_router_rejects_mesh_builds_at_build_time() {
        let result = RtNetwork::builder()
            .topology(Topology::ring(4, 1))
            .router(TreeRouter::new())
            .build();
        assert!(result.is_err(), "a TreeRouter must refuse a cyclic fabric");
        // The same router on the spanning line is fine.
        assert!(RtNetwork::builder()
            .topology(Topology::line(4, 1))
            .router(TreeRouter::new())
            .build()
            .is_ok());
    }

    #[test]
    fn ring_mesh_establishes_channels_and_meets_the_hop_aware_bound() {
        // The acceptance bar of the mesh redesign: a cyclic topology built
        // through the builder admits channels via shortest-path routing and
        // every measured delay stays within d·slot + T_latency(h).
        let mut net = RtNetwork::builder()
            .topology(Topology::ring(4, 2))
            .router(ShortestPathRouter::new())
            .multihop_dps(MultiHopDps::Asymmetric)
            .build()
            .unwrap();
        let spec = RtChannelSpec::paper_default();
        // node 1 (sw0) -> node 7 (sw3): the closing trunk makes this 3 hops.
        let tx = net
            .establish_channel(NodeId::new(1), NodeId::new(7), spec)
            .unwrap()
            .expect("the empty ring accepts the channel");
        let route = net.manager().channel_route(tx.id).unwrap();
        assert_eq!(route.path.len(), 3, "shortest path uses the closing trunk");
        assert!(route.path.contains(&HopLink::Trunk {
            from: SwitchId::new(0),
            to: SwitchId::new(3),
        }));
        let start = net.now() + Duration::from_millis(1);
        net.send_periodic(NodeId::new(1), tx.id, 20, 1000, start)
            .unwrap();
        net.run_to_completion().unwrap();
        assert_eq!(net.received_messages().len(), 20 * 3);
        assert!(net.simulator().stats().all_deadlines_met());
        let bound = net.channel_deadline_bound(tx.id).unwrap();
        let worst = net.simulator().stats().channel(tx.id).unwrap().max_latency;
        assert!(worst <= bound, "worst {worst} exceeds mesh bound {bound}");
        // The data really used the closing trunk, not the long way.
        assert!(net
            .simulator()
            .stats()
            .hop_link(HopLink::Trunk {
                from: SwitchId::new(1),
                to: SwitchId::new(2),
            })
            .is_none());
    }

    #[test]
    fn ecmp_router_is_deterministic_end_to_end() {
        let run = |seed: u64| {
            let mut net = RtNetwork::builder()
                .topology(Topology::ring(4, 2))
                .router(EcmpRouter::new(seed))
                .multihop_dps(MultiHopDps::Symmetric)
                .build()
                .unwrap();
            let spec = RtChannelSpec::paper_default();
            let mut routes = Vec::new();
            // Opposite corners of the ring: sw0 -> sw2 has two equal-cost
            // paths; every (src, dst) pair hashes to one of them.
            for (src, dst) in [(0u32, 4u32), (1, 5), (0, 5), (1, 4)] {
                let tx = net
                    .establish_channel(NodeId::new(src), NodeId::new(dst), spec)
                    .unwrap()
                    .expect("ring has capacity for four channels");
                routes.push(net.manager().channel_route(tx.id).unwrap().path.clone());
            }
            routes
        };
        let first = run(42);
        let second = run(42);
        assert_eq!(first, second, "a fixed seed must reproduce every route");
        for route in &first {
            assert_eq!(route.len(), 4, "ECMP must pick a shortest (2-trunk) path");
        }
    }

    // --- fault injection and fail-over --------------------------------------

    #[test]
    fn fail_trunk_reroutes_established_channels_on_the_wire() {
        let mut net = RtNetwork::builder()
            .topology(Topology::ring(4, 1))
            .router(rt_types::KShortestRouter::new(3))
            .multihop_dps(MultiHopDps::Symmetric)
            .build()
            .unwrap();
        let spec = RtChannelSpec::paper_default();
        // node 0 (sw0) -> node 3 (sw3): 3 hops via the closing trunk.
        let tx = net
            .establish_channel(NodeId::new(0), NodeId::new(3), spec)
            .unwrap()
            .unwrap();
        assert_eq!(net.manager().channel_route(tx.id).unwrap().path.len(), 3);
        let bound_before = net.channel_deadline_bound(tx.id).unwrap();

        let report = net.fail_trunk(SwitchId::new(3), SwitchId::new(0)).unwrap();
        assert_eq!(report.rerouted.len(), 1);
        assert!(report.dropped.is_empty());
        // The re-routed channel now runs the long way around, same id.
        let route = net.manager().channel_route(tx.id).unwrap();
        assert_eq!(route.path.len(), 5);
        let bound_after = net.channel_deadline_bound(tx.id).unwrap();
        assert!(bound_after > bound_before, "more hops, larger bound");

        // Traffic flows on the surviving route and meets the new bound.
        let start = net.now() + Duration::from_millis(1);
        net.send_periodic(NodeId::new(0), tx.id, 15, 900, start)
            .unwrap();
        net.run_to_completion().unwrap();
        assert_eq!(net.received_messages().len(), 15 * 3);
        assert!(net.simulator().stats().all_deadlines_met());
        let worst = net.simulator().stats().channel(tx.id).unwrap().max_latency;
        assert!(
            worst <= bound_after,
            "worst {worst} exceeds post-failover bound {bound_after}"
        );
        // The wire really used the detour.
        assert!(net
            .simulator()
            .stats()
            .hop_link(HopLink::Trunk {
                from: SwitchId::new(1),
                to: SwitchId::new(2),
            })
            .is_some());
        assert_eq!(net.simulator().stats().failed_link_dropped, 0);
    }

    #[test]
    fn fail_trunk_drops_unroutable_channels_end_to_end() {
        // A 2-switch line: cutting the only trunk splits the fabric, so the
        // cross-switch channel cannot be re-admitted anywhere.
        let mut net = RtNetwork::builder()
            .topology(Topology::line(2, 1))
            .multihop_dps(MultiHopDps::Symmetric)
            .build()
            .unwrap();
        let spec = RtChannelSpec::paper_default();
        let tx = net
            .establish_channel(NodeId::new(0), NodeId::new(1), spec)
            .unwrap()
            .unwrap();
        let report = net.fail_trunk(SwitchId::new(0), SwitchId::new(1)).unwrap();
        assert!(report.rerouted.is_empty());
        assert_eq!(report.dropped.len(), 1);
        assert_eq!(report.dropped[0].id, tx.id);
        assert_eq!(net.channel_count(), 0);
        // Source and destination both forgot the channel.
        assert_eq!(net.layer(NodeId::new(0)).unwrap().tx_channels().count(), 0);
        assert_eq!(net.layer(NodeId::new(1)).unwrap().rx_channels().count(), 0);
        assert!(net
            .send_periodic(NodeId::new(0), tx.id, 1, 100, net.now())
            .is_err());
        // Repair restores the fabric for fresh establishments.
        net.repair_trunk(SwitchId::new(0), SwitchId::new(1))
            .unwrap();
        assert!(net
            .establish_channel(NodeId::new(0), NodeId::new(1), spec)
            .unwrap()
            .is_some());
    }

    #[test]
    fn unaffected_channels_deliver_identically_with_and_without_a_cut() {
        // A same-switch channel (both endpoints on sw2) shares no link with
        // the cut trunk or any re-route, so its delivery sequence must be
        // byte-for-byte identical between a failure run and a fault-free
        // run.
        let drive = |cut: bool| {
            let mut net = RtNetwork::builder()
                .topology(Topology::ring(4, 2))
                .multihop_dps(MultiHopDps::Symmetric)
                .build()
                .unwrap();
            let spec = RtChannelSpec::paper_default();
            // The affected channel: node 0 (sw0) -> node 7 (sw3).
            let affected = net
                .establish_channel(NodeId::new(0), NodeId::new(7), spec)
                .unwrap()
                .unwrap();
            // The unaffected channel: node 4 -> node 5, both on sw2.
            let local = net
                .establish_channel(NodeId::new(4), NodeId::new(5), spec)
                .unwrap()
                .unwrap();
            let start = net.now() + Duration::from_millis(1);
            net.send_periodic(NodeId::new(0), affected.id, 10, 700, start)
                .unwrap();
            net.send_periodic(NodeId::new(4), local.id, 10, 700, start)
                .unwrap();
            let cut_at = start + Duration::from_micros(2500);
            net.run_until(cut_at).unwrap();
            if cut {
                net.fail_trunk(SwitchId::new(3), SwitchId::new(0)).unwrap();
            }
            net.run_to_completion().unwrap();
            let local_seq: Vec<(u64, bool)> = net
                .received_messages()
                .iter()
                .filter(|m| m.message.channel == local.id)
                .map(|m| (m.delivered_at.as_nanos(), m.missed_deadline))
                .collect();
            (local_seq, net.simulator().stats().all_deadlines_met())
        };
        let (with_cut, _) = drive(true);
        let (without_cut, clean) = drive(false);
        assert!(clean);
        assert!(!with_cut.is_empty());
        assert_eq!(
            with_cut, without_cut,
            "a same-switch channel must not notice a remote trunk cut"
        );
    }

    #[test]
    fn star_networks_reject_link_failures() {
        let mut net = network(3, DpsKind::Symmetric);
        assert!(net.fail_trunk(SwitchId::new(0), SwitchId::new(1)).is_err());
        assert!(net
            .repair_trunk(SwitchId::new(0), SwitchId::new(1))
            .is_err());
    }

    #[test]
    fn unified_manager_reports_channels_in_both_modes() {
        let spec = RtChannelSpec::paper_default();
        let mut star = network(4, DpsKind::Asymmetric);
        let tx = star
            .establish_channel(NodeId::new(0), NodeId::new(1), spec)
            .unwrap()
            .unwrap();
        assert_eq!(star.manager().channel_ids(), vec![tx.id]);
        let route = star.manager().channel_route(tx.id).unwrap();
        assert_eq!(route.path.len(), 2, "a star channel is uplink + downlink");
        assert_eq!(
            route.link_deadlines.iter().map(|s| s.get()).sum::<u64>(),
            spec.deadline.get()
        );
        assert_eq!(star.manager().link_load(HopLink::Uplink(NodeId::new(0))), 1);
        assert_eq!(star.manager().pending_count(), 0);
        assert!(!star.manager().schedules_hops());

        let mut fab = fabric(MultiHopDps::Asymmetric);
        let ftx = fab
            .establish_channel(NodeId::new(0), NodeId::new(5), spec)
            .unwrap()
            .unwrap();
        assert_eq!(fab.manager().channel_ids(), vec![ftx.id]);
        assert!(fab.manager().schedules_hops());
        assert_eq!(
            fab.manager().channel_route(ftx.id).unwrap().destination,
            NodeId::new(5)
        );
    }
}
