//! The switch's admission control (§18.2.2 / §18.3.2).
//!
//! "The switch is responsible for admission control where feasibility
//! analysis is made for each link between source and destination."  For a
//! requested channel the controller:
//!
//! 1. validates the traffic contract (`P`, `C`, `d` sane, `d ≥ 2C`),
//! 2. asks the configured deadline-partitioning scheme for the split
//!    `(d_iu, d_id)`,
//! 3. derives the two supposed tasks (Eq. 18.6/18.7) and runs the per-link
//!    EDF feasibility test on the source's uplink and the destination's
//!    downlink with the candidate added,
//! 4. on success assigns a network-unique channel ID and commits the channel
//!    to the system state; on failure reports which link was the bottleneck.

use rt_edf::{FeasibilityConfig, FeasibilityTester, PeriodicTask};
use rt_types::{ChannelId, LinkId, NodeId, RtError, RtResult};

use crate::channel::{Endpoint, RtChannel, RtChannelSpec};
use crate::dps::DeadlinePartitioningScheme;
use crate::system_state::SystemState;

/// The outcome of one admission request, with enough detail for experiments
/// to classify rejections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// The channel was accepted and committed to the system state.
    Accepted(RtChannel),
    /// The channel was rejected.
    Rejected {
        /// The link whose feasibility test failed first (uplink is tested
        /// before downlink), or `None` for validation failures.
        bottleneck: Option<LinkId>,
        /// Human-readable reason.
        reason: String,
    },
}

impl AdmissionDecision {
    /// `true` if the request was accepted.
    pub fn is_accepted(&self) -> bool {
        matches!(self, AdmissionDecision::Accepted(_))
    }

    /// The accepted channel, if any.
    pub fn channel(&self) -> Option<&RtChannel> {
        match self {
            AdmissionDecision::Accepted(ch) => Some(ch),
            AdmissionDecision::Rejected { .. } => None,
        }
    }
}

/// The admission controller: the deadline-partitioning scheme, the
/// feasibility tester and the system state it guards.
pub struct AdmissionController {
    dps: Box<dyn DeadlinePartitioningScheme>,
    tester: FeasibilityTester,
    state: SystemState,
    next_channel_id: u16,
    accepted: u64,
    rejected: u64,
}

impl std::fmt::Debug for AdmissionController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionController")
            .field("dps", &self.dps.name())
            .field("channels", &self.state.channel_count())
            .field("accepted", &self.accepted)
            .field("rejected", &self.rejected)
            .finish()
    }
}

impl AdmissionController {
    /// A controller over `state` using `dps` and the full two-constraint
    /// feasibility test.
    pub fn new(state: SystemState, dps: Box<dyn DeadlinePartitioningScheme>) -> Self {
        Self::with_tester(state, dps, FeasibilityTester::new())
    }

    /// A controller with an explicit feasibility tester (used by the
    /// utilisation-only ablation).
    pub fn with_tester(
        state: SystemState,
        dps: Box<dyn DeadlinePartitioningScheme>,
        tester: FeasibilityTester,
    ) -> Self {
        AdmissionController {
            dps,
            tester,
            state,
            next_channel_id: 1,
            accepted: 0,
            rejected: 0,
        }
    }

    /// A controller that checks only the utilisation bound (Constraint 1).
    pub fn utilisation_only(state: SystemState, dps: Box<dyn DeadlinePartitioningScheme>) -> Self {
        Self::with_tester(
            state,
            dps,
            FeasibilityTester::with_config(FeasibilityConfig {
                utilisation_only: true,
                ..FeasibilityConfig::default()
            }),
        )
    }

    /// The guarded system state.
    pub fn state(&self) -> &SystemState {
        &self.state
    }

    /// Name of the deadline-partitioning scheme in use.
    pub fn dps_name(&self) -> &'static str {
        self.dps.name()
    }

    /// Number of accepted requests so far.
    pub fn accepted_count(&self) -> u64 {
        self.accepted
    }

    /// Number of rejected requests so far.
    pub fn rejected_count(&self) -> u64 {
        self.rejected
    }

    /// Connect a node (idempotent).
    pub fn add_node(&mut self, node: NodeId) {
        self.state.add_node(node);
    }

    fn allocate_channel_id(&mut self) -> RtResult<ChannelId> {
        // Channel id 0 is reserved ("not set yet" on the wire).
        for _ in 0..u16::MAX {
            let candidate = self.next_channel_id;
            self.next_channel_id = if self.next_channel_id == u16::MAX {
                1
            } else {
                self.next_channel_id + 1
            };
            if self.state.channel(ChannelId::new(candidate)).is_none() {
                return Ok(ChannelId::new(candidate));
            }
        }
        Err(RtError::ChannelIdsExhausted)
    }

    /// Process a channel request; returns the decision.  Only accepted
    /// channels modify the system state.
    pub fn request(
        &mut self,
        source: NodeId,
        destination: NodeId,
        spec: RtChannelSpec,
    ) -> RtResult<AdmissionDecision> {
        // Basic validation.  Errors here are caller bugs (unknown node) or
        // malformed specs and are returned as errors, not decisions.
        if !self.state.has_node(source) {
            return Err(RtError::UnknownNode(source));
        }
        if !self.state.has_node(destination) {
            return Err(RtError::UnknownNode(destination));
        }
        if source == destination {
            return Err(RtError::InvalidChannelSpec(
                "source and destination must differ".into(),
            ));
        }
        if let Err(e) = spec.validate() {
            self.rejected += 1;
            return Ok(AdmissionDecision::Rejected {
                bottleneck: None,
                reason: e.to_string(),
            });
        }

        // Deadline partitioning.
        let split = self
            .dps
            .partition(&spec, source, destination, &self.state)?;
        split.validate(&spec)?;

        // Per-link feasibility with the candidate added (Eq. 18.6/18.7).
        let uplink = LinkId::uplink(source);
        let downlink = LinkId::downlink(destination);
        let up_task = PeriodicTask::new(spec.period, spec.capacity, split.uplink)?;
        let down_task = PeriodicTask::new(spec.period, spec.capacity, split.downlink)?;

        let up_set = self.state.link_taskset(uplink);
        let up_outcome = self.tester.test_with_candidate(&up_set, &up_task);
        if !up_outcome.is_feasible() {
            self.rejected += 1;
            return Ok(AdmissionDecision::Rejected {
                bottleneck: Some(uplink),
                reason: format!(
                    "uplink infeasible with d_iu={}: {:?}",
                    split.uplink, up_outcome.verdict
                ),
            });
        }

        let down_set = self.state.link_taskset(downlink);
        let down_outcome = self.tester.test_with_candidate(&down_set, &down_task);
        if !down_outcome.is_feasible() {
            self.rejected += 1;
            return Ok(AdmissionDecision::Rejected {
                bottleneck: Some(downlink),
                reason: format!(
                    "downlink infeasible with d_id={}: {:?}",
                    split.downlink, down_outcome.verdict
                ),
            });
        }

        // Commit.
        let id = self.allocate_channel_id()?;
        let channel = RtChannel {
            id,
            source: Endpoint::for_node(source),
            destination: Endpoint::for_node(destination),
            spec,
            split,
        };
        self.state.insert_channel(channel)?;
        self.accepted += 1;
        Ok(AdmissionDecision::Accepted(channel))
    }

    /// Tear down an established channel, releasing its reserved capacity.
    pub fn release(&mut self, id: ChannelId) -> RtResult<RtChannel> {
        self.state.remove_channel(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dps::{Adps, DpsKind, Sdps};
    use rt_types::Slots;

    fn controller(dps: DpsKind, nodes: u32) -> AdmissionController {
        AdmissionController::new(
            SystemState::with_nodes((0..nodes).map(NodeId::new)),
            dps.build(),
        )
    }

    #[test]
    fn accepts_until_the_uplink_saturates_with_sdps() {
        // One master (node 0) sending to many slaves with the paper's
        // parameters: SDPS caps the master's uplink at 6 channels.
        let mut ac = controller(DpsKind::Symmetric, 60);
        let spec = RtChannelSpec::paper_default();
        let mut accepted = 0;
        for dst in 1..=20u32 {
            let decision = ac.request(NodeId::new(0), NodeId::new(dst), spec).unwrap();
            if decision.is_accepted() {
                accepted += 1;
            } else if let AdmissionDecision::Rejected { bottleneck, .. } = &decision {
                assert_eq!(*bottleneck, Some(LinkId::uplink(NodeId::new(0))));
            }
        }
        assert_eq!(accepted, 6);
        assert_eq!(ac.accepted_count(), 6);
        assert_eq!(ac.rejected_count(), 14);
        assert_eq!(ac.state().channel_count(), 6);
    }

    #[test]
    fn adps_accepts_more_than_sdps_in_the_master_slave_pattern() {
        let spec = RtChannelSpec::paper_default();
        let run = |kind: DpsKind| -> u64 {
            let mut ac = controller(kind, 60);
            // 10 masters (0..10), 50 slaves (10..60), round-robin requests.
            let mut count = 0;
            for i in 0..120u32 {
                let master = NodeId::new(i % 10);
                let slave = NodeId::new(10 + (i % 50));
                if ac.request(master, slave, spec).unwrap().is_accepted() {
                    count += 1;
                }
            }
            count
        };
        let sdps = run(DpsKind::Symmetric);
        let adps = run(DpsKind::Asymmetric);
        assert!(
            adps > sdps,
            "ADPS ({adps}) should accept more channels than SDPS ({sdps})"
        );
        assert_eq!(sdps, 60, "SDPS caps at 6 per master uplink");
    }

    #[test]
    fn rejects_malformed_specs_as_decisions() {
        let mut ac = controller(DpsKind::Symmetric, 2);
        let bad = RtChannelSpec {
            period: Slots::new(10),
            capacity: Slots::new(4),
            deadline: Slots::new(6), // < 2C
        };
        let decision = ac.request(NodeId::new(0), NodeId::new(1), bad).unwrap();
        assert!(!decision.is_accepted());
        assert!(matches!(
            decision,
            AdmissionDecision::Rejected {
                bottleneck: None,
                ..
            }
        ));
    }

    #[test]
    fn errors_for_unknown_nodes_and_self_loops() {
        let mut ac = controller(DpsKind::Asymmetric, 2);
        let spec = RtChannelSpec::paper_default();
        assert!(ac.request(NodeId::new(0), NodeId::new(5), spec).is_err());
        assert!(ac.request(NodeId::new(5), NodeId::new(0), spec).is_err());
        assert!(ac.request(NodeId::new(1), NodeId::new(1), spec).is_err());
    }

    #[test]
    fn rejection_does_not_change_state() {
        let mut ac = controller(DpsKind::Symmetric, 10);
        let spec = RtChannelSpec::paper_default();
        // Saturate node 0's uplink.
        for dst in 1..=6u32 {
            assert!(ac
                .request(NodeId::new(0), NodeId::new(dst), spec)
                .unwrap()
                .is_accepted());
        }
        let before_channels = ac.state().channel_count();
        let before_load = ac.state().link_load(LinkId::uplink(NodeId::new(0)));
        let decision = ac.request(NodeId::new(0), NodeId::new(7), spec).unwrap();
        assert!(!decision.is_accepted());
        assert_eq!(ac.state().channel_count(), before_channels);
        assert_eq!(
            ac.state().link_load(LinkId::uplink(NodeId::new(0))),
            before_load
        );
    }

    #[test]
    fn release_frees_capacity_for_new_channels() {
        let mut ac = controller(DpsKind::Symmetric, 10);
        let spec = RtChannelSpec::paper_default();
        let mut ids = Vec::new();
        for dst in 1..=6u32 {
            let d = ac.request(NodeId::new(0), NodeId::new(dst), spec).unwrap();
            ids.push(d.channel().unwrap().id);
        }
        assert!(!ac
            .request(NodeId::new(0), NodeId::new(7), spec)
            .unwrap()
            .is_accepted());
        ac.release(ids[0]).unwrap();
        assert!(ac
            .request(NodeId::new(0), NodeId::new(7), spec)
            .unwrap()
            .is_accepted());
        assert!(ac.release(ChannelId::new(9999)).is_err());
    }

    #[test]
    fn channel_ids_are_unique_and_skip_zero() {
        let mut ac = controller(DpsKind::Asymmetric, 30);
        let spec = RtChannelSpec::paper_default();
        let mut seen = std::collections::HashSet::new();
        for src in 0..10u32 {
            for dst in 10..12u32 {
                if let AdmissionDecision::Accepted(ch) = ac
                    .request(NodeId::new(src), NodeId::new(dst), spec)
                    .unwrap()
                {
                    assert_ne!(ch.id.get(), 0);
                    assert!(seen.insert(ch.id), "duplicate id {:?}", ch.id);
                }
            }
        }
        assert!(!seen.is_empty());
    }

    #[test]
    fn utilisation_only_controller_over_admits_constrained_deadlines() {
        // With d < P the utilisation-only test accepts channels the full
        // test rejects: this is what Ablation B quantifies.
        let spec = RtChannelSpec::paper_default(); // U = 0.03, d = 40 << P
        let full = {
            let mut ac = controller(DpsKind::Symmetric, 40);
            let mut n = 0;
            for dst in 1..=33u32 {
                if ac
                    .request(NodeId::new(0), NodeId::new(dst), spec)
                    .unwrap()
                    .is_accepted()
                {
                    n += 1;
                }
            }
            n
        };
        let util_only = {
            let mut ac = AdmissionController::utilisation_only(
                SystemState::with_nodes((0..40).map(NodeId::new)),
                Box::new(Sdps),
            );
            let mut n = 0;
            for dst in 1..=33u32 {
                if ac
                    .request(NodeId::new(0), NodeId::new(dst), spec)
                    .unwrap()
                    .is_accepted()
                {
                    n += 1;
                }
            }
            n
        };
        assert_eq!(full, 6);
        assert_eq!(
            util_only, 33,
            "utilisation bound admits everything under U<=1"
        );
    }

    #[test]
    fn adps_controller_reports_dps_name() {
        let ac = AdmissionController::new(SystemState::new(), Box::new(Adps));
        assert_eq!(ac.dps_name(), "ADPS");
        assert!(format!("{ac:?}").contains("ADPS"));
    }
}
