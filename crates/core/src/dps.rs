//! Deadline-partitioning schemes (§18.4).
//!
//! A DPS maps the end-to-end relative deadline `d_i` of every channel onto a
//! per-link pair `(d_iu, d_id)` with `d_iu + d_id = d_i` (Eq. 18.8).  Written
//! as the uplink fraction `U_part,i = d_iu / d_i` (Eq. 18.11–18.13), a DPS is
//! a function of the current system state.
//!
//! This module implements:
//!
//! * [`Sdps`] — the *Symmetric* DPS (Eq. 18.14/18.15): always `U_part = ½`,
//!   independent of the system state;
//! * [`Adps`] — the *Asymmetric* DPS (Eq. 18.16/18.17): split proportionally
//!   to the *LinkLoad* (channel count) of the source's uplink and the
//!   destination's downlink, giving the bottleneck link the larger share of
//!   the deadline;
//! * [`WeightedAdps`] — an ablation that measures load in reserved
//!   utilisation (`Σ C/P`) instead of channel count, which distinguishes
//!   heavy channels from light ones;
//! * [`SearchDps`] — an ablation upper bound: per request, search the
//!   candidate splits and pick one for which both links pass the full
//!   feasibility test (falling back to the symmetric split when none does).

use rt_edf::{FeasibilityTester, PeriodicTask};
use rt_types::{LinkId, NodeId, RtResult, Slots};

use crate::channel::{DeadlineSplit, RtChannelSpec};
use crate::system_state::SystemState;

/// A deadline-partitioning scheme: `U_part = DPS(system state)` (Eq. 18.13).
pub trait DeadlinePartitioningScheme: Send + Sync {
    /// A short human-readable name (used in reports and benchmark output).
    fn name(&self) -> &'static str;

    /// Partition the deadline of a *candidate* channel from `source` to
    /// `destination` given the current `state` (the candidate itself is not
    /// yet part of the state).
    fn partition(
        &self,
        spec: &RtChannelSpec,
        source: NodeId,
        destination: NodeId,
        state: &SystemState,
    ) -> RtResult<DeadlineSplit>;
}

/// Which built-in scheme to use; convenient for configuration and for the
/// benchmark harnesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DpsKind {
    /// Symmetric partitioning (SDPS).
    Symmetric,
    /// Asymmetric, link-load proportional partitioning (ADPS).
    Asymmetric,
    /// Asymmetric partitioning weighted by reserved utilisation.
    UtilisationWeighted,
    /// Per-request feasibility-guided search.
    Search,
}

impl DpsKind {
    /// Instantiate the scheme.
    pub fn build(self) -> Box<dyn DeadlinePartitioningScheme> {
        match self {
            DpsKind::Symmetric => Box::new(Sdps),
            DpsKind::Asymmetric => Box::new(Adps),
            DpsKind::UtilisationWeighted => Box::new(WeightedAdps),
            DpsKind::Search => Box::new(SearchDps::default()),
        }
    }

    /// All built-in kinds, for sweeps.
    pub const ALL: [DpsKind; 4] = [
        DpsKind::Symmetric,
        DpsKind::Asymmetric,
        DpsKind::UtilisationWeighted,
        DpsKind::Search,
    ];
}

/// The Symmetric Deadline Partitioning Scheme: `d_iu = d_id = d_i / 2`
/// (Eq. 18.14), i.e. `U_part,i = ½` regardless of the system state
/// (Eq. 18.15).
#[derive(Debug, Clone, Copy, Default)]
pub struct Sdps;

impl DeadlinePartitioningScheme for Sdps {
    fn name(&self) -> &'static str {
        "SDPS"
    }

    fn partition(
        &self,
        spec: &RtChannelSpec,
        _source: NodeId,
        _destination: NodeId,
        _state: &SystemState,
    ) -> RtResult<DeadlineSplit> {
        DeadlineSplit::symmetric(spec)
    }
}

/// The Asymmetric Deadline Partitioning Scheme:
/// `U_part,i = LL(Source_i) / (LL(Source_i) + LL(Destination_i))`
/// (Eq. 18.16), where `LL` is the number of channels traversing the source's
/// uplink respectively the destination's downlink.
///
/// The DPS is defined over the *system state including the channel being
/// partitioned* (Eq. 18.10: the dimension of the DPS is `size(K)` with the
/// new channel in `K`), so the candidate itself counts towards both link
/// loads.  This also matches the paper's measured saturation point (~110
/// accepted channels, i.e. 11 per master uplink, in the Figure 18.5
/// configuration): for the first channel of a pair the split is the
/// symmetric ½, and the split drifts towards the loaded uplink as its load
/// grows, without ever starving the downlink to its bare minimum.
#[derive(Debug, Clone, Copy, Default)]
pub struct Adps;

impl DeadlinePartitioningScheme for Adps {
    fn name(&self) -> &'static str {
        "ADPS"
    }

    fn partition(
        &self,
        spec: &RtChannelSpec,
        source: NodeId,
        destination: NodeId,
        state: &SystemState,
    ) -> RtResult<DeadlineSplit> {
        // "+1" on both sides: the candidate channel traverses both links and
        // is part of the system state the DPS partitions.
        let ll_src = state.link_load(LinkId::uplink(source)) as f64 + 1.0;
        let ll_dst = state.link_load(LinkId::downlink(destination)) as f64 + 1.0;
        let upart = ll_src / (ll_src + ll_dst);
        DeadlineSplit::from_upart(spec, upart)
    }
}

/// Utilisation-weighted variant of ADPS: the load of a link is measured as
/// its reserved utilisation `Σ C/P` rather than its channel count, so a link
/// carrying a few heavy channels is treated as more loaded than one carrying
/// the same number of light channels.
#[derive(Debug, Clone, Copy, Default)]
pub struct WeightedAdps;

impl DeadlinePartitioningScheme for WeightedAdps {
    fn name(&self) -> &'static str {
        "ADPS-util"
    }

    fn partition(
        &self,
        spec: &RtChannelSpec,
        source: NodeId,
        destination: NodeId,
        state: &SystemState,
    ) -> RtResult<DeadlineSplit> {
        // As for ADPS, the candidate channel's own utilisation counts on
        // both links.
        let u = spec.utilisation();
        let u_src = state.link_utilisation(LinkId::uplink(source)) + u;
        let u_dst = state.link_utilisation(LinkId::downlink(destination)) + u;
        let total = u_src + u_dst;
        let upart = if total <= f64::EPSILON {
            0.5
        } else {
            u_src / total
        };
        DeadlineSplit::from_upart(spec, upart)
    }
}

/// Feasibility-guided search: enumerate candidate uplink deadlines between
/// `C_i` and `d_i − C_i` and return the first split for which *both* links
/// pass the full EDF feasibility test with the candidate added.  This is an
/// upper bound on what any state-dependent DPS can achieve for a single
/// request (it is greedy across requests, not globally optimal).
///
/// The number of candidates examined per request is capped to keep admission
/// latency bounded; candidates are spread evenly over the valid range.
#[derive(Debug, Clone, Copy)]
pub struct SearchDps {
    /// Maximum number of candidate splits to try per request.
    pub max_candidates: usize,
}

impl Default for SearchDps {
    fn default() -> Self {
        SearchDps { max_candidates: 64 }
    }
}

impl DeadlinePartitioningScheme for SearchDps {
    fn name(&self) -> &'static str {
        "Search-DPS"
    }

    fn partition(
        &self,
        spec: &RtChannelSpec,
        source: NodeId,
        destination: NodeId,
        state: &SystemState,
    ) -> RtResult<DeadlineSplit> {
        let tester = FeasibilityTester::new();
        let up_set = state.link_taskset(LinkId::uplink(source));
        let down_set = state.link_taskset(LinkId::downlink(destination));

        let c = spec.capacity.get();
        let d = spec.deadline.get();
        let lo = c;
        let hi = d - c;
        let span = hi - lo;
        let candidates = (self.max_candidates.max(1) as u64).min(span + 1);

        // Start from the ADPS guess and then sweep the range outward-ish by
        // simply scanning evenly spaced candidates; the first feasible split
        // wins.
        let adps_guess = Adps.partition(spec, source, destination, state)?;
        let mut tried: Vec<Slots> = Vec::with_capacity(candidates as usize + 1);
        tried.push(adps_guess.uplink);
        for k in 0..candidates {
            let up = if candidates == 1 {
                lo
            } else {
                lo + (span * k) / (candidates - 1)
            };
            let up = Slots::new(up);
            if !tried.contains(&up) {
                tried.push(up);
            }
        }

        for up in tried {
            let down = spec.deadline - up;
            let Ok(split) = DeadlineSplit::new(spec, up, down) else {
                continue;
            };
            let up_task = PeriodicTask::new(spec.period, spec.capacity, split.uplink)?;
            let down_task = PeriodicTask::new(spec.period, spec.capacity, split.downlink)?;
            if tester.test_with_candidate(&up_set, &up_task).is_feasible()
                && tester
                    .test_with_candidate(&down_set, &down_task)
                    .is_feasible()
            {
                return Ok(split);
            }
        }
        // No feasible split found — return the symmetric one and let the
        // admission controller reject the request.
        DeadlineSplit::symmetric(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{Endpoint, RtChannel};
    use rt_types::ChannelId;

    fn paper_state(masters: u32, slaves: u32) -> SystemState {
        SystemState::with_nodes((0..masters + slaves).map(NodeId::new))
    }

    fn insert(state: &mut SystemState, id: u16, src: u32, dst: u32, split: DeadlineSplit) {
        let spec = RtChannelSpec::paper_default();
        state
            .insert_channel(RtChannel {
                id: ChannelId::new(id),
                source: Endpoint::for_node(NodeId::new(src)),
                destination: Endpoint::for_node(NodeId::new(dst)),
                spec,
                split,
            })
            .unwrap();
    }

    #[test]
    fn sdps_is_state_invariant() {
        let spec = RtChannelSpec::paper_default();
        let mut state = paper_state(2, 2);
        let s1 = Sdps
            .partition(&spec, NodeId::new(0), NodeId::new(2), &state)
            .unwrap();
        // Add load; SDPS must not care.
        insert(&mut state, 1, 0, 2, s1);
        insert(&mut state, 2, 0, 3, s1);
        let s2 = Sdps
            .partition(&spec, NodeId::new(0), NodeId::new(2), &state)
            .unwrap();
        assert_eq!(s1, s2);
        assert_eq!(s1.uplink, Slots::new(20));
        assert_eq!(s1.downlink, Slots::new(20));
    }

    #[test]
    fn adps_shifts_deadline_towards_the_loaded_uplink() {
        let spec = RtChannelSpec::paper_default();
        let mut state = paper_state(1, 5);
        // First channel: no load anywhere -> counting only the candidate on
        // both links gives the symmetric split.
        let split = Adps
            .partition(&spec, NodeId::new(0), NodeId::new(1), &state)
            .unwrap();
        assert_eq!(split.uplink, Slots::new(20));
        insert(&mut state, 1, 0, 1, split);

        // Master 0 now has 1 channel on its uplink; slave 2's downlink has 0.
        // Including the candidate: U_part = 2 / (2 + 1) = 2/3 -> d_u = 27.
        let split = Adps
            .partition(&spec, NodeId::new(0), NodeId::new(2), &state)
            .unwrap();
        assert_eq!(split.uplink, Slots::new(27));
        assert_eq!(split.downlink, Slots::new(13));
        insert(&mut state, 2, 0, 2, split);

        // With 5 channels on the uplink and 1 on slave 1's downlink:
        // U_part = (5+1) / (5+1 + 1+1) = 6/8 -> d_u = 30.
        insert(
            &mut state,
            3,
            0,
            3,
            DeadlineSplit::symmetric(&spec).unwrap(),
        );
        insert(
            &mut state,
            4,
            0,
            4,
            DeadlineSplit::symmetric(&spec).unwrap(),
        );
        insert(
            &mut state,
            5,
            0,
            5,
            DeadlineSplit::symmetric(&spec).unwrap(),
        );
        let split = Adps
            .partition(&spec, NodeId::new(0), NodeId::new(1), &state)
            .unwrap();
        assert_eq!(split.uplink, Slots::new(30));
        assert_eq!(split.downlink, Slots::new(10));
    }

    #[test]
    fn adps_symmetric_when_loads_equal() {
        let spec = RtChannelSpec::paper_default();
        let mut state = paper_state(2, 2);
        insert(
            &mut state,
            1,
            0,
            2,
            DeadlineSplit::symmetric(&spec).unwrap(),
        );
        insert(
            &mut state,
            2,
            1,
            3,
            DeadlineSplit::symmetric(&spec).unwrap(),
        );
        // Uplink of 0 has load 1, downlink of 3 has load 1 -> 0.5.
        let split = Adps
            .partition(&spec, NodeId::new(0), NodeId::new(3), &state)
            .unwrap();
        assert_eq!(split.uplink, Slots::new(20));
    }

    #[test]
    fn weighted_adps_follows_utilisation_not_count() {
        // Uplink of node 0 carries ONE heavy channel (C=30, P=100); the
        // downlink of node 2 carries TWO light channels (C=1, P=100).
        // Channel-count ADPS says 1/(1+2) = 1/3 -> favours the downlink.
        // Utilisation-weighted ADPS says 0.30/(0.30+0.02) ≈ 0.94 -> favours
        // the uplink, which is the genuinely loaded one.
        let mut state = paper_state(2, 2);
        let heavy = RtChannelSpec::new(Slots::new(100), Slots::new(30), Slots::new(80)).unwrap();
        let light = RtChannelSpec::new(Slots::new(100), Slots::new(1), Slots::new(40)).unwrap();
        state
            .insert_channel(RtChannel {
                id: ChannelId::new(1),
                source: Endpoint::for_node(NodeId::new(0)),
                destination: Endpoint::for_node(NodeId::new(3)),
                spec: heavy,
                split: DeadlineSplit::symmetric(&heavy).unwrap(),
            })
            .unwrap();
        for (id, src) in [(2u16, 1u32), (3, 3)] {
            state
                .insert_channel(RtChannel {
                    id: ChannelId::new(id),
                    source: Endpoint::for_node(NodeId::new(src)),
                    destination: Endpoint::for_node(NodeId::new(2)),
                    spec: light,
                    split: DeadlineSplit::symmetric(&light).unwrap(),
                })
                .unwrap();
        }
        let spec = RtChannelSpec::paper_default();
        let count_based = Adps
            .partition(&spec, NodeId::new(0), NodeId::new(2), &state)
            .unwrap();
        let util_based = WeightedAdps
            .partition(&spec, NodeId::new(0), NodeId::new(2), &state)
            .unwrap();
        assert!(count_based.uplink < Slots::new(20));
        assert!(util_based.uplink > Slots::new(30));
    }

    #[test]
    fn weighted_adps_defaults_to_symmetric_on_empty_links() {
        let spec = RtChannelSpec::paper_default();
        let state = paper_state(1, 1);
        let split = WeightedAdps
            .partition(&spec, NodeId::new(0), NodeId::new(1), &state)
            .unwrap();
        assert_eq!(split.uplink, Slots::new(20));
    }

    #[test]
    fn search_dps_finds_a_feasible_split_when_one_exists() {
        // Load the uplink of node 0 so heavily that the symmetric split no
        // longer fits, then check Search-DPS still finds a split (by giving
        // the uplink a larger share).
        let spec = RtChannelSpec::paper_default();
        let mut state = paper_state(1, 10);
        // Six symmetric channels exhaust the d_u = 20 budget (6*3 = 18 <= 20,
        // a 7th would need 21 > 20).
        for i in 0..6u16 {
            insert(
                &mut state,
                i + 1,
                0,
                (i + 1) as u32,
                DeadlineSplit::symmetric(&spec).unwrap(),
            );
        }
        let tester = FeasibilityTester::new();
        // Sanity: symmetric split for a 7th channel is uplink-infeasible.
        let up_set = state.link_taskset(LinkId::uplink(NodeId::new(0)));
        let sym_task = PeriodicTask::new(spec.period, spec.capacity, Slots::new(20)).unwrap();
        assert!(!tester.test_with_candidate(&up_set, &sym_task).is_feasible());

        let split = SearchDps::default()
            .partition(&spec, NodeId::new(0), NodeId::new(7), &state)
            .unwrap();
        let up_task = PeriodicTask::new(spec.period, spec.capacity, split.uplink).unwrap();
        let down_set = state.link_taskset(LinkId::downlink(NodeId::new(7)));
        let down_task = PeriodicTask::new(spec.period, spec.capacity, split.downlink).unwrap();
        assert!(tester.test_with_candidate(&up_set, &up_task).is_feasible());
        assert!(tester
            .test_with_candidate(&down_set, &down_task)
            .is_feasible());
    }

    #[test]
    fn search_dps_falls_back_to_symmetric_when_nothing_fits() {
        // Saturate the uplink utilisation completely: no split can work.
        let mut state = paper_state(1, 3);
        let big = RtChannelSpec::new(Slots::new(10), Slots::new(5), Slots::new(20)).unwrap();
        state
            .insert_channel(RtChannel {
                id: ChannelId::new(1),
                source: Endpoint::for_node(NodeId::new(0)),
                destination: Endpoint::for_node(NodeId::new(1)),
                spec: big,
                split: DeadlineSplit::new(&big, Slots::new(10), Slots::new(10)).unwrap(),
            })
            .unwrap();
        state
            .insert_channel(RtChannel {
                id: ChannelId::new(2),
                source: Endpoint::for_node(NodeId::new(0)),
                destination: Endpoint::for_node(NodeId::new(2)),
                spec: big,
                split: DeadlineSplit::new(&big, Slots::new(10), Slots::new(10)).unwrap(),
            })
            .unwrap();
        // Uplink utilisation is now 1.0; any additional channel is
        // infeasible on the uplink no matter the split.
        let spec = RtChannelSpec::paper_default();
        let split = SearchDps::default()
            .partition(&spec, NodeId::new(0), NodeId::new(3), &state)
            .unwrap();
        assert_eq!(split, DeadlineSplit::symmetric(&spec).unwrap());
    }

    #[test]
    fn dps_kind_builds_all_variants() {
        for kind in DpsKind::ALL {
            let dps = kind.build();
            assert!(!dps.name().is_empty());
            let spec = RtChannelSpec::paper_default();
            let state = paper_state(1, 1);
            let split = dps
                .partition(&spec, NodeId::new(0), NodeId::new(1), &state)
                .unwrap();
            split.validate(&spec).unwrap();
        }
    }
}
