//! The switch-side RT channel management software (Figure 18.2, box "RT
//! channel management").
//!
//! The manager owns the admission controller and drives the switch's part of
//! the establishment handshake:
//!
//! * on a **RequestFrame** from a source node it runs admission control;
//!   if the channel is feasible it tentatively reserves it, writes the newly
//!   assigned channel ID into the frame and forwards it to the destination
//!   node; otherwise it answers the source directly with a rejection,
//! * on a **ResponseFrame** from the destination it finalises (accept) or
//!   rolls back (reject) the tentative reservation and forwards the response
//!   to the source,
//! * on a **TeardownFrame** it releases the channel's reserved capacity.
//!
//! The manager is a pure state machine: it consumes decoded frames and emits
//! [`SwitchAction`]s; actually putting those actions on the wire is the
//! caller's job (`rt-core::network` does it through the simulator).

use std::collections::HashMap;
use std::fmt;

use rt_frames::rt_response::ResponseVerdict;
use rt_frames::{Frame, RequestFrame, ReservationFrame, ResponseFrame};
use rt_types::{
    ChannelId, ConnectionRequestId, HopLink, LinkId, MacAddr, NodeId, Route, RtError, RtResult,
    SimTime, Slots, SwitchId,
};

use crate::admission::{AdmissionController, AdmissionDecision};
use crate::channel::{RtChannel, RtChannelSpec};
use crate::protocol::ChannelRequest;

/// Something the switch wants to transmit as a result of handling a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwitchAction {
    /// Forward the (channel-ID-annotated) request to the destination node.
    ForwardRequest {
        /// The destination node of the requested channel.
        to: NodeId,
        /// The annotated request.
        frame: RequestFrame,
    },
    /// Send a response towards a node (the source of the original request).
    SendResponse {
        /// The node to answer.
        to: NodeId,
        /// The response.
        frame: ResponseFrame,
    },
    /// Send a reservation frame to another switch's control plane (the
    /// distributed two-phase admission protocol; central managers never
    /// emit this).
    SendControl {
        /// The addressed switch.
        to: SwitchId,
        /// The reservation frame.
        frame: ReservationFrame,
    },
}

/// Everything a control-plane frame made the manager decide: frames to put
/// on the wire (each originating at a specific switch) and channels whose
/// wire state must be torn down.
///
/// This is the switch-located generalisation of the bare
/// `Vec<SwitchAction>`: the central managers originate everything at the
/// managing switch, while the distributed manager emits from whichever
/// switch handled the frame.
#[derive(Debug, Default)]
pub struct ControlOutcome {
    /// Frames to transmit, each from the given switch.
    pub emissions: Vec<(SwitchId, SwitchAction)>,
    /// Channels released by this frame (tear-downs): the caller must clear
    /// their wire state and tell the destination RT layer to forget them.
    pub released: Vec<ReleasedChannel>,
}

impl ControlOutcome {
    /// An outcome that transmits nothing and releases nothing.
    pub fn empty() -> Self {
        ControlOutcome::default()
    }

    /// Wrap legacy actions, all originating at one switch.
    pub fn emissions_at(at: SwitchId, actions: Vec<SwitchAction>) -> Self {
        ControlOutcome {
            emissions: actions.into_iter().map(|a| (at, a)).collect(),
            released: Vec::new(),
        }
    }
}

/// What the network glue needs to know about a channel it just tore down:
/// which id was released and which destination node should forget it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReleasedChannel {
    /// The released channel id.
    pub id: ChannelId,
    /// The node that was receiving on the channel.
    pub destination: NodeId,
}

/// The unified, manager-agnostic view of an established channel: its
/// contract, the route it was admitted on and the per-link deadline split.
///
/// A single-switch star channel reports the two-link route `uplink →
/// downlink` with the `d_iu`/`d_id` split of Eq. 18.8; a fabric channel
/// reports the full multi-hop route with its partitioned deadlines.  Either
/// way `path.len()` is the hop count `h` of the hop-aware Eq. 18.1 bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelRoute {
    /// The channel id.
    pub id: ChannelId,
    /// Source node.
    pub source: NodeId,
    /// Destination node.
    pub destination: NodeId,
    /// Traffic contract.
    pub spec: RtChannelSpec,
    /// The admitted route (derefs to its `[HopLink]`s).
    pub path: Route,
    /// Per-link deadline budgets, in the same order as `path`; they sum to
    /// the end-to-end deadline `d_i`.
    pub link_deadlines: Vec<Slots>,
}

/// The manager's answer to a trunk failure: which admitted channels were
/// re-routed over surviving paths (with their *new* routes), which had to be
/// dropped because no surviving route could admit them (with their *old*,
/// now-released routes), and how many were untouched.
///
/// The capacity story is exact: every affected channel's reservation was
/// released on all links of its old path; re-routed channels hold fresh
/// reservations on every link of their new path; dropped channels hold
/// nothing.
#[derive(Debug, Clone)]
pub struct FailoverReport {
    /// The failed trunk, as given to the failure handler.
    pub link: (SwitchId, SwitchId),
    /// Channels re-admitted over surviving routes, with their new
    /// [`ChannelRoute`] views (route + fresh per-link deadline split).
    pub rerouted: Vec<ChannelRoute>,
    /// Channels released without a surviving feasible route, with the route
    /// view they had before the failure.
    pub dropped: Vec<ChannelRoute>,
    /// Channels whose route never touched the failed trunk.
    pub unaffected: usize,
}

impl FailoverReport {
    /// Number of channels whose route crossed the failed trunk.
    pub fn affected(&self) -> usize {
        self.rerouted.len() + self.dropped.len()
    }
}

/// The switch-side RT channel management software, star or fabric: the one
/// interface `RtNetwork` drives, whatever the topology.
///
/// A channel manager is a pure state machine — decoded control frames in,
/// [`SwitchAction`]s out — plus read access to the channels it has
/// established.  [`SwitchChannelManager`] implements it for the paper's
/// single-switch star (two-link admission, four DPS variants);
/// [`crate::multihop::FabricChannelManager`] for multi-switch fabrics
/// (per-link admission along the whole route).
pub trait ChannelManager: fmt::Debug {
    /// Handle a RequestFrame received from a source node.
    fn handle_request(&mut self, frame: &RequestFrame) -> RtResult<Vec<SwitchAction>>;

    /// Handle a ResponseFrame received from a destination node.
    fn handle_response(&mut self, frame: &ResponseFrame) -> RtResult<Vec<SwitchAction>>;

    /// Handle a channel tear-down: release the reserved capacity on every
    /// link the channel occupied.
    fn handle_teardown(&mut self, channel: ChannelId) -> RtResult<ReleasedChannel>;

    /// Established (confirmed or pending) channel count.
    fn channel_count(&self) -> usize;

    /// Number of reservations still waiting for the destination's answer.
    fn pending_count(&self) -> usize;

    /// The ids of all established channels, in ascending order.
    fn channel_ids(&self) -> Vec<ChannelId>;

    /// The route view of an established channel, or `None` if unknown.
    fn channel_route(&self, id: ChannelId) -> Option<ChannelRoute>;

    /// The number of channels currently traversing a directed link.
    fn link_load(&self, link: HopLink) -> usize;

    /// `true` if admitted channels carry per-hop deadline budgets that the
    /// wire-level simulator should enforce per link (multi-hop deadline
    /// partitioning).  The star manager keeps the paper's end-to-end EDF
    /// stamps instead.
    fn schedules_hops(&self) -> bool;

    /// React to a trunk failure: release the reservations of every admitted
    /// channel whose route crossed the failed trunk and re-admit each over
    /// the surviving routes (trying the router's candidate paths in order),
    /// preserving channel ids so the endpoints' state stays valid.  Channels
    /// no surviving route can admit are dropped.  Channels off the failed
    /// trunk are untouched — their reservations, routes and deadline splits
    /// stay byte-for-byte identical.
    fn handle_link_failure(&mut self, from: SwitchId, to: SwitchId) -> RtResult<FailoverReport>;

    /// React to a trunk repair: restore the trunk for future admissions and
    /// *re-optimise* — every channel whose current path differs from the
    /// router's primary route on the repaired graph is released and
    /// re-admitted onto that primary route (ids preserved, release-then-
    /// readmit like fail-over), so capacity stranded on detours flows back
    /// to the shortest paths.  A channel the primary route cannot admit
    /// stays on its detour; a repair never drops a channel, so the report's
    /// `dropped` is always empty and `rerouted` lists the migrated channels
    /// with their new routes (the caller must refresh their wire state).
    fn handle_link_repair(&mut self, from: SwitchId, to: SwitchId) -> RtResult<FailoverReport>;

    /// React to a whole-switch failure: every healthy trunk incident to
    /// `switch` goes down atomically, then every channel that crossed any
    /// of them fails over as in [`ChannelManager::handle_link_failure`].
    /// The default rejects (a single-switch star has no trunks to lose).
    fn handle_switch_failure(&mut self, switch: SwitchId) -> RtResult<FailoverReport> {
        Err(RtError::Config(format!(
            "this manager cannot fail switch {switch}: no trunk fabric"
        )))
    }

    /// Handle any control-plane frame delivered to the control plane of
    /// switch `at`, originated by `from` (`NodeId::SWITCH` for
    /// switch-originated reservation traffic), at simulated time `now`.
    ///
    /// This is the one entry point the network glue drives.  The default
    /// implementation reproduces the centralised behaviour: `at` and `now`
    /// are ignored (every control frame was forwarded to the managing
    /// switch anyway, and a central manager holds no leases), the legacy
    /// per-kind handlers run, and all emissions originate at `at`.  The
    /// distributed manager overrides this with the per-switch two-phase
    /// reservation protocol, sweeping the handling site's expired leases
    /// first.
    fn handle_frame_at(
        &mut self,
        at: SwitchId,
        from: NodeId,
        frame: &Frame,
        now: SimTime,
    ) -> RtResult<ControlOutcome> {
        let _ = (from, now);
        match frame {
            Frame::Request(req) => Ok(ControlOutcome::emissions_at(at, self.handle_request(req)?)),
            Frame::Response(resp) => Ok(ControlOutcome::emissions_at(
                at,
                self.handle_response(resp)?,
            )),
            Frame::Teardown(td) => {
                let released = self.handle_teardown(td.rt_channel_id)?;
                Ok(ControlOutcome {
                    emissions: Vec::new(),
                    released: vec![released],
                })
            }
            other => Err(RtError::ProtocolViolation(format!(
                "unexpected frame at the switch control plane: {other:?}"
            ))),
        }
    }

    /// The earliest instant at which this manager has time-driven work to
    /// do (a reservation lease or a coordination deadline expiring), or
    /// `None` if it is purely frame-driven.  The network glue advances the
    /// clock to this instant and calls [`ChannelManager::on_tick`] when a
    /// handshake stalls instead of spinning forever.
    fn next_timeout(&self) -> Option<SimTime> {
        None
    }

    /// Run all time-driven work due at or before `now`: sweep expired
    /// reservation leases and abort timed-out coordinations.  Emissions
    /// (lease-expiry rejections back to requesters, release sweeps for
    /// reclaimed slack) are returned like any frame outcome.  After this
    /// returns, [`ChannelManager::next_timeout`] is strictly after `now`
    /// (or `None`).  The default is a no-op: central managers hold no
    /// leases.
    fn on_tick(&mut self, now: SimTime) -> RtResult<ControlOutcome> {
        let _ = now;
        Ok(ControlOutcome::empty())
    }

    /// Take the control frames this manager queued outside a frame handler
    /// (link-state floods originated by fault/repair notifications).  The
    /// caller must put them on the wire; managers without a control plane
    /// of their own return nothing.
    fn drain_control(&mut self) -> Vec<(SwitchId, SwitchAction)> {
        Vec::new()
    }

    /// Audit the control plane's book-keeping in a quiescent state (no
    /// handshake in flight): every unit of reserved slack must belong to an
    /// admitted channel, every admitted channel must hold exactly its
    /// route's reservations, and no channel id may be admitted twice.
    /// Returns a descriptive error on the first violation found.  The
    /// default accepts (a central manager's single ledger is audited
    /// through its own admission invariants).
    fn audit_quiescent(&self) -> RtResult<()> {
        Ok(())
    }
}

/// A reservation waiting for the destination node's confirmation.
#[derive(Debug, Clone, Copy)]
struct PendingReservation {
    source: NodeId,
    request_id: ConnectionRequestId,
}

/// The switch-side channel manager.
#[derive(Debug)]
pub struct SwitchChannelManager {
    admission: AdmissionController,
    /// Reservations keyed by the assigned channel id, awaiting the
    /// destination's ResponseFrame.
    pending: HashMap<ChannelId, PendingReservation>,
    switch_mac: MacAddr,
}

impl SwitchChannelManager {
    /// Wrap an admission controller.
    pub fn new(admission: AdmissionController) -> Self {
        SwitchChannelManager {
            admission,
            pending: HashMap::new(),
            switch_mac: MacAddr::for_switch(),
        }
    }

    /// The admission controller (and through it the system state).
    pub fn admission(&self) -> &AdmissionController {
        &self.admission
    }

    /// Number of reservations still waiting for the destination's answer.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Handle a RequestFrame received from `the source node`.
    pub fn handle_request(&mut self, frame: &RequestFrame) -> RtResult<Vec<SwitchAction>> {
        let request = ChannelRequest::from_frame(frame)?;
        let decision = self
            .admission
            .request(request.source, request.destination, request.spec)?;
        match decision {
            AdmissionDecision::Accepted(channel) => {
                // Tentative reservation: capacity is held, but the channel
                // only becomes usable once the destination accepts.
                self.pending.insert(
                    channel.id,
                    PendingReservation {
                        source: request.source,
                        request_id: request.request_id,
                    },
                );
                let mut annotated = *frame;
                annotated.rt_channel_id = Some(channel.id);
                Ok(vec![SwitchAction::ForwardRequest {
                    to: request.destination,
                    frame: annotated,
                }])
            }
            AdmissionDecision::Rejected { .. } => Ok(vec![SwitchAction::SendResponse {
                to: request.source,
                frame: ResponseFrame {
                    rt_channel_id: None,
                    switch_mac: self.switch_mac,
                    verdict: ResponseVerdict::Rejected,
                    connection_request_id: request.request_id,
                },
            }]),
        }
    }

    /// Handle a ResponseFrame received from a destination node.
    pub fn handle_response(&mut self, frame: &ResponseFrame) -> RtResult<Vec<SwitchAction>> {
        let channel_id = frame.rt_channel_id.ok_or_else(|| {
            RtError::ProtocolViolation("destination response carries no RT channel id".into())
        })?;
        let reservation = self.pending.remove(&channel_id).ok_or_else(|| {
            RtError::UnknownRequest(format!("no pending reservation for channel {channel_id}"))
        })?;
        if !frame.verdict.is_accepted() {
            // Destination refused: roll the reservation back.
            self.admission.release(channel_id)?;
        }
        Ok(vec![SwitchAction::SendResponse {
            to: reservation.source,
            frame: ResponseFrame {
                rt_channel_id: Some(channel_id),
                switch_mac: self.switch_mac,
                verdict: frame.verdict,
                connection_request_id: reservation.request_id,
            },
        }])
    }

    /// Handle a channel tear-down: release the reserved capacity.
    pub fn handle_teardown(&mut self, channel: ChannelId) -> RtResult<RtChannel> {
        self.admission.release(channel)
    }

    /// Established (confirmed or pending) channel count, for reporting.
    pub fn channel_count(&self) -> usize {
        self.admission.state().channel_count()
    }
}

impl ChannelManager for SwitchChannelManager {
    fn handle_request(&mut self, frame: &RequestFrame) -> RtResult<Vec<SwitchAction>> {
        SwitchChannelManager::handle_request(self, frame)
    }

    fn handle_response(&mut self, frame: &ResponseFrame) -> RtResult<Vec<SwitchAction>> {
        SwitchChannelManager::handle_response(self, frame)
    }

    fn handle_teardown(&mut self, channel: ChannelId) -> RtResult<ReleasedChannel> {
        let released = SwitchChannelManager::handle_teardown(self, channel)?;
        Ok(ReleasedChannel {
            id: released.id,
            destination: released.destination.node,
        })
    }

    fn channel_count(&self) -> usize {
        SwitchChannelManager::channel_count(self)
    }

    fn pending_count(&self) -> usize {
        SwitchChannelManager::pending_count(self)
    }

    fn channel_ids(&self) -> Vec<ChannelId> {
        self.admission.state().channels().map(|c| c.id).collect()
    }

    fn channel_route(&self, id: ChannelId) -> Option<ChannelRoute> {
        let channel = self.admission.state().channel(id)?;
        let path = Route::from_links(vec![
            HopLink::Uplink(channel.source.node),
            HopLink::Downlink(channel.destination.node),
        ])
        .expect("uplink + downlink is a valid route");
        Some(ChannelRoute {
            id: channel.id,
            source: channel.source.node,
            destination: channel.destination.node,
            spec: channel.spec,
            path,
            link_deadlines: vec![channel.split.uplink, channel.split.downlink],
        })
    }

    fn link_load(&self, link: HopLink) -> usize {
        match link {
            HopLink::Uplink(n) => self.admission.state().link_load(LinkId::uplink(n)),
            HopLink::Downlink(n) => self.admission.state().link_load(LinkId::downlink(n)),
            // A single-switch star has no trunks.
            HopLink::Trunk { .. } => 0,
        }
    }

    fn schedules_hops(&self) -> bool {
        false
    }

    fn handle_link_failure(&mut self, from: SwitchId, to: SwitchId) -> RtResult<FailoverReport> {
        Err(RtError::Config(format!(
            "a single-switch star has no trunk {from} <-> {to} to fail"
        )))
    }

    fn handle_link_repair(&mut self, from: SwitchId, to: SwitchId) -> RtResult<FailoverReport> {
        Err(RtError::Config(format!(
            "a single-switch star has no trunk {from} <-> {to} to repair"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::RtChannelSpec;
    use crate::dps::DpsKind;
    use crate::system_state::SystemState;
    use rt_types::{ConnectionRequestId, NodeId};

    fn manager(nodes: u32, dps: DpsKind) -> SwitchChannelManager {
        SwitchChannelManager::new(AdmissionController::new(
            SystemState::with_nodes((0..nodes).map(NodeId::new)),
            dps.build(),
        ))
    }

    fn request(src: u32, dst: u32, req_id: u8) -> RequestFrame {
        ChannelRequest {
            source: NodeId::new(src),
            destination: NodeId::new(dst),
            spec: RtChannelSpec::paper_default(),
            request_id: ConnectionRequestId::new(req_id),
        }
        .to_frame()
    }

    fn destination_accepts(frame: &RequestFrame) -> ResponseFrame {
        ResponseFrame {
            rt_channel_id: frame.rt_channel_id,
            switch_mac: MacAddr::for_switch(),
            verdict: ResponseVerdict::Accepted,
            connection_request_id: frame.connection_request_id,
        }
    }

    #[test]
    fn full_accept_handshake() {
        let mut m = manager(4, DpsKind::Asymmetric);
        let actions = m.handle_request(&request(0, 1, 7)).unwrap();
        assert_eq!(actions.len(), 1);
        let forwarded = match &actions[0] {
            SwitchAction::ForwardRequest { to, frame } => {
                assert_eq!(*to, NodeId::new(1));
                assert!(frame.rt_channel_id.is_some());
                *frame
            }
            other => panic!("expected ForwardRequest, got {other:?}"),
        };
        assert_eq!(m.pending_count(), 1);
        assert_eq!(m.channel_count(), 1);

        let actions = m.handle_response(&destination_accepts(&forwarded)).unwrap();
        assert_eq!(m.pending_count(), 0);
        match &actions[0] {
            SwitchAction::SendResponse { to, frame } => {
                assert_eq!(*to, NodeId::new(0));
                assert!(frame.verdict.is_accepted());
                assert_eq!(frame.connection_request_id, ConnectionRequestId::new(7));
                assert_eq!(frame.rt_channel_id, forwarded.rt_channel_id);
            }
            other => panic!("expected SendResponse, got {other:?}"),
        }
        assert_eq!(m.channel_count(), 1);
    }

    #[test]
    fn switch_rejection_answers_source_directly() {
        let mut m = manager(10, DpsKind::Symmetric);
        // Saturate node 0's uplink (6 channels with the paper parameters).
        for i in 0..6u8 {
            let f = request(0, 1 + u32::from(i), i);
            let actions = m.handle_request(&f).unwrap();
            let fwd = match &actions[0] {
                SwitchAction::ForwardRequest { frame, .. } => *frame,
                other => panic!("unexpected {other:?}"),
            };
            m.handle_response(&destination_accepts(&fwd)).unwrap();
        }
        let actions = m.handle_request(&request(0, 8, 99)).unwrap();
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            SwitchAction::SendResponse { to, frame } => {
                assert_eq!(*to, NodeId::new(0));
                assert!(!frame.verdict.is_accepted());
                assert_eq!(frame.rt_channel_id, None);
                assert_eq!(frame.connection_request_id, ConnectionRequestId::new(99));
            }
            other => panic!("expected SendResponse, got {other:?}"),
        }
        assert_eq!(m.channel_count(), 6);
    }

    #[test]
    fn destination_rejection_rolls_back_the_reservation() {
        let mut m = manager(3, DpsKind::Symmetric);
        let actions = m.handle_request(&request(0, 1, 1)).unwrap();
        let fwd = match &actions[0] {
            SwitchAction::ForwardRequest { frame, .. } => *frame,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(m.channel_count(), 1);
        let mut reject = destination_accepts(&fwd);
        reject.verdict = ResponseVerdict::Rejected;
        let actions = m.handle_response(&reject).unwrap();
        match &actions[0] {
            SwitchAction::SendResponse { frame, .. } => assert!(!frame.verdict.is_accepted()),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(m.channel_count(), 0, "capacity must be released");
        assert_eq!(m.pending_count(), 0);
    }

    #[test]
    fn teardown_releases_capacity() {
        let mut m = manager(3, DpsKind::Symmetric);
        let actions = m.handle_request(&request(0, 1, 1)).unwrap();
        let fwd = match &actions[0] {
            SwitchAction::ForwardRequest { frame, .. } => *frame,
            other => panic!("unexpected {other:?}"),
        };
        m.handle_response(&destination_accepts(&fwd)).unwrap();
        let id = fwd.rt_channel_id.unwrap();
        let removed = m.handle_teardown(id).unwrap();
        assert_eq!(removed.id, id);
        assert_eq!(m.channel_count(), 0);
        assert!(m.handle_teardown(id).is_err());
    }

    #[test]
    fn protocol_violations_are_errors() {
        let mut m = manager(3, DpsKind::Symmetric);
        // Response with no channel id.
        let resp = ResponseFrame {
            rt_channel_id: None,
            switch_mac: MacAddr::for_switch(),
            verdict: ResponseVerdict::Accepted,
            connection_request_id: ConnectionRequestId::new(1),
        };
        assert!(m.handle_response(&resp).is_err());
        // Response for a channel that is not pending.
        let resp = ResponseFrame {
            rt_channel_id: Some(ChannelId::new(55)),
            switch_mac: MacAddr::for_switch(),
            verdict: ResponseVerdict::Accepted,
            connection_request_id: ConnectionRequestId::new(1),
        };
        assert!(m.handle_response(&resp).is_err());
        // Request from an unknown node.
        assert!(m.handle_request(&request(9, 0, 1)).is_err());
    }
}
