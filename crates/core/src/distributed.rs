//! The distributed control plane: per-switch channel managers and the
//! deterministic two-phase reservation protocol that replaces "teleport
//! every control frame to the one managing switch".
//!
//! ## The shape
//!
//! Every switch runs its own manager — a [`SlackLedger`] covering exactly
//! the links that switch *owns* (its outgoing trunk ports plus the uplinks
//! and downlinks of its attached nodes), so control-plane work scales with
//! switch count and no switch is a single point of failure.  Slack moves
//! only through [`ReservationFrame`]s that really traverse the fabric —
//! admission latency is paid in store-and-forward wire hops, not in a
//! zero-cost teleport.
//!
//! ## The protocol (per candidate route, coordinated by the source's access
//! switch)
//!
//! 1. **Probe** (forward): hops the route's switch sequence; each switch
//!    appends the current load of the route links it owns.  The collected
//!    loads are exactly what the central manager would have read, so the
//!    deadline partition ([`MultiHopDps`]) is identical.
//! 2. **Reserve** (backward, started by the destination's access switch
//!    after partitioning): each switch feasibility-tests and *tentatively
//!    reserves* its owned links under the per-link deadlines the frame
//!    carries, keyed by `(coordinator, token)`.
//! 3. On a mid-path failure, a **Rollback** sweeps the already-reserved
//!    switches and the destination switch answers **ReserveFailed** to the
//!    coordinator — which tries the next candidate route only *after* the
//!    rollback completed, so partial reservations never leak slack and a
//!    retry never reads its own stale state.
//! 4. On success the coordinator assigns the channel id and forwards the
//!    annotated request to the destination node, exactly as the paper's
//!    manager does; the destination's answer is relayed back by its access
//!    switch as a **Confirm** (commit) or a rolling-back rejection.
//!
//! ## The oracle
//!
//! On a quiescent fabric the protocol admits the *identical* channel set —
//! same ids, same routes, same per-link deadline splits — as the
//! centralised [`crate::multihop::FabricChannelManager`], which therefore
//! stays in the tree as the property-tested oracle
//! (`tests/fabric_properties.rs` drives both over 32 seeds).  Two
//! deliberate modelling simplifications, documented rather than hidden:
//! every switch shares the converged topology view (link-state flooding is
//! assumed instantaneous), and channel ids come from a fabric-wide
//! sequencer so they match the oracle's ids exactly (a production system
//! would shard the id space per switch at the cost of that parity).
//!
//! Fail-over is **driven by the switches adjacent to the cut**: they own
//! the dead trunk's directed ports, so their ledgers name exactly the
//! channels that crossed it; those are released everywhere and re-admitted
//! over surviving routes with their ids preserved.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

use rt_edf::PeriodicTask;
use rt_frames::rt_response::ResponseVerdict;
use rt_frames::{
    Frame, RequestFrame, ReservationFrame, ReservationOp, ReservationReason, ResponseFrame,
};
use rt_types::{
    ChannelId, ConnectionRequestId, MacAddr, NodeId, Route, Router, RtError, RtResult, Slots,
    SwitchId, Topology,
};

use crate::channel::RtChannelSpec;
use crate::ledger::{ReservationKey, SlackLedger};
use crate::manager::{
    ChannelManager, ChannelRoute, ControlOutcome, FailoverReport, ReleasedChannel, SwitchAction,
};
use crate::multihop::{HopLink, MultiHopDps};
use crate::protocol::ChannelRequest;

/// An in-flight admission, owned by its coordinator (the source's access
/// switch).
#[derive(Debug)]
struct Coordination {
    source: NodeId,
    destination: NodeId,
    spec: RtChannelSpec,
    request_id: ConnectionRequestId,
    /// The router's candidate routes, tried in order.
    candidates: Vec<Route>,
    /// Index of the candidate currently being probed / reserved.
    candidate: usize,
    /// Per-link deadline split, once the Reserve pass completed.
    deadlines: Option<Vec<Slots>>,
    /// The assigned channel id, once the whole route is reserved.
    channel: Option<ChannelId>,
}

/// Destination-side pending state: the destination's access switch must
/// relay the destination node's answer back to the coordinator.
#[derive(Debug, Clone, Copy)]
struct DestPending {
    coordinator: SwitchId,
    token: u16,
    source: NodeId,
    spec: RtChannelSpec,
    candidate: u8,
}

/// One switch's control-plane state.
#[derive(Debug, Default)]
struct Site {
    /// The slack ledger of the links this switch owns.
    ledger: SlackLedger,
    /// Admissions this switch coordinates, by token.
    coordinations: BTreeMap<u16, Coordination>,
    /// Destination-side pending relays, by raw channel id — the one
    /// network-unique key the destination node echoes back, so concurrent
    /// admissions from different sources can never collide here.
    expecting: BTreeMap<u16, DestPending>,
}

/// A committed channel, registered at commit time with the coordinator that
/// owns its reservation key.
#[derive(Debug, Clone)]
struct DistChannel {
    id: ChannelId,
    source: NodeId,
    destination: NodeId,
    spec: RtChannelSpec,
    path: Route,
    link_deadlines: Vec<Slots>,
    coordinator: SwitchId,
    token: u16,
}

impl DistChannel {
    fn key(&self) -> ReservationKey {
        ReservationKey::token(self.coordinator, self.token)
    }

    fn to_route(&self) -> ChannelRoute {
        ChannelRoute {
            id: self.id,
            source: self.source,
            destination: self.destination,
            spec: self.spec,
            path: self.path.clone(),
            link_deadlines: self.link_deadlines.clone(),
        }
    }
}

/// The distributed channel manager: one [`Site`] per switch behind the one
/// [`ChannelManager`] seam, driven through
/// [`ChannelManager::handle_frame_at`] with real switch context.
pub struct DistributedChannelManager {
    topology: Topology,
    router: Arc<dyn Router>,
    dps: MultiHopDps,
    sites: BTreeMap<SwitchId, Site>,
    /// Memo of the router's candidate lists, keyed by `(topology
    /// fingerprint, source, destination)`: reservation frames carry only
    /// the candidate *index* and every hop re-derives the route, so without
    /// this a k-shortest enumeration would rerun per control-frame hop.
    /// The fingerprint key makes entries self-invalidating across topology
    /// changes.
    route_cache: BTreeMap<(u64, u32, u32), Vec<Route>>,
    /// Committed channels, by raw id.
    registry: BTreeMap<u16, DistChannel>,
    /// Fabric-wide channel-id sequencer (see the module docs: shared so the
    /// ids match the central oracle's exactly).
    next_channel_id: u16,
    next_token: u16,
    switch_mac: MacAddr,
    accepted: u64,
    rejected: u64,
    rerouted: u64,
    dropped_on_failure: u64,
}

impl fmt::Debug for DistributedChannelManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DistributedChannelManager")
            .field("router", &self.router.name())
            .field("dps", &self.dps)
            .field("sites", &self.sites.len())
            .field("channels", &self.registry.len())
            .field("accepted", &self.accepted)
            .field("rejected", &self.rejected)
            .finish()
    }
}

impl DistributedChannelManager {
    /// Create a distributed control plane over `topology`: one manager per
    /// switch, the given deadline-partitioning scheme and path-selection
    /// policy shared by all (every site sees the same converged topology,
    /// so candidate routes are recomputed identically at every hop instead
    /// of being carried in the frames).
    pub fn new(topology: Topology, dps: MultiHopDps, router: Arc<dyn Router>) -> Self {
        let sites = topology.switches().map(|s| (s, Site::default())).collect();
        DistributedChannelManager {
            topology,
            router,
            dps,
            sites,
            route_cache: BTreeMap::new(),
            registry: BTreeMap::new(),
            next_channel_id: 1,
            next_token: 1,
            switch_mac: MacAddr::for_switch(),
            accepted: 0,
            rejected: 0,
            rerouted: 0,
            dropped_on_failure: 0,
        }
    }

    /// The shared topology view.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Requests accepted so far (fabric-wide).
    pub fn accepted_count(&self) -> u64 {
        self.accepted
    }

    /// Requests rejected so far (fabric-wide).
    pub fn rejected_count(&self) -> u64 {
        self.rejected
    }

    /// Channels re-routed over a surviving path after a failure.
    pub fn rerouted_count(&self) -> u64 {
        self.rerouted
    }

    /// Channels dropped because no surviving route could re-admit them.
    pub fn failure_dropped_count(&self) -> u64 {
        self.dropped_on_failure
    }

    // --- ownership and geometry ------------------------------------------

    /// The switch that owns a link's slack: the access switch for uplinks
    /// and downlinks, the transmitting switch for trunks.
    fn owner_of(&self, link: HopLink) -> Option<SwitchId> {
        match link {
            HopLink::Uplink(n) | HopLink::Downlink(n) => self.topology.switch_of(n),
            HopLink::Trunk { from, .. } => Some(from),
        }
    }

    /// The link indices (into the route) owned by the switch at position
    /// `i` of the switch sequence: the uplink at position 0, the outgoing
    /// trunk at every interior position, the downlink at the last.
    fn owned_link_indices(route_len: usize, seq_len: usize, i: usize) -> Vec<usize> {
        let mut owned = Vec::with_capacity(2);
        if i == 0 {
            owned.push(0);
        }
        if i + 1 < seq_len {
            owned.push(1 + i);
        }
        if i + 1 == seq_len {
            owned.push(route_len - 1);
        }
        owned
    }

    /// The router's candidate list for one node pair, memoised per topology
    /// fingerprint (every reservation-frame hop re-derives its route from
    /// `(source, destination, candidate)`, and a k-shortest enumeration is
    /// far too expensive to rerun per hop).
    fn candidate_routes(&mut self, source: NodeId, destination: NodeId) -> RtResult<Vec<Route>> {
        let key = (self.topology.fingerprint(), source.get(), destination.get());
        if let Some(candidates) = self.route_cache.get(&key) {
            return Ok(candidates.clone());
        }
        let candidates = self.router.routes(&self.topology, source, destination)?;
        // A runaway-workload backstop, not an LRU: stale fingerprints never
        // match again, so dropping everything is always safe.
        if self.route_cache.len() >= 4096 {
            self.route_cache.clear();
        }
        self.route_cache.insert(key, candidates.clone());
        Ok(candidates)
    }

    /// The candidate route a reservation frame refers to, re-derived from
    /// the shared topology and the deterministic router.
    fn candidate_route(&mut self, frame: &ReservationFrame) -> RtResult<Route> {
        let candidates = self.candidate_routes(frame.source, frame.destination)?;
        candidates
            .into_iter()
            .nth(frame.candidate as usize)
            .ok_or_else(|| {
                RtError::ProtocolViolation(format!(
                    "candidate {} of {} -> {} no longer exists",
                    frame.candidate, frame.source, frame.destination
                ))
            })
    }

    fn site(&mut self, switch: SwitchId) -> RtResult<&mut Site> {
        self.sites
            .get_mut(&switch)
            .ok_or_else(|| RtError::Config(format!("unknown switch {switch}")))
    }

    fn allocate_token(&mut self, coordinator: SwitchId) -> u16 {
        loop {
            let candidate = self.next_token;
            self.next_token = if self.next_token == u16::MAX {
                1
            } else {
                self.next_token + 1
            };
            let in_use = self.sites[&coordinator]
                .coordinations
                .contains_key(&candidate)
                || self
                    .registry
                    .values()
                    .any(|c| c.coordinator == coordinator && c.token == candidate);
            if !in_use {
                return candidate;
            }
        }
    }

    /// Allocate the next free channel id from the fabric-wide sequencer —
    /// the same skip-in-use walk the central manager performs, so ids match
    /// the oracle's on identical request sequences.
    fn allocate_channel_id(&mut self) -> RtResult<ChannelId> {
        let in_flight: BTreeSet<u16> = self
            .sites
            .values()
            .flat_map(|s| s.coordinations.values())
            .filter_map(|c| c.channel.map(|id| id.get()))
            .collect();
        for _ in 0..u16::MAX {
            let candidate = self.next_channel_id;
            self.next_channel_id = if self.next_channel_id == u16::MAX {
                1
            } else {
                self.next_channel_id + 1
            };
            if !self.registry.contains_key(&candidate) && !in_flight.contains(&candidate) {
                return Ok(ChannelId::new(candidate));
            }
        }
        Err(RtError::ChannelIdsExhausted)
    }

    // --- frame construction ----------------------------------------------

    fn reservation_frame(
        op: ReservationOp,
        coordination: (&Coordination, SwitchId, u16),
        hop: u8,
        values: Vec<u64>,
    ) -> ReservationFrame {
        let (coord, coordinator, token) = coordination;
        ReservationFrame {
            op,
            reason: ReservationReason::None,
            coordinator,
            token,
            source: coord.source,
            destination: coord.destination,
            request_id: coord.request_id,
            candidate: coord.candidate as u8,
            hop,
            channel: coord.channel,
            period: coord.spec.period,
            capacity: coord.spec.capacity,
            deadline: coord.spec.deadline,
            values,
        }
    }

    /// Derive a follow-up frame from a received one, keeping the request
    /// identity and changing op / hop / values.
    fn follow_up(
        received: &ReservationFrame,
        op: ReservationOp,
        reason: ReservationReason,
        hop: u8,
        values: Vec<u64>,
    ) -> ReservationFrame {
        // Field-by-field rather than `..received.clone()`: the update
        // syntax would clone the received frame's `values` vector (the only
        // non-`Copy` field) just to drop it — one heap round-trip per
        // forwarded hop on the reservation path.
        ReservationFrame {
            op,
            reason,
            coordinator: received.coordinator,
            token: received.token,
            source: received.source,
            destination: received.destination,
            request_id: received.request_id,
            candidate: received.candidate,
            hop,
            channel: received.channel,
            period: received.period,
            capacity: received.capacity,
            deadline: received.deadline,
            values,
        }
    }

    // --- the coordinator side --------------------------------------------

    /// Begin an admission: the source node's RequestFrame arrived at its
    /// access switch, which becomes the coordinator.
    fn begin_request(&mut self, at: SwitchId, frame: &RequestFrame) -> RtResult<ControlOutcome> {
        let request = ChannelRequest::from_frame(frame)?;
        request.spec.validate()?;
        let access = self
            .topology
            .switch_of(request.source)
            .ok_or(RtError::UnknownNode(request.source))?;
        if access != at {
            return Err(RtError::ProtocolViolation(format!(
                "request from {} reached {at}, but its access switch is {access}",
                request.source
            )));
        }
        let candidates = self.candidate_routes(request.source, request.destination)?;
        let token = self.allocate_token(at);
        self.site(at)?.coordinations.insert(
            token,
            Coordination {
                source: request.source,
                destination: request.destination,
                spec: request.spec,
                request_id: request.request_id,
                candidates,
                candidate: 0,
                deadlines: None,
                channel: None,
            },
        );
        self.try_candidate(at, token)
    }

    /// Try the coordination's current candidate route: run the whole
    /// reservation locally when the route never leaves this switch, start
    /// the Probe pass otherwise.  Exhausted candidates reject the request.
    fn try_candidate(&mut self, coordinator: SwitchId, token: u16) -> RtResult<ControlOutcome> {
        loop {
            let coord = &self.sites[&coordinator].coordinations[&token];
            let Some(route) = coord.candidates.get(coord.candidate).cloned() else {
                // Every candidate failed: reject, exactly like the central
                // manager answering the source directly.
                let coord = self
                    .site(coordinator)?
                    .coordinations
                    .remove(&token)
                    .expect("coordination exists");
                self.rejected += 1;
                return Ok(ControlOutcome::emissions_at(
                    coordinator,
                    vec![SwitchAction::SendResponse {
                        to: coord.source,
                        frame: ResponseFrame {
                            rt_channel_id: None,
                            switch_mac: self.switch_mac,
                            verdict: ResponseVerdict::Rejected,
                            connection_request_id: coord.request_id,
                        },
                    }],
                ));
            };
            let seq = Self::route_switches(&self.topology, &route);
            if seq.len() == 1 {
                // Same-switch route: probe + reserve collapse to local
                // ledger operations on the one access switch.
                match self.reserve_local(coordinator, token, &route) {
                    Ok(()) => return self.complete_reservation(coordinator, token),
                    Err(()) => {
                        self.site(coordinator)?
                            .coordinations
                            .get_mut(&token)
                            .expect("coordination exists")
                            .candidate += 1;
                        continue;
                    }
                }
            }
            // Multi-switch: append the coordinator's own loads and send the
            // Probe to the next switch of the sequence.
            let coord = &self.sites[&coordinator].coordinations[&token];
            let mut values = Vec::with_capacity(route.len());
            for idx in Self::owned_link_indices(route.len(), seq.len(), 0) {
                values.push(self.sites[&coordinator].ledger.link_load(route[idx]) as u64);
            }
            let frame = Self::reservation_frame(
                ReservationOp::Probe,
                (coord, coordinator, token),
                1,
                values,
            );
            return Ok(ControlOutcome::emissions_at(
                coordinator,
                vec![SwitchAction::SendControl { to: seq[1], frame }],
            ));
        }
    }

    /// Same-switch admission: partition and reserve both access links on
    /// the one site.  `Err(())` means "this candidate is infeasible".
    fn reserve_local(
        &mut self,
        coordinator: SwitchId,
        token: u16,
        route: &Route,
    ) -> Result<(), ()> {
        let spec = self.sites[&coordinator].coordinations[&token].spec;
        let ledger = &self.sites[&coordinator].ledger;
        let loads: Vec<usize> = route.iter().map(|l| ledger.link_load(*l)).collect();
        let deadlines = self.dps.partition(&spec, route, &loads).map_err(|_| ())?;
        let key = ReservationKey::token(coordinator, token);
        let mut tasks = Vec::with_capacity(route.len());
        for (link, &deadline) in route.iter().zip(deadlines.iter()) {
            let task = PeriodicTask::new(spec.period, spec.capacity, deadline).map_err(|_| ())?;
            if !self.sites[&coordinator]
                .ledger
                .feasible_with(*link, &task)
                .is_feasible()
            {
                return Err(());
            }
            tasks.push((*link, task));
        }
        let site = self.sites.get_mut(&coordinator).expect("site exists");
        for (link, task) in tasks {
            site.ledger.reserve(link, key, task);
        }
        let coord = site
            .coordinations
            .get_mut(&token)
            .expect("coordination exists");
        coord.deadlines = Some(deadlines);
        Ok(())
    }

    /// The whole route is reserved: assign the channel id, register the
    /// destination-side relay state at the destination's access switch
    /// (keyed by the new — unique — channel id, which the destination node
    /// echoes back in its ResponseFrame), and forward the annotated request
    /// to the destination node.
    ///
    /// The relay registration is a cross-site write without a wire frame —
    /// the one place the commit message from coordinator to destination
    /// switch is modelled as instantaneous, alongside the topology
    /// convergence and id-sequencer simplifications in the module docs.  (A
    /// production switch would learn it from the annotated request passing
    /// through its egress.)
    fn complete_reservation(
        &mut self,
        coordinator: SwitchId,
        token: u16,
    ) -> RtResult<ControlOutcome> {
        let id = self.allocate_channel_id()?;
        self.accepted += 1;
        let coord = self
            .site(coordinator)?
            .coordinations
            .get_mut(&token)
            .expect("coordination exists");
        coord.channel = Some(id);
        let request = ChannelRequest {
            source: coord.source,
            destination: coord.destination,
            spec: coord.spec,
            request_id: coord.request_id,
        };
        let pending = DestPending {
            coordinator,
            token,
            source: request.source,
            spec: request.spec,
            candidate: coord.candidate as u8,
        };
        let dest_switch = self
            .topology
            .switch_of(request.destination)
            .ok_or(RtError::UnknownNode(request.destination))?;
        self.site(dest_switch)?.expecting.insert(id.get(), pending);
        let mut annotated = request.to_frame();
        annotated.rt_channel_id = Some(id);
        Ok(ControlOutcome::emissions_at(
            coordinator,
            vec![SwitchAction::ForwardRequest {
                to: request.destination,
                frame: annotated,
            }],
        ))
    }

    // --- the per-hop reservation protocol --------------------------------

    fn on_reservation(
        &mut self,
        at: SwitchId,
        frame: &ReservationFrame,
    ) -> RtResult<ControlOutcome> {
        match frame.op {
            ReservationOp::Probe => self.on_probe(at, frame),
            ReservationOp::Reserve => self.on_reserve(at, frame),
            ReservationOp::Rollback => self.on_rollback(at, frame),
            ReservationOp::ReserveFailed => self.on_reserve_failed(at, frame),
            ReservationOp::Confirm => self.on_confirm(at, frame),
            ReservationOp::Release => self.on_release(at, frame),
        }
    }

    /// Probe: append the loads of our owned links; forward, or — at the
    /// destination's access switch — partition the deadline and start the
    /// backward Reserve pass.
    fn on_probe(&mut self, at: SwitchId, frame: &ReservationFrame) -> RtResult<ControlOutcome> {
        let route = self.candidate_route(frame)?;
        let seq = Self::route_switches(&self.topology, &route);
        let i = frame.hop as usize;
        if seq.get(i) != Some(&at) {
            return Err(RtError::ProtocolViolation(format!(
                "probe hop {i} delivered to {at}, expected {:?}",
                seq.get(i)
            )));
        }
        let mut values = frame.values.clone();
        for idx in Self::owned_link_indices(route.len(), seq.len(), i) {
            values.push(self.sites[&at].ledger.link_load(route[idx]) as u64);
        }
        if i + 1 < seq.len() {
            let next = seq[i + 1];
            let forwarded = Self::follow_up(
                frame,
                ReservationOp::Probe,
                ReservationReason::None,
                frame.hop + 1,
                values,
            );
            return Ok(ControlOutcome::emissions_at(
                at,
                vec![SwitchAction::SendControl {
                    to: next,
                    frame: forwarded,
                }],
            ));
        }
        // Last switch: all loads collected — partition and start Reserve.
        let spec = RtChannelSpec::new(frame.period, frame.capacity, frame.deadline)?;
        let loads: Vec<usize> = values.iter().map(|&v| v as usize).collect();
        let deadlines = match self.dps.partition(&spec, &route, &loads) {
            Ok(d) => d,
            Err(_) => {
                // The candidate cannot even be partitioned: tell the
                // coordinator to move on.  Nothing was reserved anywhere.
                let failed = Self::follow_up(
                    frame,
                    ReservationOp::ReserveFailed,
                    ReservationReason::Infeasible,
                    frame.hop,
                    Vec::new(),
                );
                return Ok(ControlOutcome::emissions_at(
                    at,
                    vec![SwitchAction::SendControl {
                        to: frame.coordinator,
                        frame: failed,
                    }],
                ));
            }
        };
        // No relay state yet: it is registered — keyed by the then-known
        // channel id — only once the whole route is reserved
        // (`complete_reservation`), so failed candidates leave nothing to
        // clean up here.
        let reserve = Self::follow_up(
            frame,
            ReservationOp::Reserve,
            ReservationReason::None,
            (seq.len() - 1) as u8,
            deadlines.iter().map(|d| d.get()).collect(),
        );
        // Process our own (last-hop) reserve step inline — same switch, no
        // wire hop — then the frame travels backward.
        self.on_reserve(at, &reserve)
    }

    /// Reserve: feasibility-test and reserve our owned links; forward
    /// backward, or complete at the coordinator.  On failure, roll back the
    /// switches that already reserved (they sit *behind* us on the backward
    /// pass) and have the destination switch notify the coordinator.
    fn on_reserve(&mut self, at: SwitchId, frame: &ReservationFrame) -> RtResult<ControlOutcome> {
        let route = self.candidate_route(frame)?;
        let seq = Self::route_switches(&self.topology, &route);
        let i = frame.hop as usize;
        if seq.get(i) != Some(&at) {
            return Err(RtError::ProtocolViolation(format!(
                "reserve hop {i} delivered to {at}, expected {:?}",
                seq.get(i)
            )));
        }
        if frame.values.len() != route.len() {
            return Err(RtError::ProtocolViolation(format!(
                "reserve carries {} deadlines for a {}-link route",
                frame.values.len(),
                route.len()
            )));
        }
        let spec = RtChannelSpec::new(frame.period, frame.capacity, frame.deadline)?;
        let key = ReservationKey::token(frame.coordinator, frame.token);
        let mut reserved: Vec<HopLink> = Vec::with_capacity(2);
        let mut feasible = true;
        for idx in Self::owned_link_indices(route.len(), seq.len(), i) {
            let link = route[idx];
            let deadline = Slots::new(frame.values[idx]);
            let Ok(task) = PeriodicTask::new(spec.period, spec.capacity, deadline) else {
                feasible = false;
                break;
            };
            let site = self.site(at)?;
            if site.ledger.feasible_with(link, &task).is_feasible() {
                site.ledger.reserve(link, key, task);
                reserved.push(link);
            } else {
                feasible = false;
                break;
            }
        }
        if feasible {
            if i > 0 {
                let backward = Self::follow_up(
                    frame,
                    ReservationOp::Reserve,
                    ReservationReason::None,
                    frame.hop - 1,
                    frame.values.clone(),
                );
                return Ok(ControlOutcome::emissions_at(
                    at,
                    vec![SwitchAction::SendControl {
                        to: seq[i - 1],
                        frame: backward,
                    }],
                ));
            }
            // hop 0: the coordinator itself just reserved — the route is
            // fully held.
            let deadlines: Vec<Slots> = frame.values.iter().map(|&v| Slots::new(v)).collect();
            self.site(at)?
                .coordinations
                .get_mut(&frame.token)
                .ok_or_else(|| {
                    RtError::ProtocolViolation(format!(
                        "reserve for unknown token {} at {at}",
                        frame.token
                    ))
                })?
                .deadlines = Some(deadlines);
            return self.complete_reservation(at, frame.token);
        }
        // Infeasible here: undo our partial step, sweep the switches that
        // already reserved (i+1 ..= last) with a Rollback; the destination
        // switch then answers ReserveFailed to the coordinator.
        for link in reserved {
            self.site(at)?.ledger.release(link, key);
        }
        if i + 1 < seq.len() {
            let rollback = Self::follow_up(
                frame,
                ReservationOp::Rollback,
                ReservationReason::Infeasible,
                frame.hop + 1,
                Vec::new(),
            );
            return Ok(ControlOutcome::emissions_at(
                at,
                vec![SwitchAction::SendControl {
                    to: seq[i + 1],
                    frame: rollback,
                }],
            ));
        }
        // We *are* the destination switch (only possible when the reserve
        // failed on its very first step; no relay state exists yet — it is
        // only registered at commit time): notify the coordinator directly.
        if at == frame.coordinator {
            // Degenerate single-switch candidate: move on inline.
            self.site(at)?
                .coordinations
                .get_mut(&frame.token)
                .expect("coordination exists")
                .candidate += 1;
            return self.try_candidate(at, frame.token);
        }
        let failed = Self::follow_up(
            frame,
            ReservationOp::ReserveFailed,
            ReservationReason::Infeasible,
            frame.hop,
            Vec::new(),
        );
        Ok(ControlOutcome::emissions_at(
            at,
            vec![SwitchAction::SendControl {
                to: frame.coordinator,
                frame: failed,
            }],
        ))
    }

    /// Rollback: release whatever this reservation holds here, then keep
    /// sweeping.  `Infeasible` rollbacks ascend towards the destination
    /// switch (which then answers ReserveFailed); `DestinationRejected`
    /// rollbacks descend towards the coordinator (which then answers the
    /// source).
    fn on_rollback(&mut self, at: SwitchId, frame: &ReservationFrame) -> RtResult<ControlOutcome> {
        let key = ReservationKey::token(frame.coordinator, frame.token);
        self.site(at)?.ledger.release_key(key);
        let route = self.candidate_route(frame)?;
        let seq = Self::route_switches(&self.topology, &route);
        let i = frame.hop as usize;
        match frame.reason {
            ReservationReason::Infeasible => {
                if i + 1 < seq.len() {
                    let onward = Self::follow_up(
                        frame,
                        ReservationOp::Rollback,
                        frame.reason,
                        frame.hop + 1,
                        Vec::new(),
                    );
                    return Ok(ControlOutcome::emissions_at(
                        at,
                        vec![SwitchAction::SendControl {
                            to: seq[i + 1],
                            frame: onward,
                        }],
                    ));
                }
                // Destination switch: the sweep is complete (no relay state
                // exists for a never-committed reservation) — tell the
                // coordinator to try the next candidate.
                let failed = Self::follow_up(
                    frame,
                    ReservationOp::ReserveFailed,
                    ReservationReason::Infeasible,
                    frame.hop,
                    Vec::new(),
                );
                Ok(ControlOutcome::emissions_at(
                    at,
                    vec![SwitchAction::SendControl {
                        to: frame.coordinator,
                        frame: failed,
                    }],
                ))
            }
            ReservationReason::DestinationRejected => {
                if i > 0 {
                    let onward = Self::follow_up(
                        frame,
                        ReservationOp::Rollback,
                        frame.reason,
                        frame.hop - 1,
                        Vec::new(),
                    );
                    return Ok(ControlOutcome::emissions_at(
                        at,
                        vec![SwitchAction::SendControl {
                            to: seq[i - 1],
                            frame: onward,
                        }],
                    ));
                }
                // Coordinator: the whole-route release is complete; answer
                // the source.  The consumed channel id is not reused —
                // exactly the central manager's behaviour on a destination
                // rejection.
                self.finish_destination_reject(at, frame.token)
            }
            ReservationReason::None => Err(RtError::ProtocolViolation(
                "rollback without a reason".into(),
            )),
        }
    }

    fn finish_destination_reject(
        &mut self,
        coordinator: SwitchId,
        token: u16,
    ) -> RtResult<ControlOutcome> {
        let coord = self
            .site(coordinator)?
            .coordinations
            .remove(&token)
            .ok_or_else(|| {
                RtError::ProtocolViolation(format!(
                    "destination-reject rollback for unknown token {token}"
                ))
            })?;
        Ok(ControlOutcome::emissions_at(
            coordinator,
            vec![SwitchAction::SendResponse {
                to: coord.source,
                frame: ResponseFrame {
                    rt_channel_id: coord.channel,
                    switch_mac: self.switch_mac,
                    verdict: ResponseVerdict::Rejected,
                    connection_request_id: coord.request_id,
                },
            }],
        ))
    }

    /// ReserveFailed (direct to the coordinator): the current candidate is
    /// dead and its rollback has completed — try the next one.
    fn on_reserve_failed(
        &mut self,
        at: SwitchId,
        frame: &ReservationFrame,
    ) -> RtResult<ControlOutcome> {
        if at != frame.coordinator {
            return Err(RtError::ProtocolViolation(format!(
                "ReserveFailed delivered to {at}, coordinator is {}",
                frame.coordinator
            )));
        }
        self.site(at)?
            .coordinations
            .get_mut(&frame.token)
            .ok_or_else(|| {
                RtError::ProtocolViolation(format!(
                    "ReserveFailed for unknown token {} at {at}",
                    frame.token
                ))
            })?
            .candidate += 1;
        self.try_candidate(at, frame.token)
    }

    /// Confirm (direct to the coordinator): the destination accepted —
    /// commit the channel and answer the source.
    fn on_confirm(&mut self, at: SwitchId, frame: &ReservationFrame) -> RtResult<ControlOutcome> {
        if at != frame.coordinator {
            return Err(RtError::ProtocolViolation(format!(
                "Confirm delivered to {at}, coordinator is {}",
                frame.coordinator
            )));
        }
        self.commit_confirmed(at, frame.token)
    }

    fn commit_confirmed(&mut self, coordinator: SwitchId, token: u16) -> RtResult<ControlOutcome> {
        let coord = self
            .site(coordinator)?
            .coordinations
            .remove(&token)
            .ok_or_else(|| {
                RtError::ProtocolViolation(format!("Confirm for unknown token {token}"))
            })?;
        let id = coord.channel.ok_or_else(|| {
            RtError::ProtocolViolation("Confirm for a reservation without a channel id".into())
        })?;
        let path = coord
            .candidates
            .get(coord.candidate)
            .cloned()
            .ok_or_else(|| {
                RtError::ProtocolViolation("Confirm for a reservation without a route".into())
            })?;
        let link_deadlines = coord.deadlines.clone().ok_or_else(|| {
            RtError::ProtocolViolation("Confirm for a reservation without deadlines".into())
        })?;
        self.registry.insert(
            id.get(),
            DistChannel {
                id,
                source: coord.source,
                destination: coord.destination,
                spec: coord.spec,
                path,
                link_deadlines,
                coordinator,
                token,
            },
        );
        Ok(ControlOutcome::emissions_at(
            coordinator,
            vec![SwitchAction::SendResponse {
                to: coord.source,
                frame: ResponseFrame {
                    rt_channel_id: Some(id),
                    switch_mac: self.switch_mac,
                    verdict: ResponseVerdict::Accepted,
                    connection_request_id: coord.request_id,
                },
            }],
        ))
    }

    /// The destination node answered: its access switch relays the verdict
    /// — Confirm on accept, a descending rollback on reject.  The relay
    /// state is matched by the channel id the destination echoed back (the
    /// one key that is unique fabric-wide even under concurrent admissions
    /// from different sources).
    fn on_response(
        &mut self,
        at: SwitchId,
        from: NodeId,
        resp: &ResponseFrame,
    ) -> RtResult<ControlOutcome> {
        let channel = resp.rt_channel_id.ok_or_else(|| {
            RtError::ProtocolViolation("destination response carries no RT channel id".into())
        })?;
        let pending = self
            .site(at)?
            .expecting
            .remove(&channel.get())
            .ok_or_else(|| {
                RtError::UnknownRequest(format!(
                    "no pending reservation for channel {channel} ({from} request {})",
                    resp.connection_request_id
                ))
            })?;
        let notice = ReservationFrame {
            op: ReservationOp::Confirm,
            reason: ReservationReason::None,
            coordinator: pending.coordinator,
            token: pending.token,
            source: pending.source,
            destination: from,
            request_id: resp.connection_request_id,
            candidate: pending.candidate,
            hop: 0,
            channel: resp.rt_channel_id,
            period: pending.spec.period,
            capacity: pending.spec.capacity,
            deadline: pending.spec.deadline,
            values: Vec::new(),
        };
        if resp.verdict.is_accepted() {
            if at == pending.coordinator {
                return self.commit_confirmed(at, pending.token);
            }
            return Ok(ControlOutcome::emissions_at(
                at,
                vec![SwitchAction::SendControl {
                    to: pending.coordinator,
                    frame: notice,
                }],
            ));
        }
        // Destination refused: release the whole route, ending at the
        // coordinator which answers the source.
        let key = ReservationKey::token(pending.coordinator, pending.token);
        self.site(at)?.ledger.release_key(key);
        let mut rollback = notice;
        rollback.op = ReservationOp::Rollback;
        rollback.reason = ReservationReason::DestinationRejected;
        let route = self.candidate_route(&rollback)?;
        let seq = Self::route_switches(&self.topology, &route);
        if seq.len() == 1 {
            return self.finish_destination_reject(at, pending.token);
        }
        rollback.hop = (seq.len() - 2) as u8;
        Ok(ControlOutcome::emissions_at(
            at,
            vec![SwitchAction::SendControl {
                to: seq[seq.len() - 2],
                frame: rollback,
            }],
        ))
    }

    // --- tear-down --------------------------------------------------------

    /// A TeardownFrame arrived at the channel's coordinator (the source's
    /// access switch): release locally and send the Release pass down the
    /// admitted route.
    fn on_teardown(&mut self, at: SwitchId, channel: ChannelId) -> RtResult<ControlOutcome> {
        let dist = self
            .registry
            .remove(&channel.get())
            .ok_or(RtError::UnknownChannel(channel))?;
        let key = dist.key();
        self.site(at)?.ledger.release_key(key);
        let seq = Self::route_switches(&self.topology, &dist.path);
        let mut emissions = Vec::new();
        if seq.len() > 1 {
            // The itinerary travels in the frame: the admitted route must
            // be released even if the topology has changed since.
            let release = ReservationFrame {
                op: ReservationOp::Release,
                reason: ReservationReason::None,
                coordinator: dist.coordinator,
                token: dist.token,
                source: dist.source,
                destination: dist.destination,
                request_id: ConnectionRequestId::new(0),
                candidate: 0,
                hop: 1,
                channel: Some(dist.id),
                period: dist.spec.period,
                capacity: dist.spec.capacity,
                deadline: dist.spec.deadline,
                values: seq.iter().map(|s| u64::from(s.get())).collect(),
            };
            emissions.push((
                at,
                SwitchAction::SendControl {
                    to: seq[1],
                    frame: release,
                },
            ));
        }
        Ok(ControlOutcome {
            emissions,
            released: vec![ReleasedChannel {
                id: dist.id,
                destination: dist.destination,
            }],
        })
    }

    /// Release: free this reservation here and keep walking the itinerary
    /// carried in the frame.
    fn on_release(&mut self, at: SwitchId, frame: &ReservationFrame) -> RtResult<ControlOutcome> {
        let key = ReservationKey::token(frame.coordinator, frame.token);
        self.site(at)?.ledger.release_key(key);
        let i = frame.hop as usize;
        if i + 1 < frame.values.len() {
            let next = SwitchId::new(frame.values[i + 1] as u32);
            let onward = Self::follow_up(
                frame,
                ReservationOp::Release,
                ReservationReason::None,
                frame.hop + 1,
                frame.values.clone(),
            );
            return Ok(ControlOutcome::emissions_at(
                at,
                vec![SwitchAction::SendControl {
                    to: next,
                    frame: onward,
                }],
            ));
        }
        Ok(ControlOutcome::empty())
    }

    // --- fail-over (driven by the switches adjacent to the cut) -----------

    /// The shared fail-over engine: the topology is already degraded; the
    /// switches adjacent to each cut trunk name the affected channels from
    /// their own ledgers, everything affected is released fabric-wide, then
    /// re-admitted (ascending id, ids preserved) over surviving routes.
    fn fail_over(
        &mut self,
        cut: &[(SwitchId, SwitchId)],
        link: (SwitchId, SwitchId),
    ) -> FailoverReport {
        // Reverse map (coordinator, token) -> channel id.
        let by_key: BTreeMap<(u32, u16), u16> = self
            .registry
            .values()
            .map(|c| ((c.coordinator.get(), c.token), c.id.get()))
            .collect();
        let mut affected: BTreeSet<u16> = BTreeSet::new();
        for &(a, b) in cut {
            for (from, to) in [(a, b), (b, a)] {
                let trunk = HopLink::Trunk { from, to };
                if let Some(site) = self.sites.get(&from) {
                    for key in site.ledger.keys_on(trunk) {
                        if let ReservationKey::Token(coordinator, token) = key {
                            if let Some(&id) = by_key.get(&(coordinator, token)) {
                                affected.insert(id);
                            }
                        }
                    }
                }
            }
        }
        let unaffected = self.registry.len() - affected.len();
        let mut report = FailoverReport {
            link,
            rerouted: Vec::new(),
            dropped: Vec::new(),
            unaffected,
        };
        // Release every affected channel fabric-wide before re-admitting
        // any (the same all-then-readmit rule as the central manager).
        let released: Vec<DistChannel> = affected
            .iter()
            .map(|id| {
                let dist = self
                    .registry
                    .remove(id)
                    .expect("affected ids come from the registry");
                let key = dist.key();
                for site in self.sites.values_mut() {
                    site.ledger.release_key(key);
                }
                dist
            })
            .collect();
        for old in released {
            let candidates = self
                .candidate_routes(old.source, old.destination)
                .unwrap_or_default();
            let key = old.key();
            let mut readmitted = false;
            for route in candidates {
                if let Some(deadlines) = self.try_reserve_sync(key, &old.spec, &route) {
                    let renewed = DistChannel {
                        path: route,
                        link_deadlines: deadlines,
                        ..old.clone()
                    };
                    report.rerouted.push(renewed.to_route());
                    self.registry.insert(renewed.id.get(), renewed);
                    self.rerouted += 1;
                    readmitted = true;
                    break;
                }
            }
            if !readmitted {
                report.dropped.push(old.to_route());
                self.dropped_on_failure += 1;
            }
        }
        report
    }

    /// The repair-side counterpart of fail-over: after a trunk repair,
    /// migrate every channel whose path differs from the router's primary
    /// route back onto that primary (ascending id, ids preserved, released
    /// fabric-wide then re-reserved synchronously).  A channel the primary
    /// cannot admit is restored onto its detour with its exact previous
    /// reservation — a repair never drops a channel, mirroring the central
    /// manager's re-optimisation decision for decision.
    fn reoptimize(&mut self, link: (SwitchId, SwitchId)) -> FailoverReport {
        let mut report = FailoverReport {
            link,
            rerouted: Vec::new(),
            dropped: Vec::new(),
            unaffected: 0,
        };
        let ids: Vec<u16> = self.registry.keys().copied().collect();
        for id in ids {
            let (source, destination) = {
                let c = &self.registry[&id];
                (c.source, c.destination)
            };
            let primary = match self.candidate_routes(source, destination) {
                Ok(candidates) => match candidates.into_iter().next() {
                    Some(route) => route,
                    None => {
                        report.unaffected += 1;
                        continue;
                    }
                },
                Err(_) => {
                    report.unaffected += 1;
                    continue;
                }
            };
            if primary == self.registry[&id].path {
                report.unaffected += 1;
                continue;
            }
            let old = self
                .registry
                .remove(&id)
                .expect("ids come from the live registry");
            let key = old.key();
            for site in self.sites.values_mut() {
                site.ledger.release_key(key);
            }
            match self.try_reserve_sync(key, &old.spec, &primary) {
                Some(deadlines) => {
                    let renewed = DistChannel {
                        path: primary,
                        link_deadlines: deadlines,
                        ..old
                    };
                    report.rerouted.push(renewed.to_route());
                    self.registry.insert(renewed.id.get(), renewed);
                    self.rerouted += 1;
                }
                None => {
                    // Restore the exact reservation that was just released:
                    // the same links, the same per-link deadlines, on the
                    // same owning sites — guaranteed to hold.
                    for (hop, &deadline) in old.path.iter().zip(old.link_deadlines.iter()) {
                        let owner = self
                            .owner_of(*hop)
                            .expect("an admitted route's links all have owners");
                        let task = PeriodicTask::new(old.spec.period, old.spec.capacity, deadline)
                            .expect("the held reservation's task was valid");
                        self.sites
                            .get_mut(&owner)
                            .expect("owning site exists")
                            .ledger
                            .reserve(*hop, key, task);
                    }
                    self.registry.insert(old.id.get(), old);
                    report.unaffected += 1;
                }
            }
        }
        report
    }

    /// Synchronous reservation across the owning sites (used by fail-over,
    /// where the re-admission runs as one atomic control-plane decision):
    /// the same loads → partition → per-link feasibility → reserve sequence
    /// the wire protocol performs hop by hop.
    fn try_reserve_sync(
        &mut self,
        key: ReservationKey,
        spec: &RtChannelSpec,
        route: &Route,
    ) -> Option<Vec<Slots>> {
        let loads: Vec<usize> = route
            .iter()
            .map(|l| {
                self.owner_of(*l)
                    .and_then(|owner| self.sites.get(&owner))
                    .map_or(0, |site| site.ledger.link_load(*l))
            })
            .collect();
        let deadlines = self.dps.partition(spec, route, &loads).ok()?;
        let mut plan: Vec<(SwitchId, HopLink, PeriodicTask)> = Vec::with_capacity(route.len());
        for (link, &deadline) in route.iter().zip(deadlines.iter()) {
            let owner = self.owner_of(*link)?;
            let task = PeriodicTask::new(spec.period, spec.capacity, deadline).ok()?;
            if !self
                .sites
                .get(&owner)?
                .ledger
                .feasible_with(*link, &task)
                .is_feasible()
            {
                return None;
            }
            plan.push((owner, *link, task));
        }
        for (owner, link, task) in plan {
            self.sites
                .get_mut(&owner)
                .expect("owner checked above")
                .ledger
                .reserve(link, key, task);
        }
        Some(deadlines)
    }

    /// The switch sequence of a route — module-level so both the
    /// construction and the per-hop handlers agree on geometry.
    fn route_switches(topology: &Topology, route: &Route) -> Vec<SwitchId> {
        let mut seq = Vec::with_capacity(route.len());
        for link in route.iter() {
            if let HopLink::Trunk { from, to } = link {
                if seq.is_empty() {
                    seq.push(*from);
                }
                seq.push(*to);
            }
        }
        if seq.is_empty() {
            if let Some(access) = topology.switch_of(route.source()) {
                seq.push(access);
            }
        }
        seq
    }
}

impl ChannelManager for DistributedChannelManager {
    fn handle_request(&mut self, _frame: &RequestFrame) -> RtResult<Vec<SwitchAction>> {
        Err(RtError::ProtocolViolation(
            "the distributed control plane needs switch context; drive it through handle_frame_at"
                .into(),
        ))
    }

    fn handle_response(&mut self, _frame: &ResponseFrame) -> RtResult<Vec<SwitchAction>> {
        Err(RtError::ProtocolViolation(
            "the distributed control plane needs switch context; drive it through handle_frame_at"
                .into(),
        ))
    }

    fn handle_teardown(&mut self, channel: ChannelId) -> RtResult<ReleasedChannel> {
        // Direct (API-level) teardown: release fabric-wide synchronously.
        let dist = self
            .registry
            .remove(&channel.get())
            .ok_or(RtError::UnknownChannel(channel))?;
        let key = dist.key();
        for site in self.sites.values_mut() {
            site.ledger.release_key(key);
        }
        Ok(ReleasedChannel {
            id: dist.id,
            destination: dist.destination,
        })
    }

    fn channel_count(&self) -> usize {
        let in_flight = self
            .sites
            .values()
            .flat_map(|s| s.coordinations.values())
            .filter(|c| c.channel.is_some())
            .count();
        self.registry.len() + in_flight
    }

    fn pending_count(&self) -> usize {
        self.sites
            .values()
            .flat_map(|s| s.coordinations.values())
            .filter(|c| c.channel.is_some())
            .count()
    }

    fn channel_ids(&self) -> Vec<ChannelId> {
        self.registry.keys().map(|&id| ChannelId::new(id)).collect()
    }

    fn channel_route(&self, id: ChannelId) -> Option<ChannelRoute> {
        Some(self.registry.get(&id.get())?.to_route())
    }

    fn link_load(&self, link: HopLink) -> usize {
        match self.owner_of(link) {
            Some(owner) => self
                .sites
                .get(&owner)
                .map_or(0, |site| site.ledger.link_load(link)),
            None => 0,
        }
    }

    fn schedules_hops(&self) -> bool {
        true
    }

    fn handle_link_failure(&mut self, from: SwitchId, to: SwitchId) -> RtResult<FailoverReport> {
        self.topology.fail_trunk(from, to)?;
        Ok(self.fail_over(&[(from, to)], (from, to)))
    }

    fn handle_link_repair(&mut self, from: SwitchId, to: SwitchId) -> RtResult<FailoverReport> {
        self.topology.repair_trunk(from, to)?;
        Ok(self.reoptimize((from, to)))
    }

    fn handle_switch_failure(&mut self, switch: SwitchId) -> RtResult<FailoverReport> {
        let cut = self.topology.fail_switch(switch)?;
        Ok(self.fail_over(&cut, (switch, switch)))
    }

    fn handle_frame_at(
        &mut self,
        at: SwitchId,
        from: NodeId,
        frame: &Frame,
    ) -> RtResult<ControlOutcome> {
        match frame {
            Frame::Request(req) => self.begin_request(at, req),
            Frame::Response(resp) => self.on_response(at, from, resp),
            Frame::Teardown(td) => self.on_teardown(at, td.rt_channel_id),
            Frame::Reservation(rf) => self.on_reservation(at, rf),
            other => Err(RtError::ProtocolViolation(format!(
                "unexpected frame at the switch control plane: {other:?}"
            ))),
        }
    }
}
