//! The distributed control plane: per-switch channel managers and the
//! deterministic two-phase reservation protocol that replaces "teleport
//! every control frame to the one managing switch".
//!
//! ## The shape
//!
//! Every switch runs its own manager — a [`SlackLedger`] covering exactly
//! the links that switch *owns* (its outgoing trunk ports plus the uplinks
//! and downlinks of its attached nodes), so control-plane work scales with
//! switch count and no switch is a single point of failure.  Slack moves
//! only through [`ReservationFrame`]s that really traverse the fabric —
//! admission latency is paid in store-and-forward wire hops, not in a
//! zero-cost teleport.
//!
//! ## The protocol (per candidate route, coordinated by the source's access
//! switch)
//!
//! 1. **Probe** (forward): hops the route's switch sequence; each switch
//!    appends the current load of the route links it owns.  The collected
//!    loads are exactly what the central manager would have read, so the
//!    deadline partition ([`MultiHopDps`]) is identical.
//! 2. **Reserve** (backward, started by the destination's access switch
//!    after partitioning): each switch feasibility-tests and *tentatively
//!    reserves* its owned links under the per-link deadlines the frame
//!    carries, keyed by `(coordinator, token)`.
//! 3. On a mid-path failure, a **Rollback** sweeps the already-reserved
//!    switches and the destination switch answers **ReserveFailed** to the
//!    coordinator — which tries the next candidate route only *after* the
//!    rollback completed, so partial reservations never leak slack and a
//!    retry never reads its own stale state.
//! 4. On success the coordinator assigns the channel id and forwards the
//!    annotated request to the destination node, exactly as the paper's
//!    manager does; the destination's answer is relayed back by its access
//!    switch as a **Confirm** (commit) or a rolling-back rejection.
//!
//! ## Honest distribution: convergence delay, leases, id blocks
//!
//! Three properties make the control plane trustworthy when it is itself
//! degraded (they replace the oracle crutches earlier revisions documented
//! — one instantaneous topology view, a fabric-wide id sequencer, and
//! reservations stranded forever by a mid-handshake cut):
//!
//! * **Link-state flooding.**  A trunk event is announced only by the two
//!   switches adjacent to it, as [`ReservationOp::LinkState`] control
//!   frames that really traverse the fabric; every receiving site applies
//!   the announcement to its *own* [`Topology`] view and re-floods, with a
//!   per-trunk epoch deduplicating the flood and ordering late frames.
//!   Until the flood converges, two switches can disagree about the fabric
//!   — admission stays safe because each site checks *its own* trunks'
//!   liveness on every Probe/Reserve step (a site is always current about
//!   the trunks it owns), so a probe routed over a dead link by a stale
//!   coordinator fails cleanly into the Rollback path, and geometry
//!   disagreements abort into ReserveFailed instead of reserving on the
//!   wrong links.
//! * **Reservation leases.**  Every tentative reservation carries an
//!   expiry deadline in its site's [`SlackLedger`]; sites sweep expired
//!   leases whenever a frame reaches them (and on explicit clock ticks),
//!   so a handshake stranded by a cut or a killed coordinator has its
//!   partial reservations *expire* instead of leaking slack forever.  The
//!   Confirm pass walks the route backward renewing (attesting) each
//!   site's lease — a Confirm arriving after an expiry finds the lease
//!   gone and aborts with `ReserveFailed(LeaseExpired)` back to the
//!   coordinator, which answers the requester with a rejection; it never
//!   resurrects reclaimed slack.  Coordinations themselves time out the
//!   same way.
//! * **Per-switch id blocks.**  The id space `1..=u16::MAX` is sharded
//!   into one contiguous block per switch; a coordinator allocates only
//!   from its own block (wrapping within it, skipping live ids), so no
//!   fabric-wide sequencer exists and two coordinators can never race to
//!   the same id.  Parity with the central oracle is therefore checked
//!   under an *id-remapping*: the k-th admission on either side must have
//!   the same route, verdict and byte-for-byte delivery, with distributed
//!   ids mapped to central ids in admission order.
//!
//! The centralised [`crate::multihop::FabricChannelManager`] stays in the
//! tree as the property-tested oracle (`tests/fabric_properties.rs` drives
//! both over 32 seeds).  Remaining modelling simplifications, documented
//! rather than hidden: the committed-channel registry is manager-level
//! state (a site's lease sweep consults it to spare channels whose commit
//! landed but whose lease-clear frame has not), and the destination-side
//! relay state is written without a wire frame at commit time.
//!
//! Fail-over is **driven by the switches adjacent to the cut**: they own
//! the dead trunk's directed ports, so their ledgers name exactly the
//! channels that crossed it; those are released everywhere and re-admitted
//! over surviving routes with their ids preserved.  The same adjacent
//! switches originate the link-state flood for the cut.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

use rt_edf::PeriodicTask;
use rt_frames::rt_response::ResponseVerdict;
use rt_frames::{
    Frame, RequestFrame, ReservationFrame, ReservationOp, ReservationReason, ResponseFrame,
};
use rt_types::{
    ChannelId, ConnectionRequestId, Duration, MacAddr, NodeId, Route, Router, RtError, RtResult,
    SimTime, Slots, SwitchId, Topology,
};

use crate::channel::RtChannelSpec;
use crate::ledger::{ReservationKey, SlackLedger};
use crate::manager::{
    ChannelManager, ChannelRoute, ControlOutcome, FailoverReport, ReleasedChannel, SwitchAction,
};
use crate::multihop::{HopLink, MultiHopDps};
use crate::protocol::ChannelRequest;

/// An in-flight admission, owned by its coordinator (the source's access
/// switch).
#[derive(Debug)]
struct Coordination {
    source: NodeId,
    destination: NodeId,
    spec: RtChannelSpec,
    request_id: ConnectionRequestId,
    /// The router's candidate routes, tried in order.
    candidates: Vec<Route>,
    /// Index of the candidate currently being probed / reserved.
    candidate: usize,
    /// Per-link deadline split, once the Reserve pass completed.
    deadlines: Option<Vec<Slots>>,
    /// The assigned channel id, once the whole route is reserved.
    channel: Option<ChannelId>,
    /// When this coordination times out: refreshed on every frame the
    /// coordinator handles for it, so only a genuinely stalled handshake
    /// (lost frame, partition) is aborted.
    expires: SimTime,
}

/// Destination-side pending state: the destination's access switch must
/// relay the destination node's answer back to the coordinator.
#[derive(Debug, Clone, Copy)]
struct DestPending {
    coordinator: SwitchId,
    token: u16,
    source: NodeId,
    spec: RtChannelSpec,
    candidate: u8,
    /// When this relay entry is garbage-collected (the destination node
    /// never answered — its request or its response was lost to a fault).
    expires: SimTime,
}

/// One switch's control-plane state.
#[derive(Debug)]
struct Site {
    /// The slack ledger of the links this switch owns.
    ledger: SlackLedger,
    /// Admissions this switch coordinates, by token.
    coordinations: BTreeMap<u16, Coordination>,
    /// Destination-side pending relays, by raw channel id — the one
    /// network-unique key the destination node echoes back, so concurrent
    /// admissions from different sources can never collide here.
    expecting: BTreeMap<u16, DestPending>,
    /// This switch's own — possibly stale — view of the fabric.  Updated
    /// only by link-state flood frames (and by originating an announcement
    /// for a trunk this switch is adjacent to); never written "through the
    /// backplane".
    view: Topology,
    /// Highest link-state epoch applied per undirected trunk `(a, b)` with
    /// `a < b`: older or duplicate announcements are dropped, which both
    /// terminates the flood and keeps late frames from resurrecting a
    /// stale view.
    ls_seen: BTreeMap<(u32, u32), u64>,
    /// Next channel-id candidate inside this switch's id block.
    next_local_id: u16,
}

impl Site {
    fn new(view: Topology, block_start: u16) -> Self {
        Site {
            ledger: SlackLedger::new(),
            coordinations: BTreeMap::new(),
            expecting: BTreeMap::new(),
            view,
            ls_seen: BTreeMap::new(),
            next_local_id: block_start,
        }
    }
}

/// A committed channel, registered at commit time with the coordinator that
/// owns its reservation key.
#[derive(Debug, Clone)]
struct DistChannel {
    id: ChannelId,
    source: NodeId,
    destination: NodeId,
    spec: RtChannelSpec,
    path: Route,
    link_deadlines: Vec<Slots>,
    coordinator: SwitchId,
    token: u16,
}

impl DistChannel {
    fn key(&self) -> ReservationKey {
        ReservationKey::token(self.coordinator, self.token)
    }

    fn to_route(&self) -> ChannelRoute {
        ChannelRoute {
            id: self.id,
            source: self.source,
            destination: self.destination,
            spec: self.spec,
            path: self.path.clone(),
            link_deadlines: self.link_deadlines.clone(),
        }
    }
}

/// The distributed channel manager: one [`Site`] per switch behind the one
/// [`ChannelManager`] seam, driven through
/// [`ChannelManager::handle_frame_at`] with real switch context.
pub struct DistributedChannelManager {
    topology: Topology,
    router: Arc<dyn Router>,
    dps: MultiHopDps,
    sites: BTreeMap<SwitchId, Site>,
    /// Memo of the router's candidate lists, keyed by `(topology
    /// fingerprint, source, destination)`: reservation frames carry only
    /// the candidate *index* and every hop re-derives the route, so without
    /// this a k-shortest enumeration would rerun per control-frame hop.
    /// The fingerprint key makes entries self-invalidating across topology
    /// changes.
    route_cache: BTreeMap<(u64, u32, u32), Vec<Route>>,
    /// Committed channels, by raw id.
    registry: BTreeMap<u16, DistChannel>,
    next_token: u16,
    switch_mac: MacAddr,
    /// How long an in-flight reservation (and a coordination, and a
    /// destination-side relay entry) may live before its site reclaims it.
    lease_duration: Duration,
    /// Monotone link-state epoch source: one fresh epoch per trunk event,
    /// shared by the two adjacent origin switches so their floods absorb
    /// each other.
    ls_epoch: u64,
    /// Link-state floods originated by fault/repair notifications (which
    /// have no frame context to emit from); the caller drains these onto
    /// the wire via [`ChannelManager::drain_control`].
    pending_control: Vec<(SwitchId, SwitchAction)>,
    accepted: u64,
    rejected: u64,
    rerouted: u64,
    dropped_on_failure: u64,
    /// In-flight reservations reclaimed because their lease expired.
    lease_expired: u64,
}

impl fmt::Debug for DistributedChannelManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DistributedChannelManager")
            .field("router", &self.router.name())
            .field("dps", &self.dps)
            .field("sites", &self.sites.len())
            .field("channels", &self.registry.len())
            .field("accepted", &self.accepted)
            .field("rejected", &self.rejected)
            .finish()
    }
}

impl DistributedChannelManager {
    /// Create a distributed control plane over `topology`: one manager per
    /// switch, the given deadline-partitioning scheme and path-selection
    /// policy shared by all.  Every site starts from the same converged
    /// view of the (healthy) fabric and thereafter learns of trunk events
    /// only through link-state flood frames, so candidate routes are
    /// recomputed per hop from each site's *own* view instead of being
    /// carried in the frames.
    pub fn new(topology: Topology, dps: MultiHopDps, router: Arc<dyn Router>) -> Self {
        let switches: Vec<SwitchId> = topology.switches().collect();
        let sites = switches
            .iter()
            .enumerate()
            .map(|(idx, &s)| {
                let (start, _) = Self::id_block_of(switches.len(), idx);
                (s, Site::new(topology.clone(), start))
            })
            .collect();
        DistributedChannelManager {
            topology,
            router,
            dps,
            sites,
            route_cache: BTreeMap::new(),
            registry: BTreeMap::new(),
            next_token: 1,
            switch_mac: MacAddr::for_switch(),
            lease_duration: Duration::from_millis(50),
            ls_epoch: 0,
            pending_control: Vec::new(),
            accepted: 0,
            rejected: 0,
            rerouted: 0,
            dropped_on_failure: 0,
            lease_expired: 0,
        }
    }

    /// The ground-truth topology (what the fault-injection API has done to
    /// the fabric; individual sites' views may lag behind it until the
    /// link-state flood converges).
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The topology as `switch` currently believes it to be.
    pub fn view_of(&self, switch: SwitchId) -> Option<&Topology> {
        self.sites.get(&switch).map(|s| &s.view)
    }

    /// How long in-flight reservations live before their site reclaims
    /// them.
    pub fn lease_duration(&self) -> Duration {
        self.lease_duration
    }

    /// Override the reservation lease duration (tests shorten it to force
    /// expiries; the default is generous enough that healthy handshakes
    /// never race it).
    pub fn set_lease_duration(&mut self, lease: Duration) {
        self.lease_duration = lease;
    }

    /// In-flight reservations reclaimed because their lease expired.
    pub fn lease_expired_count(&self) -> u64 {
        self.lease_expired
    }

    /// Requests accepted so far (fabric-wide).
    pub fn accepted_count(&self) -> u64 {
        self.accepted
    }

    /// Requests rejected so far (fabric-wide).
    pub fn rejected_count(&self) -> u64 {
        self.rejected
    }

    /// Channels re-routed over a surviving path after a failure.
    pub fn rerouted_count(&self) -> u64 {
        self.rerouted
    }

    /// Channels dropped because no surviving route could re-admit them.
    pub fn failure_dropped_count(&self) -> u64 {
        self.dropped_on_failure
    }

    // --- ownership and geometry ------------------------------------------

    /// The switch that owns a link's slack: the access switch for uplinks
    /// and downlinks, the transmitting switch for trunks.
    fn owner_of(&self, link: HopLink) -> Option<SwitchId> {
        match link {
            HopLink::Uplink(n) | HopLink::Downlink(n) => self.topology.switch_of(n),
            HopLink::Trunk { from, .. } => Some(from),
        }
    }

    /// The link indices (into the route) owned by the switch at position
    /// `i` of the switch sequence: the uplink at position 0, the outgoing
    /// trunk at every interior position, the downlink at the last.
    fn owned_link_indices(route_len: usize, seq_len: usize, i: usize) -> Vec<usize> {
        let mut owned = Vec::with_capacity(2);
        if i == 0 {
            owned.push(0);
        }
        if i + 1 < seq_len {
            owned.push(1 + i);
        }
        if i + 1 == seq_len {
            owned.push(route_len - 1);
        }
        owned
    }

    /// The router's candidate list for one node pair as seen from `at`'s
    /// *own view*, memoised per view fingerprint (every reservation-frame
    /// hop re-derives its route from `(source, destination, candidate)`,
    /// and a k-shortest enumeration is far too expensive to rerun per
    /// hop).  Two sites whose views disagree during a link-state
    /// convergence window can derive different lists for the same pair —
    /// the per-hop geometry checks turn that disagreement into a graceful
    /// abort, never a reservation on the wrong links.
    fn candidate_routes_at(
        &mut self,
        at: SwitchId,
        source: NodeId,
        destination: NodeId,
    ) -> RtResult<Vec<Route>> {
        let site = self
            .sites
            .get(&at)
            .ok_or_else(|| RtError::Config(format!("unknown switch {at}")))?;
        let key = (site.view.fingerprint(), source.get(), destination.get());
        if let Some(candidates) = self.route_cache.get(&key) {
            return Ok(candidates.clone());
        }
        let candidates = self.router.routes(&site.view, source, destination)?;
        // A runaway-workload backstop, not an LRU: stale fingerprints never
        // match again, so dropping everything is always safe.
        if self.route_cache.len() >= 4096 {
            self.route_cache.clear();
        }
        self.route_cache.insert(key, candidates.clone());
        Ok(candidates)
    }

    /// The candidate list derived from the ground-truth topology — used
    /// only by the synchronous fail-over / re-optimisation engine (which
    /// models the adjacent switches' atomic recovery decision), never by
    /// the per-hop frame path.
    fn candidate_routes_global(
        &mut self,
        source: NodeId,
        destination: NodeId,
    ) -> RtResult<Vec<Route>> {
        let key = (self.topology.fingerprint(), source.get(), destination.get());
        if let Some(candidates) = self.route_cache.get(&key) {
            return Ok(candidates.clone());
        }
        let candidates = self.router.routes(&self.topology, source, destination)?;
        if self.route_cache.len() >= 4096 {
            self.route_cache.clear();
        }
        self.route_cache.insert(key, candidates.clone());
        Ok(candidates)
    }

    /// The candidate route a reservation frame refers to, re-derived from
    /// the handling site's own view.  `None` when this view (or the frame)
    /// no longer knows such a candidate — the caller aborts the handshake
    /// gracefully instead of reserving on links the coordinator did not
    /// mean.
    fn candidate_route_at(&mut self, at: SwitchId, frame: &ReservationFrame) -> Option<Route> {
        let candidates = self
            .candidate_routes_at(at, frame.source, frame.destination)
            .ok()?;
        candidates.into_iter().nth(frame.candidate as usize)
    }

    fn site(&mut self, switch: SwitchId) -> RtResult<&mut Site> {
        self.sites
            .get_mut(&switch)
            .ok_or_else(|| RtError::Config(format!("unknown switch {switch}")))
    }

    fn allocate_token(&mut self, coordinator: SwitchId) -> u16 {
        loop {
            let candidate = self.next_token;
            self.next_token = if self.next_token == u16::MAX {
                1
            } else {
                self.next_token + 1
            };
            let in_use = self.sites[&coordinator]
                .coordinations
                .contains_key(&candidate)
                || self
                    .registry
                    .values()
                    .any(|c| c.coordinator == coordinator && c.token == candidate);
            if !in_use {
                return candidate;
            }
        }
    }

    /// The contiguous channel-id block owned by the `idx`-th of `n`
    /// switches (in ascending switch-id order): `1..=u16::MAX` is split
    /// into `n` equal spans, the last extended to `u16::MAX`.  Inclusive
    /// `(start, end)`.
    fn id_block_of(n: usize, idx: usize) -> (u16, u16) {
        let n = (n.max(1)) as u32;
        let idx = idx as u32;
        let span = (u32::from(u16::MAX) / n).max(1);
        let start = (1 + idx * span).min(u32::from(u16::MAX));
        let end = if idx + 1 >= n {
            u32::from(u16::MAX)
        } else {
            ((idx + 1) * span).min(u32::from(u16::MAX))
        };
        (start as u16, end.max(start) as u16)
    }

    /// Allocate the next free channel id from `coordinator`'s own id
    /// block, wrapping within the block and skipping ids that are
    /// committed or carried by this coordinator's in-flight admissions.
    /// No fabric-wide sequencer exists, so two coordinators can never race
    /// to the same id — at the cost of ids that differ from the central
    /// oracle's (parity is checked under an admission-order id remapping).
    fn allocate_channel_id(&mut self, coordinator: SwitchId) -> RtResult<ChannelId> {
        let idx = self
            .sites
            .keys()
            .position(|&s| s == coordinator)
            .ok_or_else(|| RtError::Config(format!("unknown switch {coordinator}")))?;
        let (start, end) = Self::id_block_of(self.sites.len(), idx);
        let in_flight: BTreeSet<u16> = self.sites[&coordinator]
            .coordinations
            .values()
            .filter_map(|c| c.channel.map(|id| id.get()))
            .collect();
        let mut cursor = self.sites[&coordinator].next_local_id;
        if cursor < start || cursor > end {
            cursor = start;
        }
        for _ in start..=end {
            let candidate = cursor;
            cursor = if cursor == end { start } else { cursor + 1 };
            if !self.registry.contains_key(&candidate) && !in_flight.contains(&candidate) {
                self.site(coordinator)?.next_local_id = cursor;
                return Ok(ChannelId::new(candidate));
            }
        }
        Err(RtError::ChannelIdsExhausted)
    }

    // --- frame construction ----------------------------------------------

    fn reservation_frame(
        op: ReservationOp,
        coordination: (&Coordination, SwitchId, u16),
        hop: u8,
        values: Vec<u64>,
    ) -> ReservationFrame {
        let (coord, coordinator, token) = coordination;
        ReservationFrame {
            op,
            reason: ReservationReason::None,
            coordinator,
            token,
            source: coord.source,
            destination: coord.destination,
            request_id: coord.request_id,
            candidate: coord.candidate as u8,
            hop,
            channel: coord.channel,
            period: coord.spec.period,
            capacity: coord.spec.capacity,
            deadline: coord.spec.deadline,
            values,
        }
    }

    /// Derive a follow-up frame from a received one, keeping the request
    /// identity and changing op / hop / values.
    fn follow_up(
        received: &ReservationFrame,
        op: ReservationOp,
        reason: ReservationReason,
        hop: u8,
        values: Vec<u64>,
    ) -> ReservationFrame {
        // Field-by-field rather than `..received.clone()`: the update
        // syntax would clone the received frame's `values` vector (the only
        // non-`Copy` field) just to drop it — one heap round-trip per
        // forwarded hop on the reservation path.
        ReservationFrame {
            op,
            reason,
            coordinator: received.coordinator,
            token: received.token,
            source: received.source,
            destination: received.destination,
            request_id: received.request_id,
            candidate: received.candidate,
            hop,
            channel: received.channel,
            period: received.period,
            capacity: received.capacity,
            deadline: received.deadline,
            values,
        }
    }

    // --- the coordinator side --------------------------------------------

    /// Begin an admission: the source node's RequestFrame arrived at its
    /// access switch, which becomes the coordinator.  Candidate routes are
    /// derived from the coordinator's *own* view — possibly stale during a
    /// link-state convergence window; the per-hop checks downstream turn a
    /// stale candidate into a clean retry of the next one.
    fn begin_request(
        &mut self,
        at: SwitchId,
        frame: &RequestFrame,
        now: SimTime,
    ) -> RtResult<ControlOutcome> {
        let request = ChannelRequest::from_frame(frame)?;
        request.spec.validate()?;
        let access = self
            .topology
            .switch_of(request.source)
            .ok_or(RtError::UnknownNode(request.source))?;
        if access != at {
            return Err(RtError::ProtocolViolation(format!(
                "request from {} reached {at}, but its access switch is {access}",
                request.source
            )));
        }
        // A view in which the endpoints are unreachable (mid-convergence or
        // genuinely partitioned) yields no candidates — the honest answer is
        // a rejection, not a control-plane fault.
        let candidates = match self.candidate_routes_at(at, request.source, request.destination) {
            Ok(candidates) => candidates,
            Err(RtError::Config(_)) => Vec::new(),
            Err(e) => return Err(e),
        };
        let token = self.allocate_token(at);
        let expires = now.saturating_add(self.lease_duration);
        self.site(at)?.coordinations.insert(
            token,
            Coordination {
                source: request.source,
                destination: request.destination,
                spec: request.spec,
                request_id: request.request_id,
                candidates,
                candidate: 0,
                deadlines: None,
                channel: None,
                expires,
            },
        );
        self.try_candidate(at, token, now)
    }

    /// Try the coordination's current candidate route: run the whole
    /// reservation locally when the route never leaves this switch, start
    /// the Probe pass otherwise.  Exhausted candidates reject the request.
    fn try_candidate(
        &mut self,
        coordinator: SwitchId,
        token: u16,
        now: SimTime,
    ) -> RtResult<ControlOutcome> {
        let expires = now.saturating_add(self.lease_duration);
        if let Some(coord) = self.site(coordinator)?.coordinations.get_mut(&token) {
            coord.expires = expires;
        }
        loop {
            let coord = &self.sites[&coordinator].coordinations[&token];
            let Some(route) = coord.candidates.get(coord.candidate).cloned() else {
                // Every candidate failed: reject, exactly like the central
                // manager answering the source directly.
                let coord = self
                    .site(coordinator)?
                    .coordinations
                    .remove(&token)
                    .expect("coordination exists");
                self.rejected += 1;
                return Ok(ControlOutcome::emissions_at(
                    coordinator,
                    vec![SwitchAction::SendResponse {
                        to: coord.source,
                        frame: ResponseFrame {
                            rt_channel_id: None,
                            switch_mac: self.switch_mac,
                            verdict: ResponseVerdict::Rejected,
                            connection_request_id: coord.request_id,
                        },
                    }],
                ));
            };
            let seq = Self::route_switches(&self.sites[&coordinator].view, &route);
            if seq.len() == 1 {
                // Same-switch route: probe + reserve collapse to local
                // ledger operations on the one access switch.
                match self.reserve_local(coordinator, token, &route, now) {
                    Ok(()) => return self.complete_reservation(coordinator, token, now),
                    Err(()) => {
                        self.site(coordinator)?
                            .coordinations
                            .get_mut(&token)
                            .expect("coordination exists")
                            .candidate += 1;
                        continue;
                    }
                }
            }
            // Multi-switch: append the coordinator's own loads and send the
            // Probe to the next switch of the sequence.
            let coord = &self.sites[&coordinator].coordinations[&token];
            let mut values = Vec::with_capacity(route.len());
            for idx in Self::owned_link_indices(route.len(), seq.len(), 0) {
                values.push(self.sites[&coordinator].ledger.link_load(route[idx]) as u64);
            }
            let frame = Self::reservation_frame(
                ReservationOp::Probe,
                (coord, coordinator, token),
                1,
                values,
            );
            return Ok(ControlOutcome::emissions_at(
                coordinator,
                vec![SwitchAction::SendControl { to: seq[1], frame }],
            ));
        }
    }

    /// Same-switch admission: partition and reserve both access links on
    /// the one site, leased like any tentative reservation.  `Err(())`
    /// means "this candidate is infeasible".
    fn reserve_local(
        &mut self,
        coordinator: SwitchId,
        token: u16,
        route: &Route,
        now: SimTime,
    ) -> Result<(), ()> {
        let spec = self.sites[&coordinator].coordinations[&token].spec;
        let ledger = &self.sites[&coordinator].ledger;
        let loads: Vec<usize> = route.iter().map(|l| ledger.link_load(*l)).collect();
        let deadlines = self.dps.partition(&spec, route, &loads).map_err(|_| ())?;
        let key = ReservationKey::token(coordinator, token);
        let mut tasks = Vec::with_capacity(route.len());
        for (link, &deadline) in route.iter().zip(deadlines.iter()) {
            let task = PeriodicTask::new(spec.period, spec.capacity, deadline).map_err(|_| ())?;
            if !self.sites[&coordinator]
                .ledger
                .feasible_with(*link, &task)
                .is_feasible()
            {
                return Err(());
            }
            tasks.push((*link, task));
        }
        let expires = now.saturating_add(self.lease_duration);
        let site = self.sites.get_mut(&coordinator).expect("site exists");
        for (link, task) in tasks {
            site.ledger.reserve(link, key, task);
        }
        site.ledger.lease(key, expires);
        let coord = site
            .coordinations
            .get_mut(&token)
            .expect("coordination exists");
        coord.deadlines = Some(deadlines);
        Ok(())
    }

    /// The whole route is reserved: assign the channel id, register the
    /// destination-side relay state at the destination's access switch
    /// (keyed by the new — unique — channel id, which the destination node
    /// echoes back in its ResponseFrame), and forward the annotated request
    /// to the destination node.
    ///
    /// The relay registration is a cross-site write without a wire frame —
    /// the one place the commit message from coordinator to destination
    /// switch is modelled as instantaneous, one of the two remaining
    /// simplifications in the module docs.  (A production switch would
    /// learn it from the annotated request passing through its egress.)
    fn complete_reservation(
        &mut self,
        coordinator: SwitchId,
        token: u16,
        now: SimTime,
    ) -> RtResult<ControlOutcome> {
        let id = self.allocate_channel_id(coordinator)?;
        self.accepted += 1;
        let expires = now.saturating_add(self.lease_duration);
        let coord = self
            .site(coordinator)?
            .coordinations
            .get_mut(&token)
            .expect("coordination exists");
        coord.channel = Some(id);
        coord.expires = expires;
        let request = ChannelRequest {
            source: coord.source,
            destination: coord.destination,
            spec: coord.spec,
            request_id: coord.request_id,
        };
        let pending = DestPending {
            coordinator,
            token,
            source: request.source,
            spec: request.spec,
            candidate: coord.candidate as u8,
            expires,
        };
        let dest_switch = self
            .topology
            .switch_of(request.destination)
            .ok_or(RtError::UnknownNode(request.destination))?;
        self.site(dest_switch)?.expecting.insert(id.get(), pending);
        let mut annotated = request.to_frame();
        annotated.rt_channel_id = Some(id);
        Ok(ControlOutcome::emissions_at(
            coordinator,
            vec![SwitchAction::ForwardRequest {
                to: request.destination,
                frame: annotated,
            }],
        ))
    }

    // --- the per-hop reservation protocol --------------------------------

    fn on_reservation(
        &mut self,
        at: SwitchId,
        frame: &ReservationFrame,
        now: SimTime,
    ) -> RtResult<ControlOutcome> {
        match frame.op {
            ReservationOp::Probe => self.on_probe(at, frame, now),
            ReservationOp::Reserve => self.on_reserve(at, frame, now),
            ReservationOp::Rollback => self.on_rollback(at, frame, now),
            ReservationOp::ReserveFailed => self.on_reserve_failed(at, frame, now),
            ReservationOp::Confirm => self.on_confirm(at, frame, now),
            ReservationOp::Release => self.on_release(at, frame),
            ReservationOp::LinkState => self.on_link_state(at, frame),
        }
    }

    /// Abort an in-flight handshake gracefully at `at`: release whatever
    /// its key holds here and steer the coordinator to the next candidate
    /// (inline when `at` *is* the coordinator, by ReserveFailed
    /// otherwise).  Used when a frame's geometry no longer matches this
    /// site's view — legitimate during a link-state convergence window —
    /// and for the degenerate infeasibility cases.  Reservations the
    /// direct notification skips are bounded by their leases.
    fn abort_handshake(
        &mut self,
        at: SwitchId,
        frame: &ReservationFrame,
        reason: ReservationReason,
        now: SimTime,
    ) -> RtResult<ControlOutcome> {
        let key = ReservationKey::token(frame.coordinator, frame.token);
        self.site(at)?.ledger.release_key(key);
        if at == frame.coordinator {
            if self.sites[&at].coordinations.contains_key(&frame.token) {
                self.site(at)?
                    .coordinations
                    .get_mut(&frame.token)
                    .expect("checked above")
                    .candidate += 1;
                return self.try_candidate(at, frame.token, now);
            }
            // The coordination already timed out; the requester was
            // answered by the sweep.
            return Ok(ControlOutcome::empty());
        }
        let failed = Self::follow_up(
            frame,
            ReservationOp::ReserveFailed,
            reason,
            frame.hop,
            Vec::new(),
        );
        Ok(ControlOutcome::emissions_at(
            at,
            vec![SwitchAction::SendControl {
                to: frame.coordinator,
                frame: failed,
            }],
        ))
    }

    /// Probe: append the loads of our owned links; forward, or — at the
    /// destination's access switch — partition the deadline and start the
    /// backward Reserve pass.  Geometry is re-derived from this site's own
    /// view; a disagreement with the coordinator's (stale) derivation
    /// aborts the candidate cleanly — the probe pass reserves nothing, so
    /// there is nothing to sweep.
    fn on_probe(
        &mut self,
        at: SwitchId,
        frame: &ReservationFrame,
        now: SimTime,
    ) -> RtResult<ControlOutcome> {
        let Some(route) = self.candidate_route_at(at, frame) else {
            return self.abort_handshake(at, frame, ReservationReason::Infeasible, now);
        };
        let seq = Self::route_switches(&self.sites[&at].view, &route);
        let i = frame.hop as usize;
        if seq.get(i) != Some(&at) {
            return self.abort_handshake(at, frame, ReservationReason::Infeasible, now);
        }
        let mut values = frame.values.clone();
        for idx in Self::owned_link_indices(route.len(), seq.len(), i) {
            values.push(self.sites[&at].ledger.link_load(route[idx]) as u64);
        }
        if i + 1 < seq.len() {
            let next = seq[i + 1];
            // We are always current about our own trunks (the switches
            // adjacent to a cut update their views the instant it
            // happens): a probe routed over our dead trunk by a stale
            // coordinator dies here, cleanly.
            if !self.sites[&at].view.has_trunk(at, next) {
                return self.abort_handshake(at, frame, ReservationReason::Infeasible, now);
            }
            let forwarded = Self::follow_up(
                frame,
                ReservationOp::Probe,
                ReservationReason::None,
                frame.hop + 1,
                values,
            );
            return Ok(ControlOutcome::emissions_at(
                at,
                vec![SwitchAction::SendControl {
                    to: next,
                    frame: forwarded,
                }],
            ));
        }
        // Last switch: all loads collected — partition and start Reserve.
        let spec = RtChannelSpec::new(frame.period, frame.capacity, frame.deadline)?;
        let loads: Vec<usize> = values.iter().map(|&v| v as usize).collect();
        let deadlines = match self.dps.partition(&spec, &route, &loads) {
            Ok(d) => d,
            Err(_) => {
                // The candidate cannot even be partitioned: tell the
                // coordinator to move on.  Nothing was reserved anywhere.
                return self.abort_handshake(at, frame, ReservationReason::Infeasible, now);
            }
        };
        // No relay state yet: it is registered — keyed by the then-known
        // channel id — only once the whole route is reserved
        // (`complete_reservation`), so failed candidates leave nothing to
        // clean up here.
        let reserve = Self::follow_up(
            frame,
            ReservationOp::Reserve,
            ReservationReason::None,
            (seq.len() - 1) as u8,
            deadlines.iter().map(|d| d.get()).collect(),
        );
        // Process our own (last-hop) reserve step inline — same switch, no
        // wire hop — then the frame travels backward.
        self.on_reserve(at, &reserve, now)
    }

    /// Reserve: feasibility-test and reserve our owned links; forward
    /// backward, or complete at the coordinator.  On failure, roll back the
    /// switches that already reserved (they sit *behind* us on the backward
    /// pass) and have the destination switch notify the coordinator.
    fn on_reserve(
        &mut self,
        at: SwitchId,
        frame: &ReservationFrame,
        now: SimTime,
    ) -> RtResult<ControlOutcome> {
        let Some(route) = self.candidate_route_at(at, frame) else {
            return self.abort_handshake(at, frame, ReservationReason::Infeasible, now);
        };
        let seq = Self::route_switches(&self.sites[&at].view, &route);
        let i = frame.hop as usize;
        if seq.get(i) != Some(&at) || frame.values.len() != route.len() {
            // Our view derives a different geometry for this candidate
            // than the probe pass did — abort rather than reserve on links
            // the deadlines were not partitioned for.
            return self.abort_handshake(at, frame, ReservationReason::Infeasible, now);
        }
        let spec = RtChannelSpec::new(frame.period, frame.capacity, frame.deadline)?;
        let key = ReservationKey::token(frame.coordinator, frame.token);
        let mut reserved: Vec<HopLink> = Vec::with_capacity(2);
        let mut feasible = true;
        for idx in Self::owned_link_indices(route.len(), seq.len(), i) {
            let link = route[idx];
            // A dead owned trunk fails the candidate like any infeasible
            // link — this is the stale-coordinator path: we always know
            // about our own trunks before the flood converges.
            if let HopLink::Trunk { from, to } = link {
                if !self.sites[&at].view.has_trunk(from, to) {
                    feasible = false;
                    break;
                }
            }
            let deadline = Slots::new(frame.values[idx]);
            let Ok(task) = PeriodicTask::new(spec.period, spec.capacity, deadline) else {
                feasible = false;
                break;
            };
            let site = self.site(at)?;
            if site.ledger.feasible_with(link, &task).is_feasible() {
                site.ledger.reserve(link, key, task);
                reserved.push(link);
            } else {
                feasible = false;
                break;
            }
        }
        if feasible {
            // Lease the tentative reservation: if the handshake strands
            // here (cut trunk, killed coordinator), the slack comes back
            // at expiry instead of leaking forever.
            let expires = now.saturating_add(self.lease_duration);
            self.site(at)?.ledger.lease(key, expires);
            if i > 0 {
                let backward = Self::follow_up(
                    frame,
                    ReservationOp::Reserve,
                    ReservationReason::None,
                    frame.hop - 1,
                    frame.values.clone(),
                );
                return Ok(ControlOutcome::emissions_at(
                    at,
                    vec![SwitchAction::SendControl {
                        to: seq[i - 1],
                        frame: backward,
                    }],
                ));
            }
            // hop 0: the coordinator itself just reserved — the route is
            // fully held.
            let deadlines: Vec<Slots> = frame.values.iter().map(|&v| Slots::new(v)).collect();
            if !self.sites[&at].coordinations.contains_key(&frame.token) {
                // The coordination timed out while the backward pass was in
                // flight; the requester was already answered.  Drop our own
                // step again — everything behind us is lease-bounded.
                self.site(at)?.ledger.release_key(key);
                return Ok(ControlOutcome::empty());
            }
            self.site(at)?
                .coordinations
                .get_mut(&frame.token)
                .expect("checked above")
                .deadlines = Some(deadlines);
            return self.complete_reservation(at, frame.token, now);
        }
        // Infeasible here: undo our partial step, sweep the switches that
        // already reserved (i+1 ..= last) with a Rollback; the destination
        // switch then answers ReserveFailed to the coordinator.
        for link in reserved {
            self.site(at)?.ledger.release(link, key);
        }
        if i + 1 < seq.len() {
            let rollback = Self::follow_up(
                frame,
                ReservationOp::Rollback,
                ReservationReason::Infeasible,
                frame.hop + 1,
                Vec::new(),
            );
            return Ok(ControlOutcome::emissions_at(
                at,
                vec![SwitchAction::SendControl {
                    to: seq[i + 1],
                    frame: rollback,
                }],
            ));
        }
        // We *are* the destination switch (only possible when the reserve
        // failed on its very first step; no relay state exists yet — it is
        // only registered at commit time), or the degenerate single-switch
        // coordinator: notify / advance directly.
        self.abort_handshake(at, frame, ReservationReason::Infeasible, now)
    }

    /// Rollback: release whatever this reservation holds here, then keep
    /// sweeping.  `Infeasible` rollbacks ascend towards the destination
    /// switch (which then answers ReserveFailed); `DestinationRejected`
    /// rollbacks descend towards the coordinator (which then answers the
    /// source).
    fn on_rollback(
        &mut self,
        at: SwitchId,
        frame: &ReservationFrame,
        now: SimTime,
    ) -> RtResult<ControlOutcome> {
        let key = ReservationKey::token(frame.coordinator, frame.token);
        self.site(at)?.ledger.release_key(key);
        let route = self.candidate_route_at(at, frame);
        let seq = route.map_or_else(Vec::new, |r| {
            Self::route_switches(&self.sites[&at].view, &r)
        });
        let i = frame.hop as usize;
        match frame.reason {
            ReservationReason::Infeasible => {
                if seq.get(i) == Some(&at) && i + 1 < seq.len() {
                    let onward = Self::follow_up(
                        frame,
                        ReservationOp::Rollback,
                        frame.reason,
                        frame.hop + 1,
                        Vec::new(),
                    );
                    return Ok(ControlOutcome::emissions_at(
                        at,
                        vec![SwitchAction::SendControl {
                            to: seq[i + 1],
                            frame: onward,
                        }],
                    ));
                }
                // Destination switch (or a view disagreement that stops the
                // sweep — leases bound whatever it would have reclaimed):
                // tell the coordinator to try the next candidate.  No relay
                // state exists for a never-committed reservation.
                self.abort_handshake(at, frame, ReservationReason::Infeasible, now)
            }
            ReservationReason::DestinationRejected => {
                if at == frame.coordinator {
                    // The whole-route release is complete; answer the
                    // source.  The consumed channel id is not reused —
                    // exactly the central manager's behaviour on a
                    // destination rejection.
                    return self.finish_destination_reject(at, frame.token);
                }
                if seq.get(i) == Some(&at) && i > 0 {
                    let onward = Self::follow_up(
                        frame,
                        ReservationOp::Rollback,
                        frame.reason,
                        frame.hop - 1,
                        Vec::new(),
                    );
                    return Ok(ControlOutcome::emissions_at(
                        at,
                        vec![SwitchAction::SendControl {
                            to: seq[i - 1],
                            frame: onward,
                        }],
                    ));
                }
                // View disagreement mid-descent: hand the release straight
                // to the coordinator; skipped reservations are
                // lease-bounded.
                let onward =
                    Self::follow_up(frame, ReservationOp::Rollback, frame.reason, 0, Vec::new());
                Ok(ControlOutcome::emissions_at(
                    at,
                    vec![SwitchAction::SendControl {
                        to: frame.coordinator,
                        frame: onward,
                    }],
                ))
            }
            ReservationReason::None | ReservationReason::LeaseExpired => Err(
                RtError::ProtocolViolation("rollback without a cause".into()),
            ),
        }
    }

    fn finish_destination_reject(
        &mut self,
        coordinator: SwitchId,
        token: u16,
    ) -> RtResult<ControlOutcome> {
        // The coordination may already be gone — timed out while the
        // descending rollback was in flight; the requester was answered by
        // the sweep.
        let Some(coord) = self.site(coordinator)?.coordinations.remove(&token) else {
            return Ok(ControlOutcome::empty());
        };
        self.rejected += 1;
        Ok(ControlOutcome::emissions_at(
            coordinator,
            vec![SwitchAction::SendResponse {
                to: coord.source,
                frame: ResponseFrame {
                    rt_channel_id: coord.channel,
                    switch_mac: self.switch_mac,
                    verdict: ResponseVerdict::Rejected,
                    connection_request_id: coord.request_id,
                },
            }],
        ))
    }

    /// ReserveFailed (direct to the coordinator): the current candidate is
    /// dead and its rollback has completed — try the next one.  A
    /// `LeaseExpired` reason means a lease expired *under the Confirm
    /// walk*: the admission is torn, the requester gets a rejection, and
    /// nothing is resurrected (expired slack is already reclaimed, live
    /// leases will expire on their own).
    fn on_reserve_failed(
        &mut self,
        at: SwitchId,
        frame: &ReservationFrame,
        now: SimTime,
    ) -> RtResult<ControlOutcome> {
        if at != frame.coordinator {
            return Err(RtError::ProtocolViolation(format!(
                "ReserveFailed delivered to {at}, coordinator is {}",
                frame.coordinator
            )));
        }
        if !self.sites[&at].coordinations.contains_key(&frame.token) {
            // Timed out already; the requester was answered by the sweep.
            return Ok(ControlOutcome::empty());
        }
        if frame.reason == ReservationReason::LeaseExpired {
            let coord = self
                .site(at)?
                .coordinations
                .remove(&frame.token)
                .expect("checked above");
            let key = ReservationKey::token(at, frame.token);
            self.site(at)?.ledger.release_key(key);
            self.rejected += 1;
            return Ok(ControlOutcome::emissions_at(
                at,
                vec![SwitchAction::SendResponse {
                    to: coord.source,
                    frame: ResponseFrame {
                        rt_channel_id: coord.channel,
                        switch_mac: self.switch_mac,
                        verdict: ResponseVerdict::Rejected,
                        connection_request_id: coord.request_id,
                    },
                }],
            ));
        }
        self.site(at)?
            .coordinations
            .get_mut(&frame.token)
            .expect("checked above")
            .candidate += 1;
        self.try_candidate(at, frame.token, now)
    }

    /// Confirm: the destination accepted.  The frame walks the admitted
    /// route *backward* from the destination's access switch; every site
    /// renews (attests) its lease on the way — a site whose lease already
    /// expired answers `ReserveFailed(LeaseExpired)` instead, and the
    /// admission is torn down rather than resurrected.  At the coordinator
    /// (hop 0) the channel commits.
    fn on_confirm(
        &mut self,
        at: SwitchId,
        frame: &ReservationFrame,
        now: SimTime,
    ) -> RtResult<ControlOutcome> {
        let i = frame.hop as usize;
        if at == frame.coordinator {
            return self.commit_confirmed(at, frame.token, now);
        }
        let key = ReservationKey::token(frame.coordinator, frame.token);
        if self.site(at)?.ledger.lease_of(key).is_none() {
            // Our lease expired before the Confirm arrived: the slack is
            // already reclaimed — never resurrect it.
            let failed = Self::follow_up(
                frame,
                ReservationOp::ReserveFailed,
                ReservationReason::LeaseExpired,
                frame.hop,
                Vec::new(),
            );
            return Ok(ControlOutcome::emissions_at(
                at,
                vec![SwitchAction::SendControl {
                    to: frame.coordinator,
                    frame: failed,
                }],
            ));
        }
        let expires = now.saturating_add(self.lease_duration);
        self.site(at)?.ledger.lease(key, expires);
        let route = self.candidate_route_at(at, frame);
        let seq = route.map_or_else(Vec::new, |r| {
            Self::route_switches(&self.sites[&at].view, &r)
        });
        let (hop, to) = if seq.get(i) == Some(&at) && i > 0 {
            (frame.hop - 1, seq[i - 1])
        } else {
            // View disagreement mid-walk: hand the commit straight to the
            // coordinator.  Skipped sites' leases for the committed channel
            // are spared by the sweep's registry check.
            (0, frame.coordinator)
        };
        let onward = Self::follow_up(
            frame,
            ReservationOp::Confirm,
            ReservationReason::None,
            hop,
            Vec::new(),
        );
        Ok(ControlOutcome::emissions_at(
            at,
            vec![SwitchAction::SendControl { to, frame: onward }],
        ))
    }

    fn commit_confirmed(
        &mut self,
        coordinator: SwitchId,
        token: u16,
        _now: SimTime,
    ) -> RtResult<ControlOutcome> {
        // The coordination may have timed out while the Confirm walk was
        // in flight; the requester was already answered with a rejection.
        let Some(coord) = self.site(coordinator)?.coordinations.remove(&token) else {
            return Ok(ControlOutcome::empty());
        };
        let key = ReservationKey::token(coordinator, token);
        if !self.site(coordinator)?.ledger.clear_lease(key) {
            // Our own lease expired before the Confirm arrived: the slack
            // is reclaimed; reject rather than resurrect.
            self.site(coordinator)?.ledger.release_key(key);
            self.rejected += 1;
            return Ok(ControlOutcome::emissions_at(
                coordinator,
                vec![SwitchAction::SendResponse {
                    to: coord.source,
                    frame: ResponseFrame {
                        rt_channel_id: coord.channel,
                        switch_mac: self.switch_mac,
                        verdict: ResponseVerdict::Rejected,
                        connection_request_id: coord.request_id,
                    },
                }],
            ));
        }
        let id = coord.channel.ok_or_else(|| {
            RtError::ProtocolViolation("Confirm for a reservation without a channel id".into())
        })?;
        let path = coord
            .candidates
            .get(coord.candidate)
            .cloned()
            .ok_or_else(|| {
                RtError::ProtocolViolation("Confirm for a reservation without a route".into())
            })?;
        let link_deadlines = coord.deadlines.clone().ok_or_else(|| {
            RtError::ProtocolViolation("Confirm for a reservation without deadlines".into())
        })?;
        self.registry.insert(
            id.get(),
            DistChannel {
                id,
                source: coord.source,
                destination: coord.destination,
                spec: coord.spec,
                path,
                link_deadlines,
                coordinator,
                token,
            },
        );
        Ok(ControlOutcome::emissions_at(
            coordinator,
            vec![SwitchAction::SendResponse {
                to: coord.source,
                frame: ResponseFrame {
                    rt_channel_id: Some(id),
                    switch_mac: self.switch_mac,
                    verdict: ResponseVerdict::Accepted,
                    connection_request_id: coord.request_id,
                },
            }],
        ))
    }

    /// The destination node answered: its access switch relays the verdict
    /// — Confirm on accept, a descending rollback on reject.  The relay
    /// state is matched by the channel id the destination echoed back (the
    /// one key that is unique fabric-wide even under concurrent admissions
    /// from different sources).
    fn on_response(
        &mut self,
        at: SwitchId,
        from: NodeId,
        resp: &ResponseFrame,
        now: SimTime,
    ) -> RtResult<ControlOutcome> {
        let channel = resp.rt_channel_id.ok_or_else(|| {
            RtError::ProtocolViolation("destination response carries no RT channel id".into())
        })?;
        let Some(pending) = self.site(at)?.expecting.remove(&channel.get()) else {
            // The relay entry was garbage-collected — the handshake stalled
            // past its lease and the coordination timeout already answered
            // the requester.  A late destination verdict changes nothing.
            let _ = from;
            return Ok(ControlOutcome::empty());
        };
        let mut notice = ReservationFrame {
            op: ReservationOp::Confirm,
            reason: ReservationReason::None,
            coordinator: pending.coordinator,
            token: pending.token,
            source: pending.source,
            destination: from,
            request_id: resp.connection_request_id,
            candidate: pending.candidate,
            hop: 0,
            channel: resp.rt_channel_id,
            period: pending.spec.period,
            capacity: pending.spec.capacity,
            deadline: pending.spec.deadline,
            values: Vec::new(),
        };
        let key = ReservationKey::token(pending.coordinator, pending.token);
        if resp.verdict.is_accepted() {
            if at == pending.coordinator {
                return self.commit_confirmed(at, pending.token, now);
            }
            if self.sites[&at].ledger.lease_of(key).is_none() {
                // Our own lease expired while the destination deliberated:
                // the slack is reclaimed — tear the admission down.
                notice.op = ReservationOp::ReserveFailed;
                notice.reason = ReservationReason::LeaseExpired;
                return Ok(ControlOutcome::emissions_at(
                    at,
                    vec![SwitchAction::SendControl {
                        to: pending.coordinator,
                        frame: notice,
                    }],
                ));
            }
            // Renew (attest) our lease and start the backward Confirm walk
            // at our predecessor on the route.
            let expires = now.saturating_add(self.lease_duration);
            self.site(at)?.ledger.lease(key, expires);
            let route = self.candidate_route_at(at, &notice);
            let seq = route.map_or_else(Vec::new, |r| {
                Self::route_switches(&self.sites[&at].view, &r)
            });
            let (hop, to) = if seq.len() >= 2 && seq.last() == Some(&at) {
                ((seq.len() - 2) as u8, seq[seq.len() - 2])
            } else {
                // View disagreement: hand the commit straight to the
                // coordinator; skipped sites' leases are spared by the
                // sweep's registry check once committed.
                (0, pending.coordinator)
            };
            notice.hop = hop;
            return Ok(ControlOutcome::emissions_at(
                at,
                vec![SwitchAction::SendControl { to, frame: notice }],
            ));
        }
        // Destination refused: release the whole route, ending at the
        // coordinator which answers the source.
        self.site(at)?.ledger.release_key(key);
        if at == pending.coordinator {
            return self.finish_destination_reject(at, pending.token);
        }
        let mut rollback = notice;
        rollback.op = ReservationOp::Rollback;
        rollback.reason = ReservationReason::DestinationRejected;
        let route = self.candidate_route_at(at, &rollback);
        let seq = route.map_or_else(Vec::new, |r| {
            Self::route_switches(&self.sites[&at].view, &r)
        });
        let (hop, to) = if seq.len() >= 2 && seq.last() == Some(&at) {
            ((seq.len() - 2) as u8, seq[seq.len() - 2])
        } else {
            // View disagreement: hand the release straight to the
            // coordinator; skipped reservations are lease-bounded.
            (0, pending.coordinator)
        };
        rollback.hop = hop;
        Ok(ControlOutcome::emissions_at(
            at,
            vec![SwitchAction::SendControl {
                to,
                frame: rollback,
            }],
        ))
    }

    // --- tear-down --------------------------------------------------------

    /// A TeardownFrame arrived at the channel's coordinator (the source's
    /// access switch): release locally and send the Release pass down the
    /// admitted route.
    fn on_teardown(&mut self, at: SwitchId, channel: ChannelId) -> RtResult<ControlOutcome> {
        let dist = self
            .registry
            .remove(&channel.get())
            .ok_or(RtError::UnknownChannel(channel))?;
        let key = dist.key();
        self.site(at)?.ledger.release_key(key);
        let seq = Self::route_switches(&self.topology, &dist.path);
        let mut emissions = Vec::new();
        if seq.len() > 1 {
            // The itinerary travels in the frame: the admitted route must
            // be released even if the topology has changed since.
            let release = ReservationFrame {
                op: ReservationOp::Release,
                reason: ReservationReason::None,
                coordinator: dist.coordinator,
                token: dist.token,
                source: dist.source,
                destination: dist.destination,
                request_id: ConnectionRequestId::new(0),
                candidate: 0,
                hop: 1,
                channel: Some(dist.id),
                period: dist.spec.period,
                capacity: dist.spec.capacity,
                deadline: dist.spec.deadline,
                values: seq.iter().map(|s| u64::from(s.get())).collect(),
            };
            emissions.push((
                at,
                SwitchAction::SendControl {
                    to: seq[1],
                    frame: release,
                },
            ));
        }
        Ok(ControlOutcome {
            emissions,
            released: vec![ReleasedChannel {
                id: dist.id,
                destination: dist.destination,
            }],
        })
    }

    /// Release: free this reservation here and keep walking the itinerary
    /// carried in the frame.
    fn on_release(&mut self, at: SwitchId, frame: &ReservationFrame) -> RtResult<ControlOutcome> {
        let key = ReservationKey::token(frame.coordinator, frame.token);
        self.site(at)?.ledger.release_key(key);
        let i = frame.hop as usize;
        if i + 1 < frame.values.len() {
            let next = SwitchId::new(frame.values[i + 1] as u32);
            let onward = Self::follow_up(
                frame,
                ReservationOp::Release,
                ReservationReason::None,
                frame.hop + 1,
                frame.values.clone(),
            );
            return Ok(ControlOutcome::emissions_at(
                at,
                vec![SwitchAction::SendControl {
                    to: next,
                    frame: onward,
                }],
            ));
        }
        Ok(ControlOutcome::empty())
    }

    // --- link-state flooding ----------------------------------------------

    /// Build a `LinkState` announcement as `origin` would put it on the
    /// wire: `values = [endpoint_a, endpoint_b, alive, epoch]`, with the
    /// origin switch in the coordinator field.
    fn link_state_frame(
        origin: SwitchId,
        a: SwitchId,
        b: SwitchId,
        alive: bool,
        epoch: u64,
    ) -> ReservationFrame {
        ReservationFrame {
            op: ReservationOp::LinkState,
            reason: ReservationReason::None,
            coordinator: origin,
            token: 0,
            source: NodeId::new(0),
            destination: NodeId::new(0),
            request_id: ConnectionRequestId::new(0),
            candidate: 0,
            hop: 0,
            channel: None,
            period: Slots::new(0),
            capacity: Slots::new(0),
            deadline: Slots::new(0),
            values: vec![
                u64::from(a.get()),
                u64::from(b.get()),
                u64::from(alive),
                epoch,
            ],
        }
    }

    /// Apply one link-state announcement to `at`'s own view and return the
    /// re-flood emissions (empty when the epoch is stale — which both
    /// terminates the flood and keeps a late frame from resurrecting an
    /// old view).
    fn apply_link_state(
        &mut self,
        at: SwitchId,
        a: SwitchId,
        b: SwitchId,
        alive: bool,
        epoch: u64,
    ) -> Vec<(SwitchId, SwitchAction)> {
        let (lo, hi) = if a.get() <= b.get() {
            (a.get(), b.get())
        } else {
            (b.get(), a.get())
        };
        let Some(site) = self.sites.get_mut(&at) else {
            return Vec::new();
        };
        if site.ls_seen.get(&(lo, hi)).copied().unwrap_or(0) >= epoch {
            return Vec::new();
        }
        site.ls_seen.insert((lo, hi), epoch);
        // The mutation may be a no-op (the view already agreed — e.g. both
        // adjacent switches originate the same event); the epoch must
        // still be recorded and re-flooded so the announcement reaches
        // everyone.
        let _ = if alive {
            site.view.repair_trunk(a, b)
        } else {
            site.view.fail_trunk(a, b)
        };
        let frame = Self::link_state_frame(at, a, b, alive, epoch);
        site.view
            .neighbours(at)
            .map(|n| {
                (
                    at,
                    SwitchAction::SendControl {
                        to: n,
                        frame: frame.clone(),
                    },
                )
            })
            .collect()
    }

    /// A flooded announcement arrived at `at`: apply and re-flood.
    fn on_link_state(
        &mut self,
        at: SwitchId,
        frame: &ReservationFrame,
    ) -> RtResult<ControlOutcome> {
        if frame.values.len() != 4 {
            return Err(RtError::ProtocolViolation(format!(
                "link-state announcement carries {} values, expected 4",
                frame.values.len()
            )));
        }
        let a = SwitchId::new(frame.values[0] as u32);
        let b = SwitchId::new(frame.values[1] as u32);
        let alive = frame.values[2] != 0;
        let epoch = frame.values[3];
        Ok(ControlOutcome {
            emissions: self.apply_link_state(at, a, b, alive, epoch),
            released: Vec::new(),
        })
    }

    /// Originate the link-state flood for a set of trunk events: one fresh
    /// epoch per trunk, shared by the two adjacent switches (so their
    /// floods absorb each other), each applying the event to its own view
    /// first — a switch is never stale about its own trunks — then
    /// re-flooding to its current view neighbours.  Queued on
    /// `pending_control` for the caller to drain onto the wire.  A dead
    /// origin (`mute`) still updates its view but emits nothing.
    fn originate_link_state(
        &mut self,
        trunks: &[(SwitchId, SwitchId)],
        alive: bool,
        mute: Option<SwitchId>,
    ) {
        for &(a, b) in trunks {
            self.ls_epoch += 1;
            let epoch = self.ls_epoch;
            for origin in [a, b] {
                let emissions = self.apply_link_state(origin, a, b, alive, epoch);
                if Some(origin) != mute {
                    self.pending_control.extend(emissions);
                }
            }
        }
    }

    // --- time-driven reclamation ------------------------------------------

    /// Sweep one site's clock-driven state at `now`: expired reservation
    /// leases (sparing committed channels — their slack is permanent, only
    /// the leftover lease is dropped), timed-out coordinations (the
    /// requester gets a rejection and the candidate route a release
    /// sweep), and stale destination-side relay entries.
    fn sweep_site(
        &mut self,
        at: SwitchId,
        now: SimTime,
    ) -> RtResult<Vec<(SwitchId, SwitchAction)>> {
        let mut emissions = Vec::new();
        if !self.sites.contains_key(&at) {
            return Ok(emissions);
        }
        // Committed channels hold their slack permanently: a lease whose
        // clear never reached this site is dropped without reclaiming
        // anything — one of the two documented places the manager-global
        // registry is consulted.
        let committed: Vec<ReservationKey> = self.registry.values().map(|c| c.key()).collect();
        {
            let site = self.sites.get_mut(&at).expect("checked above");
            for key in committed {
                if site.ledger.lease_of(key).is_some_and(|d| d <= now) {
                    site.ledger.clear_lease(key);
                }
            }
            let reclaimed = site.ledger.sweep_expired(now);
            self.lease_expired += reclaimed.len() as u64;
        }
        // Timed-out coordinations: a lost frame or a partition stalled the
        // handshake past its deadline — abort, answer the requester, sweep
        // the candidate route.
        let stalled: Vec<u16> = self.sites[&at]
            .coordinations
            .iter()
            .filter(|(_, c)| c.expires <= now)
            .map(|(&t, _)| t)
            .collect();
        for token in stalled {
            emissions.extend(self.abort_coordination(at, token)?);
        }
        // Stale relay entries: the destination node never answered (its
        // request or its response was lost to a fault).
        self.sites
            .get_mut(&at)
            .expect("checked above")
            .expecting
            .retain(|_, p| p.expires > now);
        Ok(emissions)
    }

    /// Abort a timed-out coordination at its coordinator: release whatever
    /// it holds here, sweep its current candidate route with a Release
    /// itinerary (anything the sweep misses is lease-bounded), and answer
    /// the requester with a rejection.
    fn abort_coordination(
        &mut self,
        coordinator: SwitchId,
        token: u16,
    ) -> RtResult<Vec<(SwitchId, SwitchAction)>> {
        let Some(coord) = self.site(coordinator)?.coordinations.remove(&token) else {
            return Ok(Vec::new());
        };
        let key = ReservationKey::token(coordinator, token);
        self.site(coordinator)?.ledger.release_key(key);
        self.rejected += 1;
        let mut emissions = Vec::new();
        if let Some(route) = coord.candidates.get(coord.candidate) {
            let seq = Self::route_switches(&self.sites[&coordinator].view, route);
            if seq.len() > 1 {
                let release = ReservationFrame {
                    op: ReservationOp::Release,
                    reason: ReservationReason::None,
                    coordinator,
                    token,
                    source: coord.source,
                    destination: coord.destination,
                    request_id: coord.request_id,
                    candidate: coord.candidate as u8,
                    hop: 1,
                    channel: coord.channel,
                    period: coord.spec.period,
                    capacity: coord.spec.capacity,
                    deadline: coord.spec.deadline,
                    values: seq.iter().map(|s| u64::from(s.get())).collect(),
                };
                emissions.push((
                    coordinator,
                    SwitchAction::SendControl {
                        to: seq[1],
                        frame: release,
                    },
                ));
            }
        }
        emissions.push((
            coordinator,
            SwitchAction::SendResponse {
                to: coord.source,
                frame: ResponseFrame {
                    rt_channel_id: coord.channel,
                    switch_mac: self.switch_mac,
                    verdict: ResponseVerdict::Rejected,
                    connection_request_id: coord.request_id,
                },
            },
        ));
        Ok(emissions)
    }

    // --- fail-over (driven by the switches adjacent to the cut) -----------

    /// The shared fail-over engine: the topology is already degraded; the
    /// switches adjacent to each cut trunk name the affected channels from
    /// their own ledgers, everything affected is released fabric-wide, then
    /// re-admitted (ascending id, ids preserved) over surviving routes.
    fn fail_over(
        &mut self,
        cut: &[(SwitchId, SwitchId)],
        link: (SwitchId, SwitchId),
    ) -> FailoverReport {
        // Reverse map (coordinator, token) -> channel id.
        let by_key: BTreeMap<(u32, u16), u16> = self
            .registry
            .values()
            .map(|c| ((c.coordinator.get(), c.token), c.id.get()))
            .collect();
        let mut affected: BTreeSet<u16> = BTreeSet::new();
        for &(a, b) in cut {
            for (from, to) in [(a, b), (b, a)] {
                let trunk = HopLink::Trunk { from, to };
                if let Some(site) = self.sites.get(&from) {
                    for key in site.ledger.keys_on(trunk) {
                        if let ReservationKey::Token(coordinator, token) = key {
                            if let Some(&id) = by_key.get(&(coordinator, token)) {
                                affected.insert(id);
                            }
                        }
                    }
                }
            }
        }
        let unaffected = self.registry.len() - affected.len();
        let mut report = FailoverReport {
            link,
            rerouted: Vec::new(),
            dropped: Vec::new(),
            unaffected,
        };
        // Release every affected channel fabric-wide before re-admitting
        // any (the same all-then-readmit rule as the central manager).
        let released: Vec<DistChannel> = affected
            .iter()
            .map(|id| {
                let dist = self
                    .registry
                    .remove(id)
                    .expect("affected ids come from the registry");
                let key = dist.key();
                for site in self.sites.values_mut() {
                    site.ledger.release_key(key);
                }
                dist
            })
            .collect();
        for old in released {
            let candidates = self
                .candidate_routes_global(old.source, old.destination)
                .unwrap_or_default();
            let key = old.key();
            let mut readmitted = false;
            for route in candidates {
                if let Some(deadlines) = self.try_reserve_sync(key, &old.spec, &route) {
                    let renewed = DistChannel {
                        path: route,
                        link_deadlines: deadlines,
                        ..old.clone()
                    };
                    report.rerouted.push(renewed.to_route());
                    self.registry.insert(renewed.id.get(), renewed);
                    self.rerouted += 1;
                    readmitted = true;
                    break;
                }
            }
            if !readmitted {
                report.dropped.push(old.to_route());
                self.dropped_on_failure += 1;
            }
        }
        report
    }

    /// The repair-side counterpart of fail-over: after a trunk repair,
    /// migrate every channel whose path differs from the router's primary
    /// route back onto that primary (ascending id, ids preserved, released
    /// fabric-wide then re-reserved synchronously).  A channel the primary
    /// cannot admit is restored onto its detour with its exact previous
    /// reservation — a repair never drops a channel, mirroring the central
    /// manager's re-optimisation decision for decision.
    fn reoptimize(&mut self, link: (SwitchId, SwitchId)) -> FailoverReport {
        let mut report = FailoverReport {
            link,
            rerouted: Vec::new(),
            dropped: Vec::new(),
            unaffected: 0,
        };
        let ids: Vec<u16> = self.registry.keys().copied().collect();
        for id in ids {
            let (source, destination) = {
                let c = &self.registry[&id];
                (c.source, c.destination)
            };
            let primary = match self.candidate_routes_global(source, destination) {
                Ok(candidates) => match candidates.into_iter().next() {
                    Some(route) => route,
                    None => {
                        report.unaffected += 1;
                        continue;
                    }
                },
                Err(_) => {
                    report.unaffected += 1;
                    continue;
                }
            };
            if primary == self.registry[&id].path {
                report.unaffected += 1;
                continue;
            }
            let old = self
                .registry
                .remove(&id)
                .expect("ids come from the live registry");
            let key = old.key();
            for site in self.sites.values_mut() {
                site.ledger.release_key(key);
            }
            match self.try_reserve_sync(key, &old.spec, &primary) {
                Some(deadlines) => {
                    let renewed = DistChannel {
                        path: primary,
                        link_deadlines: deadlines,
                        ..old
                    };
                    report.rerouted.push(renewed.to_route());
                    self.registry.insert(renewed.id.get(), renewed);
                    self.rerouted += 1;
                }
                None => {
                    // Restore the exact reservation that was just released:
                    // the same links, the same per-link deadlines, on the
                    // same owning sites — guaranteed to hold.
                    for (hop, &deadline) in old.path.iter().zip(old.link_deadlines.iter()) {
                        let owner = self
                            .owner_of(*hop)
                            .expect("an admitted route's links all have owners");
                        let task = PeriodicTask::new(old.spec.period, old.spec.capacity, deadline)
                            .expect("the held reservation's task was valid");
                        self.sites
                            .get_mut(&owner)
                            .expect("owning site exists")
                            .ledger
                            .reserve(*hop, key, task);
                    }
                    self.registry.insert(old.id.get(), old);
                    report.unaffected += 1;
                }
            }
        }
        report
    }

    /// Synchronous reservation across the owning sites (used by fail-over,
    /// where the re-admission runs as one atomic control-plane decision):
    /// the same loads → partition → per-link feasibility → reserve sequence
    /// the wire protocol performs hop by hop.
    fn try_reserve_sync(
        &mut self,
        key: ReservationKey,
        spec: &RtChannelSpec,
        route: &Route,
    ) -> Option<Vec<Slots>> {
        let loads: Vec<usize> = route
            .iter()
            .map(|l| {
                self.owner_of(*l)
                    .and_then(|owner| self.sites.get(&owner))
                    .map_or(0, |site| site.ledger.link_load(*l))
            })
            .collect();
        let deadlines = self.dps.partition(spec, route, &loads).ok()?;
        let mut plan: Vec<(SwitchId, HopLink, PeriodicTask)> = Vec::with_capacity(route.len());
        for (link, &deadline) in route.iter().zip(deadlines.iter()) {
            let owner = self.owner_of(*link)?;
            let task = PeriodicTask::new(spec.period, spec.capacity, deadline).ok()?;
            if !self
                .sites
                .get(&owner)?
                .ledger
                .feasible_with(*link, &task)
                .is_feasible()
            {
                return None;
            }
            plan.push((owner, *link, task));
        }
        for (owner, link, task) in plan {
            self.sites
                .get_mut(&owner)
                .expect("owner checked above")
                .ledger
                .reserve(link, key, task);
        }
        Some(deadlines)
    }

    /// The switch sequence of a route — module-level so both the
    /// construction and the per-hop handlers agree on geometry.
    fn route_switches(topology: &Topology, route: &Route) -> Vec<SwitchId> {
        let mut seq = Vec::with_capacity(route.len());
        for link in route.iter() {
            if let HopLink::Trunk { from, to } = link {
                if seq.is_empty() {
                    seq.push(*from);
                }
                seq.push(*to);
            }
        }
        if seq.is_empty() {
            if let Some(access) = topology.switch_of(route.source()) {
                seq.push(access);
            }
        }
        seq
    }
}

impl ChannelManager for DistributedChannelManager {
    fn handle_request(&mut self, _frame: &RequestFrame) -> RtResult<Vec<SwitchAction>> {
        Err(RtError::ProtocolViolation(
            "the distributed control plane needs switch context; drive it through handle_frame_at"
                .into(),
        ))
    }

    fn handle_response(&mut self, _frame: &ResponseFrame) -> RtResult<Vec<SwitchAction>> {
        Err(RtError::ProtocolViolation(
            "the distributed control plane needs switch context; drive it through handle_frame_at"
                .into(),
        ))
    }

    fn handle_teardown(&mut self, channel: ChannelId) -> RtResult<ReleasedChannel> {
        // Direct (API-level) teardown: release fabric-wide synchronously.
        let dist = self
            .registry
            .remove(&channel.get())
            .ok_or(RtError::UnknownChannel(channel))?;
        let key = dist.key();
        for site in self.sites.values_mut() {
            site.ledger.release_key(key);
        }
        Ok(ReleasedChannel {
            id: dist.id,
            destination: dist.destination,
        })
    }

    fn channel_count(&self) -> usize {
        let in_flight = self
            .sites
            .values()
            .flat_map(|s| s.coordinations.values())
            .filter(|c| c.channel.is_some())
            .count();
        self.registry.len() + in_flight
    }

    fn pending_count(&self) -> usize {
        self.sites
            .values()
            .flat_map(|s| s.coordinations.values())
            .filter(|c| c.channel.is_some())
            .count()
    }

    fn channel_ids(&self) -> Vec<ChannelId> {
        self.registry.keys().map(|&id| ChannelId::new(id)).collect()
    }

    fn channel_route(&self, id: ChannelId) -> Option<ChannelRoute> {
        Some(self.registry.get(&id.get())?.to_route())
    }

    fn link_load(&self, link: HopLink) -> usize {
        match self.owner_of(link) {
            Some(owner) => self
                .sites
                .get(&owner)
                .map_or(0, |site| site.ledger.link_load(link)),
            None => 0,
        }
    }

    fn schedules_hops(&self) -> bool {
        true
    }

    fn handle_link_failure(&mut self, from: SwitchId, to: SwitchId) -> RtResult<FailoverReport> {
        self.topology.fail_trunk(from, to)?;
        self.originate_link_state(&[(from, to)], false, None);
        Ok(self.fail_over(&[(from, to)], (from, to)))
    }

    fn handle_link_repair(&mut self, from: SwitchId, to: SwitchId) -> RtResult<FailoverReport> {
        self.topology.repair_trunk(from, to)?;
        self.originate_link_state(&[(from, to)], true, None);
        Ok(self.reoptimize((from, to)))
    }

    fn handle_switch_failure(&mut self, switch: SwitchId) -> RtResult<FailoverReport> {
        let cut = self.topology.fail_switch(switch)?;
        // Only the surviving neighbours announce the cuts — a dead switch
        // cannot put frames on the wire.  Its control state dies with it:
        // coordinations it led and relays it owed are simply gone; the
        // slack they referenced elsewhere comes back by lease expiry.
        self.originate_link_state(&cut, false, Some(switch));
        if let Some(site) = self.sites.get_mut(&switch) {
            site.coordinations.clear();
            site.expecting.clear();
        }
        Ok(self.fail_over(&cut, (switch, switch)))
    }

    fn handle_frame_at(
        &mut self,
        at: SwitchId,
        from: NodeId,
        frame: &Frame,
        now: SimTime,
    ) -> RtResult<ControlOutcome> {
        // Time first: anything expired at this site is reclaimed before the
        // frame is looked at, so a frame arriving one tick late finds its
        // lease gone — not a resurrection path.
        let swept = self.sweep_site(at, now)?;
        let mut outcome = match frame {
            Frame::Request(req) => self.begin_request(at, req, now),
            Frame::Response(resp) => self.on_response(at, from, resp, now),
            Frame::Teardown(td) => self.on_teardown(at, td.rt_channel_id),
            Frame::Reservation(rf) => self.on_reservation(at, rf, now),
            other => Err(RtError::ProtocolViolation(format!(
                "unexpected frame at the switch control plane: {other:?}"
            ))),
        }?;
        if !swept.is_empty() {
            let mut emissions = swept;
            emissions.append(&mut outcome.emissions);
            outcome.emissions = emissions;
        }
        Ok(outcome)
    }

    fn next_timeout(&self) -> Option<SimTime> {
        let mut earliest: Option<SimTime> = None;
        let mut fold = |t: SimTime| {
            earliest = Some(earliest.map_or(t, |e| e.min(t)));
        };
        for site in self.sites.values() {
            if let Some(t) = site.ledger.next_expiry() {
                fold(t);
            }
            for coord in site.coordinations.values() {
                fold(coord.expires);
            }
            for pending in site.expecting.values() {
                fold(pending.expires);
            }
        }
        earliest
    }

    fn on_tick(&mut self, now: SimTime) -> RtResult<ControlOutcome> {
        let sites: Vec<SwitchId> = self.sites.keys().copied().collect();
        let mut emissions = Vec::new();
        for at in sites {
            emissions.extend(self.sweep_site(at, now)?);
        }
        Ok(ControlOutcome {
            emissions,
            released: Vec::new(),
        })
    }

    fn drain_control(&mut self) -> Vec<(SwitchId, SwitchAction)> {
        std::mem::take(&mut self.pending_control)
    }

    fn audit_quiescent(&self) -> RtResult<()> {
        let committed: BTreeSet<ReservationKey> = self.registry.values().map(|c| c.key()).collect();
        for (&s, site) in &self.sites {
            if let Some(token) = site.coordinations.keys().next() {
                return Err(RtError::ProtocolViolation(format!(
                    "site {s} still coordinates token {token} in a quiescent fabric"
                )));
            }
            if let Some(id) = site.expecting.keys().next() {
                return Err(RtError::ProtocolViolation(format!(
                    "site {s} still expects a destination verdict for channel {id}"
                )));
            }
            if let Some(t) = site.ledger.next_expiry() {
                return Err(RtError::ProtocolViolation(format!(
                    "site {s} still holds a lease expiring at {t}"
                )));
            }
            for (link, _) in site.ledger.loaded_links() {
                for key in site.ledger.keys_on(link) {
                    if !committed.contains(&key) {
                        return Err(RtError::ProtocolViolation(format!(
                            "slack leak: site {s} holds {key:?} on {link:?} \
                             for no admitted channel"
                        )));
                    }
                }
            }
        }
        // Every admitted channel holds exactly its route's reservations at
        // the owning sites, and its id sits inside its coordinator's block.
        let switches: Vec<SwitchId> = self.sites.keys().copied().collect();
        for chan in self.registry.values() {
            let key = chan.key();
            for link in chan.path.iter() {
                let owner = self.owner_of(*link).ok_or_else(|| {
                    RtError::ProtocolViolation(format!(
                        "admitted channel {} crosses unowned link {link:?}",
                        chan.id
                    ))
                })?;
                let held = self
                    .sites
                    .get(&owner)
                    .is_some_and(|site| site.ledger.holds(*link, key));
                if !held {
                    return Err(RtError::ProtocolViolation(format!(
                        "admitted channel {} lost its reservation on {link:?}",
                        chan.id
                    )));
                }
            }
            let idx = switches
                .iter()
                .position(|&s| s == chan.coordinator)
                .ok_or_else(|| {
                    RtError::ProtocolViolation(format!(
                        "admitted channel {} has unknown coordinator {}",
                        chan.id, chan.coordinator
                    ))
                })?;
            let (start, end) = Self::id_block_of(switches.len(), idx);
            if chan.id.get() < start || chan.id.get() > end {
                return Err(RtError::ProtocolViolation(format!(
                    "channel id {} outside its coordinator's block {start}..={end}",
                    chan.id
                )));
            }
        }
        Ok(())
    }
}
