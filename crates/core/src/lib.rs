//! # rt-core
//!
//! The paper's primary contribution: real-time channels over unmodified
//! switched Ethernet, with per-link EDF admission control and deadline
//! partitioning.
//!
//! * [`channel`] — the RT channel abstraction `{P_i, C_i, d_i}` and its
//!   per-link decomposition (Eq. 18.6–18.9),
//! * [`dps`] — deadline-partitioning schemes: the paper's SDPS and ADPS plus
//!   two extensions used as ablations,
//! * [`system_state`] — the system state `SS = {N, K}` (§18.3.2) with
//!   per-directed-link task sets and link loads,
//! * [`admission`] — the switch's admission controller: partition, test both
//!   links with the [`rt_edf`] feasibility test, accept or reject,
//! * [`manager`] — the switch-side RT channel management software
//!   (assigns network-unique channel IDs, drives the request/response
//!   handshake),
//! * [`rtlayer`] — the node-side RT layer: requesting channels, stamping
//!   outgoing datagrams with absolute deadlines, restoring headers on
//!   receive,
//! * [`protocol`] — shared definitions for the establishment handshake,
//! * [`network`] — glue that runs the whole stack over the [`rt_netsim`]
//!   simulator through the [`network::RtNetworkBuilder`]: establishment over
//!   the wire, periodic traffic on admitted channels, end-to-end delay
//!   measurement against the Eq. 18.1 bound,
//! * [`multihop`] — the paper's stated future work and one step beyond:
//!   interconnected switches (trees and meshes), pluggable path selection
//!   via [`rt_types::Router`], multi-hop deadline partitioning and per-link
//!   admission control along the whole routed path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod channel;
pub mod distributed;
pub mod dps;
pub mod ledger;
pub mod manager;
pub mod multihop;
pub mod network;
pub mod protocol;
pub mod rtlayer;
pub mod system_state;

pub use admission::{AdmissionController, AdmissionDecision};
pub use channel::{DeadlineSplit, RtChannel, RtChannelSpec};
pub use distributed::DistributedChannelManager;
pub use dps::{Adps, DeadlinePartitioningScheme, DpsKind, Sdps, SearchDps, WeightedAdps};
pub use ledger::{ReservationKey, SlackLedger};
pub use manager::{
    ChannelManager, ChannelRoute, ControlOutcome, FailoverReport, ReleasedChannel,
    SwitchChannelManager,
};
pub use multihop::{
    FabricChannelManager, HopLink, MultiHopAdmission, MultiHopChannel, MultiHopDps, Route, Router,
    SwitchId, Topology,
};
pub use network::{RtNetwork, RtNetworkBuilder};
pub use rtlayer::RtLayer;
pub use system_state::SystemState;
