//! The system state `SS = {N, K}` of §18.3.2.
//!
//! `N` is the set of nodes connected to the switch and `K` the set of RT
//! channels currently active.  For admission control the state additionally
//! maintains, per directed link, the set of supposed tasks running on it
//! (Eq. 18.6/18.7), its *LinkLoad* (number of channels traversing it — the
//! quantity ADPS partitions by) and its utilisation.

use std::collections::BTreeMap;

use rt_edf::TaskSet;
use rt_types::{ChannelId, LinkId, NodeId, RtError, RtResult};

use crate::channel::RtChannel;

/// The system state: connected nodes, active channels and the per-link task
/// sets derived from them.
#[derive(Debug, Clone, Default)]
pub struct SystemState {
    nodes: BTreeMap<NodeId, ()>,
    channels: BTreeMap<u16, RtChannel>,
    link_tasks: BTreeMap<LinkId, TaskSet>,
}

impl SystemState {
    /// An empty system (no nodes, no channels).
    pub fn new() -> Self {
        Self::default()
    }

    /// A system with the given nodes connected and no channels.
    pub fn with_nodes(nodes: impl IntoIterator<Item = NodeId>) -> Self {
        let mut state = Self::new();
        for n in nodes {
            state.add_node(n);
        }
        state
    }

    /// Connect a node to the switch (idempotent).
    pub fn add_node(&mut self, node: NodeId) {
        self.nodes.insert(node, ());
    }

    /// `true` if `node` is connected.
    pub fn has_node(&self, node: NodeId) -> bool {
        self.nodes.contains_key(&node)
    }

    /// Number of connected nodes (`|N|`).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The connected nodes, in ascending id order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.keys().copied()
    }

    /// Number of active channels (`size(K)`, the dimension of the DPS vector
    /// field in Eq. 18.10).
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// The active channels in ascending id order.
    pub fn channels(&self) -> impl Iterator<Item = &RtChannel> {
        self.channels.values()
    }

    /// Look up an active channel.
    pub fn channel(&self, id: ChannelId) -> Option<&RtChannel> {
        self.channels.get(&id.get())
    }

    /// The *LinkLoad* of a directed link: the number of channels traversing
    /// it (§18.4.2).
    pub fn link_load(&self, link: LinkId) -> usize {
        self.link_tasks.get(&link).map_or(0, |s| s.len())
    }

    /// The utilisation of a directed link (sum of `C/P` over its channels).
    pub fn link_utilisation(&self, link: LinkId) -> f64 {
        self.link_tasks
            .get(&link)
            .map_or(0.0, |s| s.utilisation_f64())
    }

    /// The supposed tasks currently running on a directed link.  Returns an
    /// empty set for links with no channels.
    pub fn link_taskset(&self, link: LinkId) -> TaskSet {
        self.link_tasks.get(&link).cloned().unwrap_or_default()
    }

    /// All directed links that currently carry at least one channel.
    pub fn loaded_links(&self) -> impl Iterator<Item = (LinkId, usize)> + '_ {
        self.link_tasks.iter().map(|(l, s)| (*l, s.len()))
    }

    /// Insert an established channel, updating both link task sets.
    ///
    /// Fails if either endpoint is not a connected node, if the channel id is
    /// already in use, or if source and destination coincide.
    pub fn insert_channel(&mut self, channel: RtChannel) -> RtResult<()> {
        let src = channel.source.node;
        let dst = channel.destination.node;
        if !self.has_node(src) {
            return Err(RtError::UnknownNode(src));
        }
        if !self.has_node(dst) {
            return Err(RtError::UnknownNode(dst));
        }
        if src == dst {
            return Err(RtError::InvalidChannelSpec(
                "source and destination must differ".into(),
            ));
        }
        if self.channels.contains_key(&channel.id.get()) {
            return Err(RtError::ProtocolViolation(format!(
                "channel id {} already in use",
                channel.id
            )));
        }
        let up_task = channel.uplink_task()?;
        let down_task = channel.downlink_task()?;
        self.link_tasks
            .entry(LinkId::uplink(src))
            .or_default()
            .push(up_task);
        self.link_tasks
            .entry(LinkId::downlink(dst))
            .or_default()
            .push(down_task);
        self.channels.insert(channel.id.get(), channel);
        Ok(())
    }

    /// Remove an active channel, releasing its reserved capacity on both
    /// links.
    pub fn remove_channel(&mut self, id: ChannelId) -> RtResult<RtChannel> {
        let channel = self
            .channels
            .remove(&id.get())
            .ok_or(RtError::UnknownChannel(id))?;
        let up_task = channel.uplink_task()?;
        let down_task = channel.downlink_task()?;
        if let Some(set) = self
            .link_tasks
            .get_mut(&LinkId::uplink(channel.source.node))
        {
            set.remove_one(&up_task);
            if set.is_empty() {
                self.link_tasks.remove(&LinkId::uplink(channel.source.node));
            }
        }
        if let Some(set) = self
            .link_tasks
            .get_mut(&LinkId::downlink(channel.destination.node))
        {
            set.remove_one(&down_task);
            if set.is_empty() {
                self.link_tasks
                    .remove(&LinkId::downlink(channel.destination.node));
            }
        }
        Ok(channel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{DeadlineSplit, Endpoint, RtChannelSpec};

    fn channel(id: u16, src: u32, dst: u32) -> RtChannel {
        let spec = RtChannelSpec::paper_default();
        RtChannel {
            id: ChannelId::new(id),
            source: Endpoint::for_node(NodeId::new(src)),
            destination: Endpoint::for_node(NodeId::new(dst)),
            spec,
            split: DeadlineSplit::symmetric(&spec).unwrap(),
        }
    }

    fn state_with_nodes(n: u32) -> SystemState {
        SystemState::with_nodes((0..n).map(NodeId::new))
    }

    #[test]
    fn nodes_and_counts() {
        let mut s = state_with_nodes(3);
        assert_eq!(s.node_count(), 3);
        assert!(s.has_node(NodeId::new(2)));
        assert!(!s.has_node(NodeId::new(3)));
        s.add_node(NodeId::new(3));
        s.add_node(NodeId::new(3)); // idempotent
        assert_eq!(s.node_count(), 4);
        assert_eq!(s.nodes().count(), 4);
    }

    #[test]
    fn insert_updates_link_loads() {
        let mut s = state_with_nodes(4);
        s.insert_channel(channel(1, 0, 1)).unwrap();
        s.insert_channel(channel(2, 0, 2)).unwrap();
        s.insert_channel(channel(3, 3, 2)).unwrap();
        assert_eq!(s.channel_count(), 3);
        assert_eq!(s.link_load(LinkId::uplink(NodeId::new(0))), 2);
        assert_eq!(s.link_load(LinkId::uplink(NodeId::new(3))), 1);
        assert_eq!(s.link_load(LinkId::downlink(NodeId::new(2))), 2);
        assert_eq!(s.link_load(LinkId::downlink(NodeId::new(1))), 1);
        assert_eq!(s.link_load(LinkId::downlink(NodeId::new(0))), 0);
        assert!((s.link_utilisation(LinkId::uplink(NodeId::new(0))) - 0.06).abs() < 1e-9);
        assert_eq!(s.loaded_links().count(), 4);
        assert_eq!(s.link_taskset(LinkId::uplink(NodeId::new(0))).len(), 2);
        assert!(s.channel(ChannelId::new(2)).is_some());
        assert!(s.channel(ChannelId::new(9)).is_none());
    }

    #[test]
    fn insert_rejects_bad_channels() {
        let mut s = state_with_nodes(2);
        // Unknown node.
        assert!(s.insert_channel(channel(1, 0, 7)).is_err());
        assert!(s.insert_channel(channel(1, 7, 0)).is_err());
        // Source == destination.
        assert!(s.insert_channel(channel(1, 0, 0)).is_err());
        // Duplicate id.
        s.insert_channel(channel(1, 0, 1)).unwrap();
        assert!(s.insert_channel(channel(1, 1, 0)).is_err());
        assert_eq!(s.channel_count(), 1);
    }

    #[test]
    fn remove_releases_capacity() {
        let mut s = state_with_nodes(3);
        s.insert_channel(channel(1, 0, 1)).unwrap();
        s.insert_channel(channel(2, 0, 1)).unwrap();
        assert_eq!(s.link_load(LinkId::uplink(NodeId::new(0))), 2);
        let removed = s.remove_channel(ChannelId::new(1)).unwrap();
        assert_eq!(removed.id, ChannelId::new(1));
        assert_eq!(s.link_load(LinkId::uplink(NodeId::new(0))), 1);
        assert_eq!(s.link_load(LinkId::downlink(NodeId::new(1))), 1);
        s.remove_channel(ChannelId::new(2)).unwrap();
        assert_eq!(s.link_load(LinkId::uplink(NodeId::new(0))), 0);
        assert_eq!(s.loaded_links().count(), 0);
        assert!(s.remove_channel(ChannelId::new(2)).is_err());
    }

    #[test]
    fn link_taskset_for_empty_link_is_empty() {
        let s = state_with_nodes(1);
        assert!(s.link_taskset(LinkId::uplink(NodeId::new(0))).is_empty());
        assert_eq!(s.link_utilisation(LinkId::downlink(NodeId::new(0))), 0.0);
    }
}
