//! Multi-switch topologies (the paper's stated future work).
//!
//! The paper's conclusions call for "investigating the use of more complex
//! network topologies, i.e. networks consisting of many interconnected
//! switches".  This module generalises the single-switch machinery to an
//! arbitrary connected fabric of switches:
//!
//! * a [`Topology`] describes which switch every end node attaches to and
//!   which trunk links connect the switches (trees *and* meshes),
//! * a [`Router`] selects the [`Route`] an RT channel takes — the source's
//!   uplink, zero or more directed trunk hops, and the destination's
//!   downlink; [`rt_types::TreeRouter`] reproduces the unique-tree-path
//!   behaviour, [`rt_types::ShortestPathRouter`] and [`rt_types::EcmpRouter`]
//!   open up cyclic fabrics with redundant trunks,
//! * the end-to-end deadline is partitioned over all links of the route by a
//!   [`MultiHopDps`]: the symmetric scheme gives every hop `d_i / k`, the
//!   asymmetric scheme distributes the slack `d_i − k·C_i` proportionally to
//!   the per-link load (the natural generalisation of Eq. 18.16),
//! * admission control ([`MultiHopAdmission`]) runs the same per-link EDF
//!   feasibility test on every link of the route and commits the channel only
//!   if all of them pass.
//!
//! The generalisation keeps the paper's analytical structure: each directed
//! link is still an independent EDF "processor", and the channel is feasible
//! iff every link on its path can schedule its share of the deadline.  Only
//! *path selection* is policy; the acceptance theory is untouched.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

use rt_edf::{PeriodicTask, TaskSet};
use rt_frames::rt_response::ResponseVerdict;
use rt_frames::{RequestFrame, ResponseFrame};
use rt_types::{
    ChannelId, ConnectionRequestId, MacAddr, NodeId, RtError, RtResult, ShortestPathRouter, Slots,
};
// The topology and routing types themselves live in `rt-types` (shared with
// the fabric simulator); re-exported here for backwards compatibility.
pub use rt_types::{HopLink, Route, Router, SwitchId, Topology};

use crate::channel::RtChannelSpec;
use crate::ledger::{ReservationKey, SlackLedger};
use crate::manager::{ChannelManager, ChannelRoute, FailoverReport, ReleasedChannel, SwitchAction};
use crate::protocol::ChannelRequest;

/// How the end-to-end deadline is split over the links of a multi-hop path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MultiHopDps {
    /// Every link gets `d_i / k` (the natural generalisation of SDPS).
    Symmetric,
    /// Every link gets `C_i` plus a share of the slack `d_i − k·C_i`
    /// proportional to its link load, counting the candidate channel itself
    /// (the natural generalisation of ADPS, Eq. 18.16).
    Asymmetric,
}

impl MultiHopDps {
    /// Partition `spec.deadline` over `path`, given the per-link loads in
    /// `loads` (same order as `path`).  Every per-link deadline is at least
    /// `C_i` and the parts sum to `d_i` exactly.
    pub fn partition(
        &self,
        spec: &RtChannelSpec,
        path: &[HopLink],
        loads: &[usize],
    ) -> RtResult<Vec<Slots>> {
        let hops = path.len() as u64;
        if hops == 0 {
            return Err(RtError::InvalidPartition {
                reason: "empty path".into(),
            });
        }
        debug_assert_eq!(path.len(), loads.len());
        let c = spec.capacity.get();
        let d = spec.deadline.get();
        if d < hops * c {
            return Err(RtError::InvalidChannelSpec(format!(
                "deadline {d} is shorter than {hops} hops x capacity {c}"
            )));
        }
        let slack = d - hops * c;
        let weights: Vec<f64> = match self {
            MultiHopDps::Symmetric => vec![1.0; path.len()],
            MultiHopDps::Asymmetric => loads.iter().map(|&l| l as f64 + 1.0).collect(),
        };
        let total_weight: f64 = weights.iter().sum();
        // Integer apportionment of the slack: floor of the proportional
        // share, then hand the remaining slots to the largest fractional
        // remainders (ties broken by position, so the result is
        // deterministic).
        let mut parts: Vec<u64> = Vec::with_capacity(path.len());
        let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(path.len());
        let mut assigned = 0u64;
        for (i, w) in weights.iter().enumerate() {
            let exact = slack as f64 * w / total_weight;
            let floor = exact.floor() as u64;
            parts.push(floor);
            assigned += floor;
            remainders.push((i, exact - floor as f64));
        }
        let mut leftover = slack - assigned;
        remainders.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let mut idx = 0;
        while leftover > 0 {
            parts[remainders[idx % remainders.len()].0] += 1;
            leftover -= 1;
            idx += 1;
        }
        let result: Vec<Slots> = parts.iter().map(|&p| Slots::new(c + p)).collect();
        debug_assert_eq!(result.iter().map(|s| s.get()).sum::<u64>(), d);
        Ok(result)
    }
}

/// An RT channel admitted into a multi-switch network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiHopChannel {
    /// Network-unique id.
    pub id: ChannelId,
    /// Source node.
    pub source: NodeId,
    /// Destination node.
    pub destination: NodeId,
    /// Traffic contract.
    pub spec: RtChannelSpec,
    /// The route the channel was admitted on (derefs to its `[HopLink]`s).
    pub path: Route,
    /// The per-link deadline of each hop, in the same order as `path`.
    pub link_deadlines: Vec<Slots>,
}

impl MultiHopChannel {
    /// The manager-agnostic [`ChannelRoute`] view of this channel.
    pub fn to_route(&self) -> ChannelRoute {
        ChannelRoute {
            id: self.id,
            source: self.source,
            destination: self.destination,
            spec: self.spec,
            path: self.path.clone(),
            link_deadlines: self.link_deadlines.clone(),
        }
    }
}

/// Admission control over a multi-switch topology.
///
/// The reservation book-keeping lives in one fabric-wide [`SlackLedger`] —
/// the central control plane is the degenerate "one switch owns every link"
/// placement of the same ledger the distributed manager shards per switch.
pub struct MultiHopAdmission {
    topology: Topology,
    router: Arc<dyn Router>,
    dps: MultiHopDps,
    ledger: SlackLedger,
    channels: BTreeMap<u16, MultiHopChannel>,
    next_channel_id: u16,
    accepted: u64,
    rejected: u64,
    rerouted: u64,
    dropped_on_failure: u64,
}

impl fmt::Debug for MultiHopAdmission {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MultiHopAdmission")
            .field("router", &self.router.name())
            .field("dps", &self.dps)
            .field("channels", &self.channels.len())
            .field("accepted", &self.accepted)
            .field("rejected", &self.rejected)
            .finish()
    }
}

impl MultiHopAdmission {
    /// Create an admission controller for `topology` using `dps`, routing
    /// with the default [`ShortestPathRouter`] (identical to the tree path
    /// on tree topologies, shortest paths on meshes).
    pub fn new(topology: Topology, dps: MultiHopDps) -> Self {
        Self::with_router(topology, dps, Arc::new(ShortestPathRouter::new()))
    }

    /// Create an admission controller with an explicit path-selection
    /// policy.  The router's capability check runs per request (through
    /// [`Router::route`]); callers that want to fail fast should invoke
    /// [`Router::validate`] when the network is built, as
    /// `rt_core::RtNetworkBuilder` does.
    pub fn with_router(topology: Topology, dps: MultiHopDps, router: Arc<dyn Router>) -> Self {
        MultiHopAdmission {
            topology,
            router,
            dps,
            ledger: SlackLedger::new(),
            channels: BTreeMap::new(),
            next_channel_id: 1,
            accepted: 0,
            rejected: 0,
            rerouted: 0,
            dropped_on_failure: 0,
        }
    }

    /// The topology being managed.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The path-selection policy in use.
    pub fn router(&self) -> &Arc<dyn Router> {
        &self.router
    }

    /// Number of active channels.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Requests accepted so far.
    pub fn accepted_count(&self) -> u64 {
        self.accepted
    }

    /// Requests rejected so far.
    pub fn rejected_count(&self) -> u64 {
        self.rejected
    }

    /// Channels re-routed over a surviving path after a trunk failure.
    pub fn rerouted_count(&self) -> u64 {
        self.rerouted
    }

    /// Channels dropped because no surviving route could re-admit them.
    pub fn failure_dropped_count(&self) -> u64 {
        self.dropped_on_failure
    }

    /// The number of channels currently traversing `link`.
    pub fn link_load(&self, link: HopLink) -> usize {
        self.ledger.link_load(link)
    }

    /// The task set currently reserved on `link`.
    pub fn link_taskset(&self, link: HopLink) -> TaskSet {
        self.ledger.taskset(link)
    }

    /// Links that currently carry at least one channel.
    pub fn loaded_links(&self) -> impl Iterator<Item = (HopLink, usize)> + '_ {
        self.ledger.loaded_links()
    }

    /// Look up an active channel.
    pub fn channel(&self, id: ChannelId) -> Option<&MultiHopChannel> {
        self.channels.get(&id.get())
    }

    /// The active channels, in ascending id order.
    pub fn channels(&self) -> impl Iterator<Item = &MultiHopChannel> {
        self.channels.values()
    }

    fn allocate_channel_id(&mut self) -> RtResult<ChannelId> {
        for _ in 0..u16::MAX {
            let candidate = self.next_channel_id;
            self.next_channel_id = if self.next_channel_id == u16::MAX {
                1
            } else {
                self.next_channel_id + 1
            };
            if !self.channels.contains_key(&candidate) {
                return Ok(ChannelId::new(candidate));
            }
        }
        Err(RtError::ChannelIdsExhausted)
    }

    /// Partition the deadline over `path` and run the per-link feasibility
    /// test with the candidate added, without committing anything.  Returns
    /// the per-link deadlines on success, or which link failed and why.
    fn try_admit(
        &self,
        spec: &RtChannelSpec,
        path: &Route,
    ) -> Result<Vec<Slots>, (Option<HopLink>, String)> {
        let loads: Vec<usize> = path.iter().map(|l| self.link_load(*l)).collect();
        let deadlines = self
            .dps
            .partition(spec, path, &loads)
            .map_err(|e| (None, e.to_string()))?;
        for (link, &deadline) in path.iter().zip(deadlines.iter()) {
            let task = PeriodicTask::new(spec.period, spec.capacity, deadline)
                .map_err(|e| (Some(*link), e.to_string()))?;
            let outcome = self.ledger.feasible_with(*link, &task);
            if !outcome.is_feasible() {
                return Err((
                    Some(*link),
                    format!(
                        "link {link} infeasible with d={deadline}: {:?}",
                        outcome.verdict
                    ),
                ));
            }
        }
        Ok(deadlines)
    }

    /// Commit an already-tested channel: reserve capacity on every link of
    /// the path under the given id.
    fn commit(
        &mut self,
        id: ChannelId,
        source: NodeId,
        destination: NodeId,
        spec: RtChannelSpec,
        path: Route,
        deadlines: Vec<Slots>,
    ) -> RtResult<MultiHopChannel> {
        for (link, &deadline) in path.iter().zip(deadlines.iter()) {
            let task = PeriodicTask::new(spec.period, spec.capacity, deadline)?;
            self.ledger
                .reserve(*link, ReservationKey::channel(id), task);
        }
        let channel = MultiHopChannel {
            id,
            source,
            destination,
            spec,
            path,
            link_deadlines: deadlines,
        };
        self.channels.insert(id.get(), channel.clone());
        Ok(channel)
    }

    /// Request a channel from `source` to `destination`.  Returns the
    /// admitted channel, or the rejection (which link failed and why).
    ///
    /// The router's candidate routes are tried in preference order: with a
    /// single-route policy this is exactly the classic one-shot admission,
    /// while a [`rt_types::KShortestRouter`] turns a saturated (or cut)
    /// primary path into a detour instead of a rejection.  A rejection
    /// reports the *primary* path's failure — that is the bound the caller
    /// asked about.
    pub fn request(
        &mut self,
        source: NodeId,
        destination: NodeId,
        spec: RtChannelSpec,
    ) -> RtResult<Result<MultiHopChannel, (Option<HopLink>, String)>> {
        spec.validate()?;
        let candidates = self.router.routes(&self.topology, source, destination)?;
        let mut primary_failure: Option<(Option<HopLink>, String)> = None;
        for path in candidates {
            match self.try_admit(&spec, &path) {
                Ok(deadlines) => {
                    let id = self.allocate_channel_id()?;
                    let channel = self.commit(id, source, destination, spec, path, deadlines)?;
                    self.accepted += 1;
                    return Ok(Ok(channel));
                }
                Err(failure) => {
                    if primary_failure.is_none() {
                        primary_failure = Some(failure);
                    }
                }
            }
        }
        self.rejected += 1;
        Ok(Err(
            primary_failure.expect("Router::routes yields at least one candidate")
        ))
    }

    /// Fail a trunk and fail over: every admitted channel whose route
    /// crossed it is released (capacity freed on *all* its links) and
    /// re-admitted over the surviving candidate routes, keeping its channel
    /// id so endpoint and wire state stay addressable.  Channels that no
    /// surviving route can admit are dropped.  Channels off the failed
    /// trunk are not touched at all.
    pub fn fail_trunk(&mut self, from: SwitchId, to: SwitchId) -> RtResult<FailoverReport> {
        self.topology.fail_trunk(from, to)?;
        Ok(self.fail_over(&[(from, to)], (from, to)))
    }

    /// Fail a whole switch: every healthy trunk incident to it goes down
    /// *atomically* (the topology degrades in one step before any
    /// re-admission runs, so no fail-over re-route can be placed across a
    /// trunk that is about to die), and every admitted channel that crossed
    /// any of those trunks fails over exactly as in
    /// [`MultiHopAdmission::fail_trunk`].  The reported `link` is the
    /// degenerate `(switch, switch)` pair.
    pub fn fail_switch(&mut self, switch: SwitchId) -> RtResult<FailoverReport> {
        let cut = self.topology.fail_switch(switch)?;
        Ok(self.fail_over(&cut, (switch, switch)))
    }

    /// The shared fail-over engine: given the trunks that just died (the
    /// topology is already degraded), release every channel crossing any of
    /// them and re-admit each over the surviving candidate routes.
    fn fail_over(
        &mut self,
        cut: &[(SwitchId, SwitchId)],
        link: (SwitchId, SwitchId),
    ) -> FailoverReport {
        let crosses = |c: &MultiHopChannel| {
            c.path.iter().any(|l| {
                matches!(l, HopLink::Trunk { from: f, to: t }
                    if cut
                        .iter()
                        .any(|&(a, b)| (*f == a && *t == b) || (*f == b && *t == a)))
            })
        };
        let (from, to) = link;
        let affected: Vec<u16> = self
            .channels
            .iter()
            .filter(|(_, c)| crosses(c))
            .map(|(&id, _)| id)
            .collect();
        let unaffected = self.channels.len() - affected.len();
        let mut report = FailoverReport {
            link: (from, to),
            rerouted: Vec::new(),
            dropped: Vec::new(),
            unaffected,
        };
        // Release *every* affected channel before re-admitting any: a
        // one-at-a-time release would feasibility-test early re-admissions
        // against the stale reservations of later affected channels and
        // drop channels the surviving fabric could actually carry.
        let released: Vec<MultiHopChannel> = affected
            .into_iter()
            .map(|raw_id| {
                self.release(ChannelId::new(raw_id))
                    .expect("affected ids come from the live channel table")
            })
            .collect();
        for old in released {
            let candidates = self
                .router
                .routes(&self.topology, old.source, old.destination)
                .unwrap_or_default();
            let mut readmitted = false;
            for path in candidates {
                if let Ok(deadlines) = self.try_admit(&old.spec, &path) {
                    let channel = self
                        .commit(
                            old.id,
                            old.source,
                            old.destination,
                            old.spec,
                            path,
                            deadlines,
                        )
                        .expect("deadlines were just validated by try_admit");
                    report.rerouted.push(channel.to_route());
                    self.rerouted += 1;
                    readmitted = true;
                    break;
                }
            }
            if !readmitted {
                report.dropped.push(old.to_route());
                self.dropped_on_failure += 1;
            }
        }
        report
    }

    /// Repair a previously failed trunk and *re-optimise*: every admitted
    /// channel whose current path differs from the router's primary route on
    /// the repaired graph is released and re-admitted onto that primary
    /// route (same channel id, fresh deadline split), so capacity freed by
    /// the repair flows back to the shortest paths instead of staying
    /// stranded on fail-over detours.  Channels are moved one at a time and
    /// a channel whose primary route cannot admit it is restored onto its
    /// detour with its exact previous reservation — a repair never drops a
    /// channel.  The report's `rerouted` lists the channels moved back
    /// (with their new routes); `dropped` is always empty.
    pub fn repair_trunk(&mut self, from: SwitchId, to: SwitchId) -> RtResult<FailoverReport> {
        self.topology.repair_trunk(from, to)?;
        Ok(self.reoptimize((from, to)))
    }

    /// The repair-side counterpart of [`MultiHopAdmission::fail_over`]:
    /// migrate detoured channels back onto their primary routes, never
    /// dropping any.
    fn reoptimize(&mut self, link: (SwitchId, SwitchId)) -> FailoverReport {
        let mut report = FailoverReport {
            link,
            rerouted: Vec::new(),
            dropped: Vec::new(),
            unaffected: 0,
        };
        let ids: Vec<u16> = self.channels.keys().copied().collect();
        for raw_id in ids {
            let channel = &self.channels[&raw_id];
            let primary =
                match self
                    .router
                    .route(&self.topology, channel.source, channel.destination)
                {
                    Ok(route) => route,
                    Err(_) => {
                        report.unaffected += 1;
                        continue;
                    }
                };
            if primary == channel.path {
                report.unaffected += 1;
                continue;
            }
            // Release-then-readmit, one channel at a time: freeing only this
            // channel's capacity means the fallback below can always restore
            // its exact previous reservation, so re-optimisation is safe.
            let old = self
                .release(ChannelId::new(raw_id))
                .expect("ids come from the live channel table");
            match self.try_admit(&old.spec, &primary) {
                Ok(deadlines) => {
                    let moved = self
                        .commit(
                            old.id,
                            old.source,
                            old.destination,
                            old.spec,
                            primary,
                            deadlines,
                        )
                        .expect("deadlines were just validated by try_admit");
                    report.rerouted.push(moved.to_route());
                    self.rerouted += 1;
                }
                Err(_) => {
                    // The primary route cannot carry it: put it back on its
                    // detour with the deadline split it already held (the
                    // ledger state this restores was feasible a moment ago).
                    self.commit(
                        old.id,
                        old.source,
                        old.destination,
                        old.spec,
                        old.path.clone(),
                        old.link_deadlines.clone(),
                    )
                    .expect("restoring the released reservation cannot fail");
                    report.unaffected += 1;
                }
            }
        }
        report
    }

    /// Tear down a channel, releasing its capacity on every link of its
    /// path.
    pub fn release(&mut self, id: ChannelId) -> RtResult<MultiHopChannel> {
        let channel = self
            .channels
            .remove(&id.get())
            .ok_or(RtError::UnknownChannel(id))?;
        self.ledger.release_key(ReservationKey::channel(id));
        Ok(channel)
    }
}

/// A reservation waiting for the destination node's confirmation.
#[derive(Debug, Clone, Copy)]
struct PendingFabricReservation {
    source: NodeId,
    request_id: ConnectionRequestId,
}

/// The managing switch's RT channel management software for a multi-switch
/// fabric: the topology-aware counterpart of
/// [`crate::manager::SwitchChannelManager`].
///
/// The handshake is the same three-party protocol as on the single-switch
/// star — RequestFrame in, admission, forwarded request, ResponseFrame back
/// — except that admission runs the per-link EDF feasibility test on *every*
/// link of the route (uplink, trunks, downlink) with the end-to-end deadline
/// partitioned by a [`MultiHopDps`].  Like its star counterpart it is a pure
/// state machine: frames in, [`SwitchAction`]s out; the caller puts the
/// actions on the wire.
#[derive(Debug)]
pub struct FabricChannelManager {
    admission: MultiHopAdmission,
    /// Reservations keyed by the assigned channel id, awaiting the
    /// destination's ResponseFrame.
    pending: HashMap<ChannelId, PendingFabricReservation>,
    switch_mac: MacAddr,
}

impl FabricChannelManager {
    /// Wrap a multi-hop admission controller.
    pub fn new(admission: MultiHopAdmission) -> Self {
        FabricChannelManager {
            admission,
            pending: HashMap::new(),
            switch_mac: MacAddr::for_switch(),
        }
    }

    /// The admission controller (and through it the topology).
    pub fn admission(&self) -> &MultiHopAdmission {
        &self.admission
    }

    /// Number of reservations still waiting for the destination's answer.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Established (confirmed or pending) channel count, for reporting.
    pub fn channel_count(&self) -> usize {
        self.admission.channel_count()
    }

    /// Look up an admitted channel (its route and per-link deadlines).
    pub fn channel(&self, id: ChannelId) -> Option<&MultiHopChannel> {
        self.admission.channel(id)
    }

    /// Handle a RequestFrame received from a source node.
    pub fn handle_request(&mut self, frame: &RequestFrame) -> RtResult<Vec<SwitchAction>> {
        let request = ChannelRequest::from_frame(frame)?;
        let reject = |mac: MacAddr| SwitchAction::SendResponse {
            to: request.source,
            frame: ResponseFrame {
                rt_channel_id: None,
                switch_mac: mac,
                verdict: ResponseVerdict::Rejected,
                connection_request_id: request.request_id,
            },
        };
        match self
            .admission
            .request(request.source, request.destination, request.spec)?
        {
            Ok(channel) => {
                // Tentative reservation: capacity is held on every link of
                // the path, but the channel only becomes usable once the
                // destination accepts.
                self.pending.insert(
                    channel.id,
                    PendingFabricReservation {
                        source: request.source,
                        request_id: request.request_id,
                    },
                );
                let mut annotated = *frame;
                annotated.rt_channel_id = Some(channel.id);
                Ok(vec![SwitchAction::ForwardRequest {
                    to: request.destination,
                    frame: annotated,
                }])
            }
            Err((_link, _reason)) => Ok(vec![reject(self.switch_mac)]),
        }
    }

    /// Handle a ResponseFrame received from a destination node.
    pub fn handle_response(&mut self, frame: &ResponseFrame) -> RtResult<Vec<SwitchAction>> {
        let channel_id = frame.rt_channel_id.ok_or_else(|| {
            RtError::ProtocolViolation("destination response carries no RT channel id".into())
        })?;
        let reservation = self.pending.remove(&channel_id).ok_or_else(|| {
            RtError::UnknownRequest(format!("no pending reservation for channel {channel_id}"))
        })?;
        if !frame.verdict.is_accepted() {
            // Destination refused: roll the whole-path reservation back.
            self.admission.release(channel_id)?;
        }
        Ok(vec![SwitchAction::SendResponse {
            to: reservation.source,
            frame: ResponseFrame {
                rt_channel_id: Some(channel_id),
                switch_mac: self.switch_mac,
                verdict: frame.verdict,
                connection_request_id: reservation.request_id,
            },
        }])
    }

    /// Handle a channel tear-down: release the reserved capacity on every
    /// link of the path.
    pub fn handle_teardown(&mut self, channel: ChannelId) -> RtResult<MultiHopChannel> {
        self.admission.release(channel)
    }
}

impl ChannelManager for FabricChannelManager {
    fn handle_request(&mut self, frame: &RequestFrame) -> RtResult<Vec<SwitchAction>> {
        FabricChannelManager::handle_request(self, frame)
    }

    fn handle_response(&mut self, frame: &ResponseFrame) -> RtResult<Vec<SwitchAction>> {
        FabricChannelManager::handle_response(self, frame)
    }

    fn handle_teardown(&mut self, channel: ChannelId) -> RtResult<ReleasedChannel> {
        let released = FabricChannelManager::handle_teardown(self, channel)?;
        Ok(ReleasedChannel {
            id: released.id,
            destination: released.destination,
        })
    }

    fn channel_count(&self) -> usize {
        FabricChannelManager::channel_count(self)
    }

    fn pending_count(&self) -> usize {
        FabricChannelManager::pending_count(self)
    }

    fn channel_ids(&self) -> Vec<ChannelId> {
        self.admission.channels().map(|c| c.id).collect()
    }

    fn channel_route(&self, id: ChannelId) -> Option<ChannelRoute> {
        Some(self.admission.channel(id)?.to_route())
    }

    fn link_load(&self, link: HopLink) -> usize {
        self.admission.link_load(link)
    }

    fn schedules_hops(&self) -> bool {
        true
    }

    fn handle_link_failure(&mut self, from: SwitchId, to: SwitchId) -> RtResult<FailoverReport> {
        let report = self.admission.fail_trunk(from, to)?;
        // A dropped channel can no longer complete a pending handshake.
        for dropped in &report.dropped {
            self.pending.remove(&dropped.id);
        }
        Ok(report)
    }

    fn handle_link_repair(&mut self, from: SwitchId, to: SwitchId) -> RtResult<FailoverReport> {
        self.admission.repair_trunk(from, to)
    }

    fn handle_switch_failure(&mut self, switch: SwitchId) -> RtResult<FailoverReport> {
        let report = self.admission.fail_switch(switch)?;
        for dropped in &report.dropped {
            self.pending.remove(&dropped.id);
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two access switches joined by one trunk; `m` masters on switch 0 and
    /// `s` slaves on switch 1.
    fn dumbbell(m: u32, s: u32) -> Topology {
        let mut t = Topology::new();
        t.add_switch(SwitchId::new(0));
        t.add_switch(SwitchId::new(1));
        t.add_trunk(SwitchId::new(0), SwitchId::new(1)).unwrap();
        for i in 0..m {
            t.attach_node(NodeId::new(i), SwitchId::new(0)).unwrap();
        }
        for i in 0..s {
            t.attach_node(NodeId::new(m + i), SwitchId::new(1)).unwrap();
        }
        t
    }

    #[test]
    fn topology_construction_and_validation() {
        let mut t = Topology::new();
        t.add_switch(SwitchId::new(0));
        t.add_switch(SwitchId::new(1));
        t.add_switch(SwitchId::new(2));
        assert!(t.attach_node(NodeId::new(0), SwitchId::new(9)).is_err());
        t.attach_node(NodeId::new(0), SwitchId::new(0)).unwrap();
        assert!(t.attach_node(NodeId::new(0), SwitchId::new(1)).is_err());
        t.add_trunk(SwitchId::new(0), SwitchId::new(1)).unwrap();
        t.add_trunk(SwitchId::new(1), SwitchId::new(2)).unwrap();
        // Self-loop, unknown switch and duplicate trunk rejected; a cycle
        // is legal (meshes are a router concern, not a topology one).
        assert!(t.add_trunk(SwitchId::new(0), SwitchId::new(0)).is_err());
        assert!(t.add_trunk(SwitchId::new(0), SwitchId::new(7)).is_err());
        assert!(t.add_trunk(SwitchId::new(1), SwitchId::new(0)).is_err());
        t.add_trunk(SwitchId::new(0), SwitchId::new(2)).unwrap();
        assert!(!t.is_tree());
        assert_eq!(t.switch_count(), 3);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.switch_of(NodeId::new(0)), Some(SwitchId::new(0)));
    }

    #[test]
    fn switch_paths_and_routes() {
        let t = dumbbell(2, 2);
        assert_eq!(
            t.switch_path(SwitchId::new(0), SwitchId::new(1)),
            Some(vec![SwitchId::new(0), SwitchId::new(1)])
        );
        assert_eq!(
            t.switch_path(SwitchId::new(0), SwitchId::new(0)),
            Some(vec![SwitchId::new(0)])
        );
        assert_eq!(t.switch_path(SwitchId::new(0), SwitchId::new(9)), None);

        // Cross-switch route: uplink, trunk, downlink.
        let route = t.route(NodeId::new(0), NodeId::new(2)).unwrap();
        assert_eq!(
            route,
            vec![
                HopLink::Uplink(NodeId::new(0)),
                HopLink::Trunk {
                    from: SwitchId::new(0),
                    to: SwitchId::new(1)
                },
                HopLink::Downlink(NodeId::new(2)),
            ]
        );
        // Same-switch route: no trunk hop.
        let route = t.route(NodeId::new(0), NodeId::new(1)).unwrap();
        assert_eq!(route.len(), 2);
        assert!(t.route(NodeId::new(0), NodeId::new(0)).is_err());
        assert!(t.route(NodeId::new(0), NodeId::new(99)).is_err());
    }

    #[test]
    fn route_through_a_chain_of_switches() {
        // sw0 - sw1 - sw2 - sw3, node 0 on sw0 and node 1 on sw3.
        let mut t = Topology::new();
        for i in 0..4 {
            t.add_switch(SwitchId::new(i));
        }
        for i in 0..3 {
            t.add_trunk(SwitchId::new(i), SwitchId::new(i + 1)).unwrap();
        }
        t.attach_node(NodeId::new(0), SwitchId::new(0)).unwrap();
        t.attach_node(NodeId::new(1), SwitchId::new(3)).unwrap();
        let route = t.route(NodeId::new(0), NodeId::new(1)).unwrap();
        assert_eq!(route.len(), 5); // uplink + 3 trunks + downlink
        assert!(matches!(route[2], HopLink::Trunk { from, to }
            if from == SwitchId::new(1) && to == SwitchId::new(2)));
    }

    #[test]
    fn symmetric_partition_splits_evenly() {
        let spec = RtChannelSpec::paper_default(); // C=3, d=40
        let t = dumbbell(1, 1);
        let path = t.route(NodeId::new(0), NodeId::new(1)).unwrap();
        // Same-switch path would be 2 hops; cross-switch is 3.
        let parts = MultiHopDps::Symmetric
            .partition(&spec, &path, &vec![0; path.len()])
            .unwrap();
        assert_eq!(parts.iter().map(|s| s.get()).sum::<u64>(), 40);
        // Even split over 3 hops: 13/13/14 (in some order), all >= C.
        assert!(parts.iter().all(|&p| p >= Slots::new(3)));
        let max = parts.iter().max().unwrap().get();
        let min = parts.iter().min().unwrap().get();
        assert!(max - min <= 1);
    }

    #[test]
    fn asymmetric_partition_favours_loaded_links() {
        let spec = RtChannelSpec::paper_default();
        let path = vec![
            HopLink::Uplink(NodeId::new(0)),
            HopLink::Trunk {
                from: SwitchId::new(0),
                to: SwitchId::new(1),
            },
            HopLink::Downlink(NodeId::new(5)),
        ];
        // The trunk is much more loaded than the access links.
        let parts = MultiHopDps::Asymmetric
            .partition(&spec, &path, &[1, 20, 1])
            .unwrap();
        assert_eq!(parts.iter().map(|s| s.get()).sum::<u64>(), 40);
        assert!(parts[1] > parts[0]);
        assert!(parts[1] > parts[2]);
        assert!(parts.iter().all(|&p| p >= spec.capacity));
    }

    #[test]
    fn partition_rejects_too_many_hops_for_the_deadline() {
        // d = 2C only allows 2 hops.
        let spec = RtChannelSpec::new(Slots::new(100), Slots::new(5), Slots::new(10)).unwrap();
        let path = vec![
            HopLink::Uplink(NodeId::new(0)),
            HopLink::Trunk {
                from: SwitchId::new(0),
                to: SwitchId::new(1),
            },
            HopLink::Downlink(NodeId::new(1)),
        ];
        assert!(MultiHopDps::Symmetric
            .partition(&spec, &path, &[0, 0, 0])
            .is_err());
    }

    #[test]
    fn trunk_becomes_the_bottleneck_and_asymmetric_dps_relieves_it() {
        // 6 masters on switch 0 each talking to its own slave on switch 1:
        // every channel crosses the single trunk, which becomes the
        // bottleneck link.  The asymmetric scheme hands the trunk a larger
        // share of each deadline and therefore admits more channels.
        let spec = RtChannelSpec::paper_default();
        let run = |dps: MultiHopDps| -> u64 {
            let mut admission = MultiHopAdmission::new(dumbbell(6, 6), dps);
            let mut accepted = 0;
            for round in 0..6u32 {
                for m in 0..6u32 {
                    let source = NodeId::new(m);
                    let destination = NodeId::new(6 + ((m + round) % 6));
                    if admission
                        .request(source, destination, spec)
                        .unwrap()
                        .is_ok()
                    {
                        accepted += 1;
                    }
                }
            }
            accepted
        };
        let symmetric = run(MultiHopDps::Symmetric);
        let asymmetric = run(MultiHopDps::Asymmetric);
        assert!(
            asymmetric >= symmetric,
            "asymmetric ({asymmetric}) must not trail symmetric ({symmetric})"
        );
        // With d=40 over 3 hops the trunk gets ~13 slots symmetric -> 4
        // channels fit (4*3=12<=13); asymmetric grows the trunk share as its
        // load rises.
        assert!(symmetric >= 4);
        assert!(asymmetric > 4);
    }

    #[test]
    fn admission_commits_and_releases_capacity_on_every_hop() {
        let spec = RtChannelSpec::paper_default();
        let mut admission = MultiHopAdmission::new(dumbbell(2, 2), MultiHopDps::Asymmetric);
        let trunk = HopLink::Trunk {
            from: SwitchId::new(0),
            to: SwitchId::new(1),
        };
        let channel = admission
            .request(NodeId::new(0), NodeId::new(2), spec)
            .unwrap()
            .unwrap();
        assert_eq!(channel.path.len(), 3);
        assert_eq!(admission.link_load(HopLink::Uplink(NodeId::new(0))), 1);
        assert_eq!(admission.link_load(trunk), 1);
        assert_eq!(admission.link_load(HopLink::Downlink(NodeId::new(2))), 1);
        assert_eq!(admission.channel_count(), 1);
        assert!(admission.channel(channel.id).is_some());
        assert_eq!(admission.loaded_links().count(), 3);

        let released = admission.release(channel.id).unwrap();
        assert_eq!(released.id, channel.id);
        assert_eq!(admission.link_load(trunk), 0);
        assert_eq!(admission.channel_count(), 0);
        assert!(admission.release(channel.id).is_err());
    }

    #[test]
    fn same_switch_channels_do_not_consume_trunk_capacity() {
        let spec = RtChannelSpec::paper_default();
        let mut admission = MultiHopAdmission::new(dumbbell(3, 3), MultiHopDps::Symmetric);
        let trunk = HopLink::Trunk {
            from: SwitchId::new(0),
            to: SwitchId::new(1),
        };
        // node0 -> node1 both live on switch 0.
        let channel = admission
            .request(NodeId::new(0), NodeId::new(1), spec)
            .unwrap()
            .unwrap();
        assert_eq!(channel.path.len(), 2);
        assert_eq!(admission.link_load(trunk), 0);
        // And the split is the single-switch SDPS: 20/20.
        assert_eq!(channel.link_deadlines, vec![Slots::new(20), Slots::new(20)]);
    }

    #[test]
    fn rejections_identify_the_bottleneck_link() {
        let spec = RtChannelSpec::paper_default();
        let mut admission = MultiHopAdmission::new(dumbbell(8, 8), MultiHopDps::Symmetric);
        let mut last_rejection = None;
        for m in 0..8u32 {
            for round in 0..3u32 {
                let result = admission
                    .request(NodeId::new(m), NodeId::new(8 + ((m + round) % 8)), spec)
                    .unwrap();
                if let Err((link, _reason)) = result {
                    last_rejection = link;
                }
            }
        }
        // With 24 cross-trunk requests the trunk saturates first (13 slots
        // symmetric share -> 4 channels), so rejections blame the trunk.
        assert_eq!(
            last_rejection,
            Some(HopLink::Trunk {
                from: SwitchId::new(0),
                to: SwitchId::new(1)
            })
        );
        assert!(admission.rejected_count() > 0);
        assert!(admission.accepted_count() > 0);
    }

    // --- fail-over ---------------------------------------------------------

    #[test]
    fn fail_trunk_reroutes_around_a_ring() {
        let spec = RtChannelSpec::paper_default();
        let mut admission = MultiHopAdmission::new(Topology::ring(4, 1), MultiHopDps::Symmetric);
        // node 0 (sw0) -> node 3 (sw3): the closing trunk, 3 hops.
        let affected = admission
            .request(NodeId::new(0), NodeId::new(3), spec)
            .unwrap()
            .unwrap();
        assert_eq!(affected.path.len(), 3);
        // node 1 (sw1) -> node 2 (sw2): off the closing trunk.
        let untouched = admission
            .request(NodeId::new(1), NodeId::new(2), spec)
            .unwrap()
            .unwrap();
        let untouched_before = admission.channel(untouched.id).unwrap().clone();

        let report = admission
            .fail_trunk(SwitchId::new(3), SwitchId::new(0))
            .unwrap();
        assert_eq!(report.link, (SwitchId::new(3), SwitchId::new(0)));
        assert_eq!(report.rerouted.len(), 1);
        assert_eq!(report.dropped.len(), 0);
        assert_eq!(report.unaffected, 1);
        assert_eq!(report.affected(), 1);
        // Same id, new 5-hop route the long way around.
        let rerouted = &report.rerouted[0];
        assert_eq!(rerouted.id, affected.id);
        assert_eq!(rerouted.path.len(), 5);
        assert_eq!(
            rerouted.link_deadlines.iter().map(|s| s.get()).sum::<u64>(),
            spec.deadline.get()
        );
        // Capacity follows the channel: the long-way trunks now carry it.
        assert_eq!(
            admission.link_load(HopLink::Trunk {
                from: SwitchId::new(0),
                to: SwitchId::new(1)
            }),
            1
        );
        // The untouched channel is byte-for-byte identical.
        assert_eq!(admission.channel(untouched.id).unwrap(), &untouched_before);
        assert_eq!(admission.rerouted_count(), 1);
        assert_eq!(admission.failure_dropped_count(), 0);

        // Repair restores the trunk AND re-optimises: the detoured channel
        // migrates back onto its 3-hop primary route, id preserved.
        let repair = admission
            .repair_trunk(SwitchId::new(0), SwitchId::new(3))
            .unwrap();
        assert_eq!(repair.rerouted.len(), 1);
        assert_eq!(repair.rerouted[0].id, affected.id);
        assert_eq!(repair.rerouted[0].path.len(), 3);
        assert!(repair.dropped.is_empty(), "a repair never drops a channel");
        assert_eq!(admission.channel(affected.id).unwrap().path.len(), 3);
        // The detour trunks no longer carry it.
        assert_eq!(
            admission.link_load(HopLink::Trunk {
                from: SwitchId::new(0),
                to: SwitchId::new(1)
            }),
            0
        );
        let fresh = admission
            .request(NodeId::new(0), NodeId::new(3), spec)
            .unwrap()
            .unwrap();
        assert_eq!(fresh.path.len(), 3, "new requests use the repaired trunk");
    }

    #[test]
    fn fail_trunk_drops_channels_when_the_fabric_splits() {
        let spec = RtChannelSpec::paper_default();
        let mut admission = MultiHopAdmission::new(dumbbell(1, 1), MultiHopDps::Symmetric);
        let channel = admission
            .request(NodeId::new(0), NodeId::new(1), spec)
            .unwrap()
            .unwrap();
        let report = admission
            .fail_trunk(SwitchId::new(0), SwitchId::new(1))
            .unwrap();
        assert_eq!(report.rerouted.len(), 0);
        assert_eq!(report.dropped.len(), 1);
        assert_eq!(report.dropped[0].id, channel.id);
        assert_eq!(admission.channel_count(), 0, "the dropped channel is gone");
        assert_eq!(
            admission.link_load(HopLink::Uplink(NodeId::new(0))),
            0,
            "released on every hop"
        );
        assert_eq!(admission.failure_dropped_count(), 1);
        // Failing a non-existent trunk is an error, not a silent no-op.
        assert!(admission
            .fail_trunk(SwitchId::new(0), SwitchId::new(1))
            .is_err());
    }

    #[test]
    fn k_shortest_fallback_admits_past_a_saturated_primary() {
        let spec = RtChannelSpec::paper_default();
        // Ring of 4 with 12 nodes per switch: masters on sw0 talk to slaves
        // on sw1 over the direct trunk until it saturates; the k-shortest
        // router then detours the long way around instead of rejecting.
        let run = |router: Arc<dyn Router>| -> u64 {
            let mut admission = MultiHopAdmission::with_router(
                Topology::ring(4, 12),
                MultiHopDps::Symmetric,
                router,
            );
            for i in 0..10u32 {
                let _ = admission
                    .request(NodeId::new(i), NodeId::new(12 + i), spec)
                    .unwrap();
            }
            admission.accepted_count()
        };
        let shortest_only = run(Arc::new(rt_types::ShortestPathRouter::new()));
        let with_fallback = run(Arc::new(rt_types::KShortestRouter::new(3)));
        assert!(
            with_fallback > shortest_only,
            "k-shortest fallback ({with_fallback}) must beat single-path ({shortest_only})"
        );
    }

    // --- FabricChannelManager (handshake over the fabric) -----------------

    fn fabric_request(src: u32, dst: u32, req_id: u8) -> RequestFrame {
        ChannelRequest {
            source: NodeId::new(src),
            destination: NodeId::new(dst),
            spec: RtChannelSpec::paper_default(),
            request_id: ConnectionRequestId::new(req_id),
        }
        .to_frame()
    }

    fn destination_accepts(frame: &RequestFrame) -> ResponseFrame {
        ResponseFrame {
            rt_channel_id: frame.rt_channel_id,
            switch_mac: MacAddr::for_switch(),
            verdict: ResponseVerdict::Accepted,
            connection_request_id: frame.connection_request_id,
        }
    }

    #[test]
    fn fabric_manager_full_accept_handshake() {
        let mut m = FabricChannelManager::new(MultiHopAdmission::new(
            dumbbell(2, 2),
            MultiHopDps::Asymmetric,
        ));
        let actions = m.handle_request(&fabric_request(0, 2, 7)).unwrap();
        let forwarded = match &actions[0] {
            SwitchAction::ForwardRequest { to, frame } => {
                assert_eq!(*to, NodeId::new(2));
                assert!(frame.rt_channel_id.is_some());
                *frame
            }
            other => panic!("expected ForwardRequest, got {other:?}"),
        };
        assert_eq!(m.pending_count(), 1);
        assert_eq!(m.channel_count(), 1);
        // The committed channel crosses all three links.
        let channel = m.channel(forwarded.rt_channel_id.unwrap()).unwrap();
        assert_eq!(channel.path.len(), 3);

        let actions = m.handle_response(&destination_accepts(&forwarded)).unwrap();
        assert_eq!(m.pending_count(), 0);
        match &actions[0] {
            SwitchAction::SendResponse { to, frame } => {
                assert_eq!(*to, NodeId::new(0));
                assert!(frame.verdict.is_accepted());
                assert_eq!(frame.connection_request_id, ConnectionRequestId::new(7));
            }
            other => panic!("expected SendResponse, got {other:?}"),
        }
    }

    #[test]
    fn fabric_manager_rejection_answers_source_directly() {
        // Saturate the trunk, then expect a direct rejection.
        let mut m = FabricChannelManager::new(MultiHopAdmission::new(
            dumbbell(8, 8),
            MultiHopDps::Symmetric,
        ));
        let mut rejected = false;
        for i in 0..24u8 {
            let f = fabric_request(u32::from(i % 8), 8 + u32::from(i % 8), i);
            let actions = m.handle_request(&f).unwrap();
            match &actions[0] {
                SwitchAction::ForwardRequest { frame, .. } => {
                    let fwd = *frame;
                    m.handle_response(&destination_accepts(&fwd)).unwrap();
                }
                SwitchAction::SendResponse { to, frame } => {
                    assert_eq!(*to, NodeId::new(u32::from(i % 8)));
                    assert!(!frame.verdict.is_accepted());
                    assert_eq!(frame.rt_channel_id, None);
                    rejected = true;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(rejected, "the trunk should have saturated");
    }

    #[test]
    fn fabric_manager_destination_rejection_rolls_back_every_hop() {
        let mut m = FabricChannelManager::new(MultiHopAdmission::new(
            dumbbell(2, 2),
            MultiHopDps::Symmetric,
        ));
        let trunk = HopLink::Trunk {
            from: SwitchId::new(0),
            to: SwitchId::new(1),
        };
        let actions = m.handle_request(&fabric_request(0, 2, 1)).unwrap();
        let fwd = match &actions[0] {
            SwitchAction::ForwardRequest { frame, .. } => *frame,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(m.admission().link_load(trunk), 1);
        let mut reject = destination_accepts(&fwd);
        reject.verdict = ResponseVerdict::Rejected;
        m.handle_response(&reject).unwrap();
        assert_eq!(m.channel_count(), 0);
        assert_eq!(m.admission().link_load(trunk), 0);

        // Protocol violations are errors.
        assert!(m.handle_response(&reject).is_err());
        let mut no_id = reject;
        no_id.rt_channel_id = None;
        assert!(m.handle_response(&no_id).is_err());
    }

    #[test]
    fn fabric_manager_teardown_releases_the_path() {
        let mut m = FabricChannelManager::new(MultiHopAdmission::new(
            dumbbell(2, 2),
            MultiHopDps::Asymmetric,
        ));
        let actions = m.handle_request(&fabric_request(0, 2, 3)).unwrap();
        let fwd = match &actions[0] {
            SwitchAction::ForwardRequest { frame, .. } => *frame,
            other => panic!("unexpected {other:?}"),
        };
        m.handle_response(&destination_accepts(&fwd)).unwrap();
        let id = fwd.rt_channel_id.unwrap();
        let released = m.handle_teardown(id).unwrap();
        assert_eq!(released.id, id);
        assert_eq!(m.channel_count(), 0);
        assert!(m.handle_teardown(id).is_err());
    }
}
