//! Shared definitions for the RT-channel establishment handshake
//! (§18.2.2, Figures 18.3/18.4).
//!
//! The handshake involves three parties:
//!
//! 1. the **source node** sends a RequestFrame to the switch,
//! 2. the **switch** runs admission control; if feasible it writes the newly
//!    assigned network-unique channel ID into the frame and forwards it to
//!    the destination node, otherwise it answers the source directly with a
//!    rejecting ResponseFrame,
//! 3. the **destination node** answers with a ResponseFrame (accept/reject)
//!    to the switch, which records the verdict and forwards the response to
//!    the source.
//!
//! This module holds the small pieces shared by the node-side
//! ([`crate::rtlayer`]) and switch-side ([`crate::manager`]) state machines:
//! address ↔ node resolution for the simulated addressing plan and the
//! conversion between wire frames and the internal request representation.

use rt_frames::RequestFrame;
use rt_types::{ConnectionRequestId, MacAddr, NodeId, RtError, RtResult};

use crate::channel::{Endpoint, RtChannelSpec};

/// Resolve a simulated-plan MAC address (as produced by
/// [`MacAddr::for_node`]) back to its node id.
pub fn node_for_mac(mac: MacAddr) -> RtResult<NodeId> {
    let o = mac.octets();
    if mac == MacAddr::for_switch() {
        return Ok(NodeId::SWITCH);
    }
    if o[0] != 0x02 || o[1] != 0x00 {
        return Err(RtError::AddressParse(format!(
            "MAC {mac} is not part of the simulated addressing plan"
        )));
    }
    let id = u32::from_be_bytes([o[2], o[3], o[4], o[5]]);
    Ok(NodeId::new(id))
}

/// A channel request in internal form (decoded from a RequestFrame).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelRequest {
    /// Requesting (source) node.
    pub source: NodeId,
    /// Destination node.
    pub destination: NodeId,
    /// The requested traffic contract.
    pub spec: RtChannelSpec,
    /// The source-node-unique request id.
    pub request_id: ConnectionRequestId,
}

impl ChannelRequest {
    /// Decode a RequestFrame into internal form, resolving the MAC addresses
    /// of the requested channel's endpoints.
    pub fn from_frame(frame: &RequestFrame) -> RtResult<Self> {
        let source = node_for_mac(frame.src_mac)?;
        let destination = node_for_mac(frame.dst_mac)?;
        Ok(ChannelRequest {
            source,
            destination,
            spec: RtChannelSpec {
                period: frame.period,
                capacity: frame.capacity,
                deadline: frame.deadline,
            },
            request_id: frame.connection_request_id,
        })
    }

    /// Encode into a RequestFrame (channel id not yet assigned).
    pub fn to_frame(&self) -> RequestFrame {
        let src = Endpoint::for_node(self.source);
        let dst = Endpoint::for_node(self.destination);
        RequestFrame {
            src_mac: src.mac,
            dst_mac: dst.mac,
            src_ip: src.ip,
            dst_ip: dst.ip,
            period: self.spec.period,
            capacity: self.spec.capacity,
            deadline: self.spec.deadline,
            rt_channel_id: None,
            connection_request_id: self.request_id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_types::Slots;

    #[test]
    fn mac_resolution_round_trip() {
        for id in [0u32, 1, 42, 65_000, 1_000_000] {
            let node = NodeId::new(id);
            assert_eq!(node_for_mac(MacAddr::for_node(node)).unwrap(), node);
        }
        assert_eq!(node_for_mac(MacAddr::for_switch()).unwrap(), NodeId::SWITCH);
        assert!(node_for_mac(MacAddr::BROADCAST).is_err());
        assert!(node_for_mac(MacAddr::new([0x00, 0x11, 0x22, 0x33, 0x44, 0x55])).is_err());
    }

    #[test]
    fn request_round_trip_through_frame() {
        let req = ChannelRequest {
            source: NodeId::new(3),
            destination: NodeId::new(17),
            spec: RtChannelSpec::paper_default(),
            request_id: ConnectionRequestId::new(9),
        };
        let frame = req.to_frame();
        assert_eq!(frame.period, Slots::new(100));
        assert_eq!(frame.rt_channel_id, None);
        let back = ChannelRequest::from_frame(&frame).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn from_frame_rejects_unknown_addressing() {
        let mut frame = ChannelRequest {
            source: NodeId::new(1),
            destination: NodeId::new(2),
            spec: RtChannelSpec::paper_default(),
            request_id: ConnectionRequestId::new(1),
        }
        .to_frame();
        frame.src_mac = MacAddr::new([0xaa; 6]);
        assert!(ChannelRequest::from_frame(&frame).is_err());
    }
}
