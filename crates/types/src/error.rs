//! The shared error type for the switched real-time Ethernet stack.

use std::fmt;

use crate::ids::{ChannelId, LinkId, NodeId};

/// Result alias using [`RtError`].
pub type RtResult<T> = Result<T, RtError>;

/// Errors produced anywhere in the stack.
///
/// A single flat enum is used across the workspace so that errors can travel
/// between crates (frames → core → simulation) without conversion
/// boilerplate; the variants are grouped by subsystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtError {
    // --- address / parsing ------------------------------------------------
    /// A textual MAC or IPv4 address could not be parsed.
    AddressParse(String),
    /// A frame could not be decoded from its wire representation.
    FrameDecode(String),
    /// A frame could not be encoded (e.g. payload too large).
    FrameEncode(String),

    // --- channel specification -------------------------------------------
    /// An RT-channel parameter is invalid (zero period, zero capacity,
    /// deadline shorter than twice the capacity, ...).
    InvalidChannelSpec(String),
    /// A deadline partitioning produced per-link deadlines violating
    /// Eq. 18.8 / 18.9.
    InvalidPartition {
        /// Human-readable description of the violated condition.
        reason: String,
    },

    // --- admission control -------------------------------------------------
    /// The requested channel was rejected by admission control.
    ChannelRejected {
        /// The link whose feasibility test failed, if the rejection was
        /// link-specific.
        link: Option<LinkId>,
        /// Why the channel was rejected.
        reason: String,
    },
    /// An operation referenced a channel id that is not established.
    UnknownChannel(ChannelId),
    /// An operation referenced a node that is not part of the network.
    UnknownNode(NodeId),
    /// The switch ran out of network-unique channel ids.
    ChannelIdsExhausted,
    /// A node ran out of connection-request ids (more than 256 outstanding
    /// requests).
    RequestIdsExhausted,
    /// A response arrived for a connection request that is not outstanding.
    UnknownRequest(String),

    // --- protocol / simulation ---------------------------------------------
    /// A protocol state machine received a frame it cannot handle in its
    /// current state.
    ProtocolViolation(String),
    /// The simulator was asked to do something inconsistent (schedule an
    /// event in the past, attach two nodes to one port, ...).
    Simulation(String),
    /// A configuration value is out of range or inconsistent.
    Config(String),
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtError::AddressParse(m) => write!(f, "address parse error: {m}"),
            RtError::FrameDecode(m) => write!(f, "frame decode error: {m}"),
            RtError::FrameEncode(m) => write!(f, "frame encode error: {m}"),
            RtError::InvalidChannelSpec(m) => write!(f, "invalid RT channel spec: {m}"),
            RtError::InvalidPartition { reason } => {
                write!(f, "invalid deadline partition: {reason}")
            }
            RtError::ChannelRejected { link, reason } => match link {
                Some(l) => write!(f, "channel rejected on {l}: {reason}"),
                None => write!(f, "channel rejected: {reason}"),
            },
            RtError::UnknownChannel(id) => write!(f, "unknown RT channel {id}"),
            RtError::UnknownNode(id) => write!(f, "unknown node {id}"),
            RtError::ChannelIdsExhausted => write!(f, "no free RT channel ids"),
            RtError::RequestIdsExhausted => write!(f, "no free connection request ids"),
            RtError::UnknownRequest(m) => write!(f, "unknown connection request: {m}"),
            RtError::ProtocolViolation(m) => write!(f, "protocol violation: {m}"),
            RtError::Simulation(m) => write!(f, "simulation error: {m}"),
            RtError::Config(m) => write!(f, "configuration error: {m}"),
        }
    }
}

impl std::error::Error for RtError {}

impl RtError {
    /// `true` if this error represents an admission-control rejection rather
    /// than a programming or configuration mistake.
    pub fn is_rejection(&self) -> bool {
        matches!(self, RtError::ChannelRejected { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RtError::ChannelRejected {
            link: Some(LinkId::uplink(NodeId::new(2))),
            reason: "utilisation above 1".into(),
        };
        let s = e.to_string();
        assert!(s.contains("node2/uplink"));
        assert!(s.contains("utilisation"));

        let e = RtError::ChannelRejected {
            link: None,
            reason: "no path".into(),
        };
        assert!(e.to_string().contains("no path"));
    }

    #[test]
    fn rejection_classification() {
        assert!(RtError::ChannelRejected {
            link: None,
            reason: String::new()
        }
        .is_rejection());
        assert!(!RtError::ChannelIdsExhausted.is_rejection());
        assert!(!RtError::UnknownChannel(ChannelId::new(1)).is_rejection());
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(RtError::Config("bad".into()));
        assert!(e.to_string().contains("configuration"));
    }
}
