//! Dense index mapping for hot paths.
//!
//! The simulator processes millions of events per second, and every event
//! resolves a handful of entity ids (switches, nodes, ports).  Hash or tree
//! lookups per event dominate the run time long before the actual queueing
//! work does, so the hot paths key their tables by *contiguous indices*
//! instead: an [`IdIndex`] maps the raw `u32` ids of a fixed entity set
//! (assigned once at construction) onto `0..len`, after which every lookup
//! is one bounds-checked array access.
//!
//! Ids in this workspace are in practice small and contiguous (`0..n`), so
//! the default representation is a direct lookup vector.  Pathologically
//! sparse id sets (a node called `4_000_000_000`) would make that vector
//! huge, so construction falls back to binary search over the sorted ids
//! when the largest id is far beyond the entity count.

use std::fmt;

/// Sentinel for "no index" in packed `u32` tables.
pub const NO_INDEX: u32 = u32::MAX;

/// An immutable map from a fixed set of raw `u32` ids to contiguous indices
/// `0..len`, in ascending id order.
#[derive(Clone, Default)]
pub struct IdIndex {
    /// Sorted, deduplicated raw ids; the position in this vector *is* the
    /// dense index.
    ids: Vec<u32>,
    /// Direct raw-id → index table (`NO_INDEX` for absent ids), present
    /// unless the id space is too sparse to justify it.
    direct: Option<Vec<u32>>,
}

impl IdIndex {
    /// Build the index over `ids` (need not be sorted; duplicates collapse).
    pub fn new(ids: impl IntoIterator<Item = u32>) -> Self {
        let mut ids: Vec<u32> = ids.into_iter().collect();
        ids.sort_unstable();
        ids.dedup();
        let direct = match ids.last() {
            Some(&max) if (max as usize) < 4 * ids.len() + 1024 => {
                let mut table = vec![NO_INDEX; max as usize + 1];
                for (index, &id) in ids.iter().enumerate() {
                    table[id as usize] = index as u32;
                }
                Some(table)
            }
            _ => None,
        };
        IdIndex { ids, direct }
    }

    /// The dense index of `id`, or `None` if the id is not in the set.
    #[inline]
    pub fn get(&self, id: u32) -> Option<u32> {
        match &self.direct {
            Some(table) => match table.get(id as usize) {
                Some(&index) if index != NO_INDEX => Some(index),
                _ => None,
            },
            None => self.ids.binary_search(&id).ok().map(|i| i as u32),
        }
    }

    /// The raw id at dense index `index` (panics if out of range).
    #[inline]
    pub fn id_at(&self, index: u32) -> u32 {
        self.ids[index as usize]
    }

    /// Number of ids in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` if the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The raw ids in dense-index (ascending) order.
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }
}

impl fmt::Debug for IdIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IdIndex")
            .field("len", &self.ids.len())
            .field("direct", &self.direct.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_ids_use_the_direct_table() {
        let index = IdIndex::new(0..16u32);
        assert_eq!(index.len(), 16);
        for id in 0..16 {
            assert_eq!(index.get(id), Some(id));
            assert_eq!(index.id_at(id), id);
        }
        assert_eq!(index.get(16), None);
        assert_eq!(index.get(u32::MAX), None);
    }

    #[test]
    fn sparse_ids_fall_back_to_binary_search() {
        let index = IdIndex::new([7, 4_000_000_000, 3]);
        assert_eq!(index.len(), 3);
        assert_eq!(index.get(3), Some(0));
        assert_eq!(index.get(7), Some(1));
        assert_eq!(index.get(4_000_000_000), Some(2));
        assert_eq!(index.get(8), None);
        assert_eq!(index.id_at(2), 4_000_000_000);
    }

    #[test]
    fn duplicates_and_order_are_normalised() {
        let index = IdIndex::new([5, 1, 5, 3, 1]);
        assert_eq!(index.len(), 3);
        assert_eq!(index.ids(), &[1, 3, 5]);
        assert_eq!(index.get(5), Some(2));
    }

    #[test]
    fn empty_index() {
        let index = IdIndex::new(std::iter::empty());
        assert!(index.is_empty());
        assert_eq!(index.get(0), None);
    }
}
