//! Multi-switch network topologies.
//!
//! The paper analyses a single-switch star and names "networks consisting of
//! many interconnected switches" as future work.  A [`Topology`] describes
//! such a network: which switch every end node attaches to and which trunk
//! links connect the switches.  The switch graph must be a *tree* (checked
//! when trunks are added), so the path between any two switches is unique —
//! which keeps routing, the admission analysis and the simulator
//! deterministic.
//!
//! The types live here (rather than in the admission-control crate) because
//! both the analytical side (`rt-core`'s multi-hop admission) and the
//! data-plane side (`rt-netsim`'s fabric simulator) are driven by the same
//! topology: one [`HopLink`] is simultaneously a unit of EDF feasibility
//! analysis and a simulated output port.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use crate::error::{RtError, RtResult};
use crate::ids::NodeId;

/// Identifier of a switch in a multi-switch topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SwitchId(pub u32);

impl SwitchId {
    /// Construct a switch id.
    pub const fn new(id: u32) -> Self {
        SwitchId(id)
    }

    /// Raw value.
    pub const fn get(self) -> u32 {
        self.0
    }
}

impl fmt::Display for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sw{}", self.0)
    }
}

/// A directed link in a multi-switch network.
///
/// Every variant is one transmitter: a node's NIC on its uplink, a switch
/// output port on a downlink, or a switch trunk port towards a neighbouring
/// switch.  Full duplex makes the two directions of one cable independent
/// scheduling resources, so the trunk between `a` and `b` appears as two
/// distinct `Trunk` values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HopLink {
    /// End node → its access switch.
    Uplink(NodeId),
    /// Access switch → end node.
    Downlink(NodeId),
    /// Directed trunk between two switches.
    Trunk {
        /// Transmitting switch.
        from: SwitchId,
        /// Receiving switch.
        to: SwitchId,
    },
}

impl fmt::Display for HopLink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HopLink::Uplink(n) => write!(f, "{n}/uplink"),
            HopLink::Downlink(n) => write!(f, "{n}/downlink"),
            HopLink::Trunk { from, to } => write!(f, "{from}->{to}"),
        }
    }
}

/// A network of switches connected by trunk links, with end nodes attached.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    switches: BTreeSet<SwitchId>,
    attachments: BTreeMap<NodeId, SwitchId>,
    /// Adjacency of the (undirected) trunk graph.
    adjacency: BTreeMap<SwitchId, BTreeSet<SwitchId>>,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// The degenerate single-switch star of the paper's §18.1: one switch,
    /// the given nodes attached to it.
    pub fn star(switch: SwitchId, nodes: impl IntoIterator<Item = NodeId>) -> Self {
        let mut t = Topology::new();
        t.add_switch(switch);
        for n in nodes {
            t.attach_node(n, switch)
                .expect("attaching fresh nodes to a fresh switch cannot fail");
        }
        t
    }

    /// A line (chain) of `switches` switches with `nodes_per_switch` end
    /// nodes on each, node ids allocated switch-major.
    pub fn line(switches: u32, nodes_per_switch: u32) -> Self {
        let mut t = Topology::new();
        for s in 0..switches {
            t.add_switch(SwitchId::new(s));
        }
        for s in 1..switches {
            t.add_trunk(SwitchId::new(s - 1), SwitchId::new(s))
                .expect("a chain cannot form a cycle");
        }
        for s in 0..switches {
            for k in 0..nodes_per_switch {
                t.attach_node(NodeId::new(s * nodes_per_switch + k), SwitchId::new(s))
                    .expect("fresh node");
            }
        }
        t
    }

    /// Add a switch (idempotent).
    pub fn add_switch(&mut self, switch: SwitchId) {
        self.switches.insert(switch);
        self.adjacency.entry(switch).or_default();
    }

    /// Attach an end node to a switch.
    pub fn attach_node(&mut self, node: NodeId, switch: SwitchId) -> RtResult<()> {
        if !self.switches.contains(&switch) {
            return Err(RtError::Config(format!("unknown switch {switch}")));
        }
        if self.attachments.contains_key(&node) {
            return Err(RtError::Config(format!("{node} is already attached")));
        }
        self.attachments.insert(node, switch);
        Ok(())
    }

    /// Connect two switches with a full-duplex trunk link.  Rejects edges
    /// that would create a cycle (the switch graph must stay a tree) or
    /// self-loops.
    pub fn add_trunk(&mut self, a: SwitchId, b: SwitchId) -> RtResult<()> {
        if a == b {
            return Err(RtError::Config(
                "a trunk cannot connect a switch to itself".into(),
            ));
        }
        for s in [a, b] {
            if !self.switches.contains(&s) {
                return Err(RtError::Config(format!("unknown switch {s}")));
            }
        }
        if self.switch_path(a, b).is_some() {
            return Err(RtError::Config(format!(
                "trunk {a} <-> {b} would create a cycle in the switch graph"
            )));
        }
        self.adjacency.entry(a).or_default().insert(b);
        self.adjacency.entry(b).or_default().insert(a);
        Ok(())
    }

    /// Number of switches.
    pub fn switch_count(&self) -> usize {
        self.switches.len()
    }

    /// Number of attached end nodes.
    pub fn node_count(&self) -> usize {
        self.attachments.len()
    }

    /// The switches, in ascending id order.
    pub fn switches(&self) -> impl Iterator<Item = SwitchId> + '_ {
        self.switches.iter().copied()
    }

    /// The undirected trunk edges, each reported once with `from < to`.
    pub fn trunks(&self) -> impl Iterator<Item = (SwitchId, SwitchId)> + '_ {
        self.adjacency
            .iter()
            .flat_map(|(&a, nbrs)| nbrs.iter().map(move |&b| (a, b)))
            .filter(|(a, b)| a < b)
    }

    /// The switch an end node is attached to.
    pub fn switch_of(&self, node: NodeId) -> Option<SwitchId> {
        self.attachments.get(&node).copied()
    }

    /// The attached end nodes, in ascending id order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.attachments.keys().copied()
    }

    /// The end nodes attached to one switch, in ascending id order.
    pub fn nodes_of(&self, switch: SwitchId) -> impl Iterator<Item = NodeId> + '_ {
        self.attachments
            .iter()
            .filter(move |(_, &s)| s == switch)
            .map(|(&n, _)| n)
    }

    /// `true` if every switch can reach every other switch over trunks.
    pub fn is_connected(&self) -> bool {
        let Some(&first) = self.switches.iter().next() else {
            return true;
        };
        let mut seen = BTreeSet::from([first]);
        let mut queue = VecDeque::from([first]);
        while let Some(current) = queue.pop_front() {
            if let Some(neighbours) = self.adjacency.get(&current) {
                for &next in neighbours {
                    if seen.insert(next) {
                        queue.push_back(next);
                    }
                }
            }
        }
        seen.len() == self.switches.len()
    }

    /// The unique switch-to-switch path (inclusive of both endpoints), or
    /// `None` if the switches are not connected.
    pub fn switch_path(&self, from: SwitchId, to: SwitchId) -> Option<Vec<SwitchId>> {
        if from == to {
            return Some(vec![from]);
        }
        if !self.switches.contains(&from) || !self.switches.contains(&to) {
            return None;
        }
        let mut predecessor: BTreeMap<SwitchId, SwitchId> = BTreeMap::new();
        let mut queue = VecDeque::from([from]);
        let mut seen = BTreeSet::from([from]);
        while let Some(current) = queue.pop_front() {
            if current == to {
                break;
            }
            if let Some(neighbours) = self.adjacency.get(&current) {
                for &next in neighbours {
                    if seen.insert(next) {
                        predecessor.insert(next, current);
                        queue.push_back(next);
                    }
                }
            }
        }
        if !predecessor.contains_key(&to) {
            return None;
        }
        let mut path = vec![to];
        let mut current = to;
        while current != from {
            current = predecessor[&current];
            path.push(current);
        }
        path.reverse();
        Some(path)
    }

    /// The directed links an RT channel from `source` to `destination`
    /// traverses: uplink, trunk hops, downlink.
    pub fn route(&self, source: NodeId, destination: NodeId) -> RtResult<Vec<HopLink>> {
        if source == destination {
            return Err(RtError::InvalidChannelSpec(
                "source and destination must differ".into(),
            ));
        }
        let src_switch = self.switch_of(source).ok_or(RtError::UnknownNode(source))?;
        let dst_switch = self
            .switch_of(destination)
            .ok_or(RtError::UnknownNode(destination))?;
        let switch_path = self.switch_path(src_switch, dst_switch).ok_or_else(|| {
            RtError::Config(format!(
                "switches {src_switch} and {dst_switch} are not connected"
            ))
        })?;
        let mut links = Vec::with_capacity(switch_path.len() + 1);
        links.push(HopLink::Uplink(source));
        for pair in switch_path.windows(2) {
            links.push(HopLink::Trunk {
                from: pair[0],
                to: pair[1],
            });
        }
        links.push(HopLink::Downlink(destination));
        Ok(links)
    }

    /// The next-hop forwarding table of the trunk graph: for every ordered
    /// pair of distinct connected switches `(at, towards)`, the neighbour of
    /// `at` on the unique path towards `towards`.  Precomputed by the fabric
    /// simulator so per-frame forwarding is a map lookup.
    pub fn next_hop_table(&self) -> BTreeMap<(SwitchId, SwitchId), SwitchId> {
        let mut table = BTreeMap::new();
        for &from in &self.switches {
            // One BFS per source switch over the tree.
            let mut predecessor: BTreeMap<SwitchId, SwitchId> = BTreeMap::new();
            let mut seen = BTreeSet::from([from]);
            let mut queue = VecDeque::from([from]);
            while let Some(current) = queue.pop_front() {
                if let Some(neighbours) = self.adjacency.get(&current) {
                    for &next in neighbours {
                        if seen.insert(next) {
                            predecessor.insert(next, current);
                            queue.push_back(next);
                        }
                    }
                }
            }
            for &to in &self.switches {
                if to == from || !predecessor.contains_key(&to) {
                    continue;
                }
                // Walk back from `to` until the step out of `from`.
                let mut step = to;
                while predecessor[&step] != from {
                    step = predecessor[&step];
                }
                table.insert((from, to), step);
            }
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dumbbell(m: u32, s: u32) -> Topology {
        let mut t = Topology::new();
        t.add_switch(SwitchId::new(0));
        t.add_switch(SwitchId::new(1));
        t.add_trunk(SwitchId::new(0), SwitchId::new(1)).unwrap();
        for i in 0..m {
            t.attach_node(NodeId::new(i), SwitchId::new(0)).unwrap();
        }
        for i in 0..s {
            t.attach_node(NodeId::new(m + i), SwitchId::new(1)).unwrap();
        }
        t
    }

    #[test]
    fn construction_and_validation() {
        let mut t = Topology::new();
        t.add_switch(SwitchId::new(0));
        t.add_switch(SwitchId::new(1));
        t.add_switch(SwitchId::new(2));
        assert!(t.attach_node(NodeId::new(0), SwitchId::new(9)).is_err());
        t.attach_node(NodeId::new(0), SwitchId::new(0)).unwrap();
        assert!(t.attach_node(NodeId::new(0), SwitchId::new(1)).is_err());
        t.add_trunk(SwitchId::new(0), SwitchId::new(1)).unwrap();
        t.add_trunk(SwitchId::new(1), SwitchId::new(2)).unwrap();
        assert!(t.add_trunk(SwitchId::new(0), SwitchId::new(2)).is_err());
        assert!(t.add_trunk(SwitchId::new(0), SwitchId::new(0)).is_err());
        assert!(t.add_trunk(SwitchId::new(0), SwitchId::new(7)).is_err());
        assert_eq!(t.switch_count(), 3);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.switch_of(NodeId::new(0)), Some(SwitchId::new(0)));
        assert!(t.is_connected());
        assert_eq!(t.trunks().count(), 2);
    }

    #[test]
    fn star_and_line_builders() {
        let star = Topology::star(SwitchId::new(0), (0..4).map(NodeId::new));
        assert_eq!(star.switch_count(), 1);
        assert_eq!(star.node_count(), 4);
        assert_eq!(star.nodes_of(SwitchId::new(0)).count(), 4);

        let line = Topology::line(3, 2);
        assert_eq!(line.switch_count(), 3);
        assert_eq!(line.node_count(), 6);
        assert_eq!(line.switch_of(NodeId::new(5)), Some(SwitchId::new(2)));
        assert!(line.is_connected());
        // End-to-end route: uplink + 2 trunks + downlink.
        let route = line.route(NodeId::new(0), NodeId::new(5)).unwrap();
        assert_eq!(route.len(), 4);
    }

    #[test]
    fn switch_paths_and_routes() {
        let t = dumbbell(2, 2);
        assert_eq!(
            t.switch_path(SwitchId::new(0), SwitchId::new(1)),
            Some(vec![SwitchId::new(0), SwitchId::new(1)])
        );
        assert_eq!(
            t.switch_path(SwitchId::new(0), SwitchId::new(0)),
            Some(vec![SwitchId::new(0)])
        );
        assert_eq!(t.switch_path(SwitchId::new(0), SwitchId::new(9)), None);

        let route = t.route(NodeId::new(0), NodeId::new(2)).unwrap();
        assert_eq!(
            route,
            vec![
                HopLink::Uplink(NodeId::new(0)),
                HopLink::Trunk {
                    from: SwitchId::new(0),
                    to: SwitchId::new(1)
                },
                HopLink::Downlink(NodeId::new(2)),
            ]
        );
        let route = t.route(NodeId::new(0), NodeId::new(1)).unwrap();
        assert_eq!(route.len(), 2);
        assert!(t.route(NodeId::new(0), NodeId::new(0)).is_err());
        assert!(t.route(NodeId::new(0), NodeId::new(99)).is_err());
    }

    #[test]
    fn next_hop_table_matches_paths() {
        let t = Topology::line(4, 1);
        let table = t.next_hop_table();
        // sw0 towards sw3 goes via sw1; sw3 towards sw0 via sw2.
        assert_eq!(
            table[&(SwitchId::new(0), SwitchId::new(3))],
            SwitchId::new(1)
        );
        assert_eq!(
            table[&(SwitchId::new(3), SwitchId::new(0))],
            SwitchId::new(2)
        );
        assert_eq!(
            table[&(SwitchId::new(1), SwitchId::new(2))],
            SwitchId::new(2)
        );
        // 4 switches, ordered pairs: 4*3 = 12 entries.
        assert_eq!(table.len(), 12);
    }

    #[test]
    fn disconnected_switches_have_no_route() {
        let mut t = Topology::new();
        t.add_switch(SwitchId::new(0));
        t.add_switch(SwitchId::new(1));
        t.attach_node(NodeId::new(0), SwitchId::new(0)).unwrap();
        t.attach_node(NodeId::new(1), SwitchId::new(1)).unwrap();
        assert!(!t.is_connected());
        assert!(t.route(NodeId::new(0), NodeId::new(1)).is_err());
        assert!(t.next_hop_table().is_empty());
    }
}
