//! Multi-switch network topologies.
//!
//! The paper analyses a single-switch star and names "networks consisting of
//! many interconnected switches" as future work.  A [`Topology`] describes
//! such a network: which switch every end node attaches to and which trunk
//! links connect the switches.  The switch graph may be an arbitrary
//! connected *mesh* — trees, rings, redundant trunks are all valid; nothing
//! in the per-link EDF analysis requires unique paths.  Which path a channel
//! takes through a mesh is the job of a [`crate::router::Router`]: the
//! [`crate::router::TreeRouter`] insists on a tree (unique paths, the
//! pre-mesh behaviour), while the shortest-path and ECMP routers accept any
//! connected graph.
//!
//! The types live here (rather than in the admission-control crate) because
//! both the analytical side (`rt-core`'s multi-hop admission) and the
//! data-plane side (`rt-netsim`'s fabric simulator) are driven by the same
//! topology: one [`HopLink`] is simultaneously a unit of EDF feasibility
//! analysis and a simulated output port.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use crate::error::{RtError, RtResult};
use crate::ids::NodeId;

/// Where the fabric's RT channel management software runs.
///
/// The paper centralises channel management in one switch; the distributed
/// placement gives every switch its own manager owning the slack ledgers of
/// its local links, with admission running as a two-phase reservation in
/// control frames that traverse the fabric.  The placement is carried on the
/// [`Topology`] because the *wire* needs it too: it decides where a control
/// frame addressed to the generic switch MAC is delivered — the managing
/// switch (central) or the first switch that receives it (distributed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ManagerPlacement {
    /// All control frames are forwarded to one managing switch (the lowest
    /// switch id), which runs the only channel manager.  The paper's model.
    #[default]
    Central,
    /// Every switch runs its own channel manager; control frames addressed
    /// to the generic switch MAC are consumed by the receiving node's access
    /// switch, and switch-to-switch reservation frames hop the fabric.
    Distributed,
}

/// The regular fabric family a topology was built as, carried by the
/// structured builders ([`Topology::fat_tree`], [`Topology::torus_nd`],
/// [`Topology::torus`]) so coordinate-based routing can recognise the shape
/// without re-deriving it from the edge set.
///
/// The metadata describes the *healthy* graph: it survives
/// [`Topology::fail_trunk`] / [`Topology::repair_trunk`] (a cut cable does
/// not change what the fabric is), but any structural mutation that the
/// closed forms cannot describe — an extra switch, an extra trunk, a
/// non-default trunk cost — clears it, and routing falls back to the
/// general-mesh path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FabricStructure {
    /// The three-tier fat tree of [`Topology::fat_tree`]: radix `k`,
    /// `(k/2)²` cores then `k` pods of `k/2` aggregation + `k/2` edge
    /// switches.
    FatTree {
        /// The switch radix (even, at least 4).
        k: u32,
    },
    /// The n-dimensional wrap-around torus of [`Topology::torus_nd`]
    /// (row-major switch ids, last dimension fastest); the 2-D builder
    /// [`Topology::torus`] tags itself as `TorusNd { dims: [rows, cols] }`,
    /// which is the identical graph.
    TorusNd {
        /// Dimension lengths, slowest-varying first.
        dims: Vec<u32>,
    },
}

/// Identifier of a switch in a multi-switch topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SwitchId(pub u32);

impl SwitchId {
    /// Construct a switch id.
    pub const fn new(id: u32) -> Self {
        SwitchId(id)
    }

    /// Raw value.
    pub const fn get(self) -> u32 {
        self.0
    }
}

impl fmt::Display for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sw{}", self.0)
    }
}

/// A directed link in a multi-switch network.
///
/// Every variant is one transmitter: a node's NIC on its uplink, a switch
/// output port on a downlink, or a switch trunk port towards a neighbouring
/// switch.  Full duplex makes the two directions of one cable independent
/// scheduling resources, so the trunk between `a` and `b` appears as two
/// distinct `Trunk` values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HopLink {
    /// End node → its access switch.
    Uplink(NodeId),
    /// Access switch → end node.
    Downlink(NodeId),
    /// Directed trunk between two switches.
    Trunk {
        /// Transmitting switch.
        from: SwitchId,
        /// Receiving switch.
        to: SwitchId,
    },
}

impl fmt::Display for HopLink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HopLink::Uplink(n) => write!(f, "{n}/uplink"),
            HopLink::Downlink(n) => write!(f, "{n}/downlink"),
            HopLink::Trunk { from, to } => write!(f, "{from}->{to}"),
        }
    }
}

/// A network of switches connected by trunk links, with end nodes attached.
///
/// A topology is *mutable orchestration state*, not a construction-time
/// constant: [`Topology::fail_trunk`] and [`Topology::repair_trunk`] model a
/// cable being cut and spliced back while the fabric keeps running.  A
/// failed trunk leaves the adjacency (so routing, connectivity checks and
/// [`Topology::fingerprint`] all see the degraded graph — which is what
/// invalidates every [`crate::router::NextHopCache`] entry keyed on the
/// fingerprint) but is remembered in a failed set so a repair restores
/// exactly the link that was lost.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    switches: BTreeSet<SwitchId>,
    attachments: BTreeMap<NodeId, SwitchId>,
    /// Adjacency of the (undirected) trunk graph — *healthy* trunks only.
    adjacency: BTreeMap<SwitchId, BTreeSet<SwitchId>>,
    /// Trunks currently failed, canonical `(a, b)` with `a < b`.  Disjoint
    /// from the adjacency; [`Topology::repair_trunk`] moves them back.
    failed: BTreeSet<(SwitchId, SwitchId)>,
    /// Per-trunk routing cost, canonical `(a, b)` with `a < b`.  Only
    /// non-default costs are stored; every absent trunk costs 1 (so an
    /// all-default topology routes by hop count, byte for byte as before).
    /// Costs survive [`Topology::fail_trunk`] and are restored on repair.
    costs: BTreeMap<(SwitchId, SwitchId), u64>,
    /// Where the channel management software runs (see [`ManagerPlacement`]).
    placement: ManagerPlacement,
    /// The regular fabric family this topology was built as, when a
    /// structured builder produced it (see [`FabricStructure`]).  Cleared by
    /// any mutation the closed forms cannot describe; preserved across
    /// trunk failures and repairs.
    structure: Option<FabricStructure>,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// The degenerate single-switch star of the paper's §18.1: one switch,
    /// the given nodes attached to it.
    pub fn star(switch: SwitchId, nodes: impl IntoIterator<Item = NodeId>) -> Self {
        let mut t = Topology::new();
        t.add_switch(switch);
        for n in nodes {
            t.attach_node(n, switch)
                .expect("attaching fresh nodes to a fresh switch cannot fail");
        }
        t
    }

    /// A line (chain) of `switches` switches with `nodes_per_switch` end
    /// nodes on each, node ids allocated switch-major.
    pub fn line(switches: u32, nodes_per_switch: u32) -> Self {
        let mut t = Topology::new();
        for s in 0..switches {
            t.add_switch(SwitchId::new(s));
        }
        for s in 1..switches {
            t.add_trunk(SwitchId::new(s - 1), SwitchId::new(s))
                .expect("a chain has no duplicate trunks");
        }
        for s in 0..switches {
            for k in 0..nodes_per_switch {
                t.attach_node(NodeId::new(s * nodes_per_switch + k), SwitchId::new(s))
                    .expect("fresh node");
            }
        }
        t
    }

    /// A ring of `switches` switches (the line of [`Topology::line`] plus a
    /// closing trunk between the last and the first switch) with
    /// `nodes_per_switch` end nodes on each, node ids allocated
    /// switch-major.  With fewer than three switches the closing trunk would
    /// duplicate an existing one, so the result degenerates to a line.
    ///
    /// A ring is the smallest *cyclic* fabric: every pair of switches is
    /// connected by two disjoint paths, so it needs a mesh-capable router
    /// (shortest-path or ECMP) — [`crate::router::TreeRouter`] rejects it.
    pub fn ring(switches: u32, nodes_per_switch: u32) -> Self {
        let mut t = Topology::line(switches, nodes_per_switch);
        if switches >= 3 {
            t.add_trunk(SwitchId::new(switches - 1), SwitchId::new(0))
                .expect("the closing trunk of a >=3 ring is fresh");
        }
        t
    }

    /// A `rows × cols` torus: switch `(r, c)` has id `r·cols + c` and is
    /// trunked to its right and lower neighbours, with wrap-around trunks
    /// closing each row and column into a ring, and `nodes_per_switch` end
    /// nodes on each switch (node ids allocated switch-major).  This is the
    /// classic thousand-node fabric shape: an `8 × 8` torus with 16 nodes
    /// per switch is 64 switches, 256 directed trunk ports and 1024 nodes.
    ///
    /// Rows or columns shorter than three skip the wrap-around trunk in
    /// that dimension (it would duplicate an existing edge), exactly as
    /// [`Topology::ring`] degenerates to a line.
    pub fn torus(rows: u32, cols: u32, nodes_per_switch: u32) -> Self {
        let mut t = Topology::new();
        let id = |r: u32, c: u32| SwitchId::new(r * cols + c);
        for r in 0..rows {
            for c in 0..cols {
                t.add_switch(id(r, c));
            }
        }
        for r in 0..rows {
            for c in 0..cols {
                // Rightward trunk (wrap only when the row has >= 3 switches).
                if c + 1 < cols {
                    t.add_trunk(id(r, c), id(r, c + 1)).expect("fresh trunk");
                } else if cols >= 3 {
                    t.add_trunk(id(r, c), id(r, 0)).expect("fresh wrap trunk");
                }
                // Downward trunk (wrap only when the column has >= 3).
                if r + 1 < rows {
                    t.add_trunk(id(r, c), id(r + 1, c)).expect("fresh trunk");
                } else if rows >= 3 {
                    t.add_trunk(id(r, c), id(0, c)).expect("fresh wrap trunk");
                }
            }
        }
        for s in 0..rows * cols {
            for k in 0..nodes_per_switch {
                t.attach_node(NodeId::new(s * nodes_per_switch + k), SwitchId::new(s))
                    .expect("fresh node");
            }
        }
        // Same graph as `torus_nd(&[rows, cols], n)` switch for switch, so
        // it carries the same structural tag (set last: the builder's own
        // mutations would clear it).
        t.structure = Some(FabricStructure::TorusNd {
            dims: vec![rows, cols],
        });
        t
    }

    /// A three-tier fat-tree built from `k`-port switches: `(k/2)²` core
    /// switches and `k` pods of `k/2` aggregation plus `k/2` edge switches,
    /// with `k/2` end nodes on every edge switch.  Every edge switch trunks
    /// to every aggregation switch in its pod, and aggregation switch `j` of
    /// each pod trunks to core switches `j·k/2 .. (j+1)·k/2`, giving the
    /// classic rearrangeably non-blocking datacenter fabric: `fat_tree(16)`
    /// is 320 switches and 1024 hosts, `fat_tree(32)` is 1280 switches and
    /// 8192 hosts.
    ///
    /// Switch ids are allocated core-first (`0..(k/2)²`), then pod by pod
    /// (aggregation before edge); node ids are allocated edge-switch-major.
    /// `k` must be even and at least 4 — a fat-tree is defined by halving
    /// the switch radix between tiers.
    ///
    /// # Examples
    ///
    /// ```
    /// use rt_types::Topology;
    ///
    /// let ft = Topology::fat_tree(4).unwrap();
    /// assert_eq!(ft.switch_count(), 20); // 4 core + 4 pods x (2 agg + 2 edge)
    /// assert_eq!(ft.node_count(), 16); // 8 edge switches x 2 hosts
    /// assert!(Topology::fat_tree(3).is_err()); // odd radix
    /// ```
    pub fn fat_tree(k: u32) -> RtResult<Self> {
        if k < 4 || k % 2 != 0 {
            return Err(RtError::Config(format!(
                "fat_tree: switch radix k must be even and at least 4, got {k}"
            )));
        }
        let half = k / 2;
        let cores = half * half;
        let mut t = Topology::new();
        for s in 0..cores + k * k {
            t.add_switch(SwitchId::new(s));
        }
        for pod in 0..k {
            let agg0 = cores + pod * k;
            let edge0 = agg0 + half;
            for j in 0..half {
                // Aggregation switch j uplinks to its stripe of the core.
                for c in 0..half {
                    t.add_trunk(SwitchId::new(agg0 + j), SwitchId::new(j * half + c))
                        .expect("fresh trunk");
                }
                // Edge switch j uplinks to every aggregation switch in the pod.
                for a in 0..half {
                    t.add_trunk(SwitchId::new(edge0 + j), SwitchId::new(agg0 + a))
                        .expect("fresh trunk");
                }
                for h in 0..half {
                    let edge_index = pod * half + j;
                    t.attach_node(NodeId::new(edge_index * half + h), SwitchId::new(edge0 + j))
                        .expect("fresh node");
                }
            }
        }
        t.structure = Some(FabricStructure::FatTree { k });
        Ok(t)
    }

    /// An n-dimensional torus generalising [`Topology::torus`]: switch
    /// coordinates range over `dims` (row-major, last dimension fastest, so
    /// `torus_nd(&[r, c], n)` reproduces `torus(r, c, n)` switch for
    /// switch), each switch is trunked to its successor along every
    /// dimension, and a wrap-around trunk closes each dimension of length at
    /// least 3 into a ring — shorter dimensions degenerate exactly as the
    /// 2-D builder's rows and columns do.  `nodes_per_switch` end nodes
    /// attach to every switch, node ids switch-major.
    ///
    /// `dims` needs at least two dimensions (a 1-D torus is
    /// [`Topology::ring`]), every dimension must be non-zero, and the switch
    /// count must fit a `u32` id space.
    ///
    /// # Examples
    ///
    /// ```
    /// use rt_types::Topology;
    ///
    /// let t = Topology::torus_nd(&[3, 3, 3], 2).unwrap();
    /// assert_eq!(t.switch_count(), 27);
    /// assert_eq!(t.trunk_count(), 81); // 3 wrap-closed rings through each switch
    /// assert_eq!(t.node_count(), 54);
    /// assert!(Topology::torus_nd(&[5], 1).is_err()); // 1-D: use ring()
    /// ```
    pub fn torus_nd(dims: &[u32], nodes_per_switch: u32) -> RtResult<Self> {
        if dims.len() < 2 {
            return Err(RtError::Config(format!(
                "torus_nd: need at least 2 dimensions (use ring/line for 1-D), got {}",
                dims.len()
            )));
        }
        if let Some(d) = dims.iter().position(|&d| d == 0) {
            return Err(RtError::Config(format!(
                "torus_nd: dimension {d} has zero length"
            )));
        }
        let total = dims.iter().try_fold(1u32, |acc, &d| acc.checked_mul(d));
        let Some(total) = total else {
            return Err(RtError::Config(format!(
                "torus_nd: {dims:?} overflows the u32 switch id space"
            )));
        };
        if total.checked_mul(nodes_per_switch).is_none() {
            return Err(RtError::Config(format!(
                "torus_nd: {dims:?} x {nodes_per_switch} nodes overflows the u32 node id space"
            )));
        }
        let mut t = Topology::new();
        for s in 0..total {
            t.add_switch(SwitchId::new(s));
        }
        // Strides of the row-major layout: moving one step along dimension
        // `d` moves the linear id by the product of the faster dimensions.
        let mut strides = vec![1u32; dims.len()];
        for d in (0..dims.len() - 1).rev() {
            strides[d] = strides[d + 1] * dims[d + 1];
        }
        for s in 0..total {
            for (&len, &stride) in dims.iter().zip(&strides) {
                let coord = (s / stride) % len;
                if coord + 1 < len {
                    t.add_trunk(SwitchId::new(s), SwitchId::new(s + stride))
                        .expect("fresh trunk");
                } else if len >= 3 {
                    t.add_trunk(SwitchId::new(s), SwitchId::new(s - coord * stride))
                        .expect("fresh wrap trunk");
                }
            }
        }
        for s in 0..total {
            for k in 0..nodes_per_switch {
                t.attach_node(NodeId::new(s * nodes_per_switch + k), SwitchId::new(s))
                    .expect("fresh node");
            }
        }
        t.structure = Some(FabricStructure::TorusNd {
            dims: dims.to_vec(),
        });
        Ok(t)
    }

    /// Add a switch (idempotent).  Clears any [`FabricStructure`] tag: an
    /// extra switch is outside what the structured builders describe.
    pub fn add_switch(&mut self, switch: SwitchId) {
        self.structure = None;
        self.switches.insert(switch);
        self.adjacency.entry(switch).or_default();
    }

    /// Attach an end node to a switch.
    pub fn attach_node(&mut self, node: NodeId, switch: SwitchId) -> RtResult<()> {
        if !self.switches.contains(&switch) {
            return Err(RtError::Config(format!("unknown switch {switch}")));
        }
        if self.attachments.contains_key(&node) {
            return Err(RtError::Config(format!("{node} is already attached")));
        }
        self.attachments.insert(node, switch);
        Ok(())
    }

    /// Connect two switches with a full-duplex trunk link.  Cycles are
    /// allowed (the switch graph may be any mesh — path selection is a
    /// [`crate::router::Router`] concern); self-loops, unknown switches and
    /// duplicate trunks are rejected.
    pub fn add_trunk(&mut self, a: SwitchId, b: SwitchId) -> RtResult<()> {
        if a == b {
            return Err(RtError::Config(
                "a trunk cannot connect a switch to itself".into(),
            ));
        }
        for s in [a, b] {
            if !self.switches.contains(&s) {
                return Err(RtError::Config(format!("unknown switch {s}")));
            }
        }
        if self.adjacency.get(&a).is_some_and(|nbrs| nbrs.contains(&b)) {
            return Err(RtError::Config(format!("trunk {a} <-> {b} already exists")));
        }
        if self.failed.contains(&(a.min(b), a.max(b))) {
            return Err(RtError::Config(format!(
                "trunk {a} <-> {b} exists but is failed; repair it instead"
            )));
        }
        self.structure = None;
        self.adjacency.entry(a).or_default().insert(b);
        self.adjacency.entry(b).or_default().insert(a);
        Ok(())
    }

    /// Connect two switches with a full-duplex trunk of the given routing
    /// cost (`cost >= 1`; cost 1 is the hop-count default, so an all-ones
    /// fabric routes exactly as an unweighted one).  Cost-aware routers
    /// ([`crate::router::ShortestPathRouter`], [`crate::router::KShortestRouter`])
    /// minimise the summed trunk cost instead of the trunk count.
    pub fn add_trunk_weighted(&mut self, a: SwitchId, b: SwitchId, cost: u64) -> RtResult<()> {
        if cost == 0 {
            return Err(RtError::Config(format!(
                "trunk {a} <-> {b}: cost must be at least 1"
            )));
        }
        self.add_trunk(a, b)?;
        if cost != 1 {
            self.costs.insert((a.min(b), a.max(b)), cost);
        }
        Ok(())
    }

    /// Change the routing cost of an existing trunk (healthy or failed —
    /// the cost survives a failure and is restored with the repair).
    pub fn set_trunk_cost(&mut self, a: SwitchId, b: SwitchId, cost: u64) -> RtResult<()> {
        if cost == 0 {
            return Err(RtError::Config(format!(
                "trunk {a} <-> {b}: cost must be at least 1"
            )));
        }
        let key = (a.min(b), a.max(b));
        if !self.has_trunk(a, b) && !self.failed.contains(&key) {
            return Err(RtError::Config(format!("no trunk {a} <-> {b}")));
        }
        if cost == 1 {
            self.costs.remove(&key);
        } else {
            // Weighted trunks break the hop-count closed forms, so the
            // structural tag goes with them.
            self.structure = None;
            self.costs.insert(key, cost);
        }
        Ok(())
    }

    /// The routing cost of the (undirected) trunk between `a` and `b`, or
    /// `None` when no healthy trunk connects them.
    pub fn trunk_cost(&self, a: SwitchId, b: SwitchId) -> Option<u64> {
        if !self.has_trunk(a, b) {
            return None;
        }
        Some(self.costs.get(&(a.min(b), a.max(b))).copied().unwrap_or(1))
    }

    /// `true` if every healthy trunk has the default cost 1, in which case
    /// cost-aware routing degenerates to plain hop-count BFS.
    pub fn has_uniform_cost(&self) -> bool {
        self.costs.iter().all(|(&(a, b), _)| !self.has_trunk(a, b))
    }

    /// Where the channel management software runs.  Defaults to
    /// [`ManagerPlacement::Central`], the paper's model.
    pub fn manager_placement(&self) -> ManagerPlacement {
        self.placement
    }

    /// Select the channel-management placement (see [`ManagerPlacement`]).
    pub fn set_manager_placement(&mut self, placement: ManagerPlacement) {
        self.placement = placement;
    }

    /// Fail a trunk: the link disappears from the adjacency (routing,
    /// connectivity and the fingerprint all see the degraded graph) and is
    /// remembered for [`Topology::repair_trunk`].  Rejects unknown and
    /// already-failed trunks, so a double cut cannot silently pass.
    pub fn fail_trunk(&mut self, a: SwitchId, b: SwitchId) -> RtResult<()> {
        let key = (a.min(b), a.max(b));
        if self.failed.contains(&key) {
            return Err(RtError::Config(format!(
                "trunk {a} <-> {b} is already failed"
            )));
        }
        if !self.adjacency.get(&a).is_some_and(|nbrs| nbrs.contains(&b)) {
            return Err(RtError::Config(format!("no trunk {a} <-> {b} to fail")));
        }
        self.adjacency
            .get_mut(&a)
            .expect("checked above")
            .remove(&b);
        self.adjacency
            .get_mut(&b)
            .expect("trunks are symmetric")
            .remove(&a);
        self.failed.insert(key);
        Ok(())
    }

    /// Repair a previously failed trunk, restoring the adjacency exactly as
    /// it was before the failure.  Only trunks failed through
    /// [`Topology::fail_trunk`] can be repaired.
    pub fn repair_trunk(&mut self, a: SwitchId, b: SwitchId) -> RtResult<()> {
        let key = (a.min(b), a.max(b));
        if !self.failed.remove(&key) {
            return Err(RtError::Config(format!(
                "trunk {a} <-> {b} is not failed, nothing to repair"
            )));
        }
        self.adjacency.entry(a).or_default().insert(b);
        self.adjacency.entry(b).or_default().insert(a);
        Ok(())
    }

    /// Fail a *switch*: every healthy trunk incident to it is failed
    /// atomically (the validation runs before the first mutation, so either
    /// all incident trunks fail or none do).  The switch itself stays in the
    /// topology — its access links never fail — but it is unreachable over
    /// trunks until repairs splice it back in, one trunk at a time via
    /// [`Topology::repair_trunk`].  Returns the trunks that were failed,
    /// each as `(switch, neighbour)`.
    pub fn fail_switch(&mut self, switch: SwitchId) -> RtResult<Vec<(SwitchId, SwitchId)>> {
        if !self.switches.contains(&switch) {
            return Err(RtError::Config(format!("unknown switch {switch}")));
        }
        let neighbours: Vec<SwitchId> = self.neighbours(switch).collect();
        if neighbours.is_empty() {
            return Err(RtError::Config(format!(
                "switch {switch} has no healthy incident trunk to fail"
            )));
        }
        let mut cut = Vec::with_capacity(neighbours.len());
        for n in neighbours {
            self.fail_trunk(switch, n)
                .expect("incident trunks are healthy by construction");
            cut.push((switch, n));
        }
        Ok(cut)
    }

    /// The currently failed trunks, each reported once with `from < to`.
    pub fn failed_trunks(&self) -> impl Iterator<Item = (SwitchId, SwitchId)> + '_ {
        self.failed.iter().copied()
    }

    /// `true` if the (undirected) trunk between `a` and `b` exists and is
    /// healthy.
    pub fn has_trunk(&self, a: SwitchId, b: SwitchId) -> bool {
        self.adjacency.get(&a).is_some_and(|nbrs| nbrs.contains(&b))
    }

    /// Number of switches.
    pub fn switch_count(&self) -> usize {
        self.switches.len()
    }

    /// Number of (undirected) trunk links.
    pub fn trunk_count(&self) -> usize {
        self.trunks().count()
    }

    /// `true` if the switch graph is a *tree*: connected with exactly
    /// `switch_count − 1` trunks, so the path between any two switches is
    /// unique.  This is the capability [`crate::router::TreeRouter`] checks.
    pub fn is_tree(&self) -> bool {
        if self.switches.is_empty() {
            return true;
        }
        self.is_connected() && self.trunk_count() == self.switches.len() - 1
    }

    /// A cheap structural fingerprint (FNV-1a over switches, attachments and
    /// trunks).  Routers key their cached forwarding tables on it, so equal
    /// fingerprints must mean equal graphs for routing purposes — which they
    /// do, because the maps iterate in a canonical (sorted) order.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mix = |h: u64, v: u64| (h ^ v).wrapping_mul(PRIME);
        for s in &self.switches {
            h = mix(h, 1);
            h = mix(h, u64::from(s.0));
        }
        for (n, s) in &self.attachments {
            h = mix(h, 2);
            h = mix(h, u64::from(n.get()));
            h = mix(h, u64::from(s.0));
        }
        let mut trunk_costs = Vec::new();
        for (a, b) in self.trunks() {
            h = mix(h, 3);
            h = mix(h, u64::from(a.0));
            h = mix(h, u64::from(b.0));
            let cost = self.costs.get(&(a, b)).copied().unwrap_or(1);
            if cost != 1 {
                trunk_costs.push((a, b, cost));
            }
        }
        // Costs are mixed separately (and only when non-default) so that
        // all-default topologies keep their historical fingerprints.
        for (a, b, cost) in trunk_costs {
            h = mix(h, 4);
            h = mix(h, u64::from(a.0));
            h = mix(h, u64::from(b.0));
            h = mix(h, cost);
        }
        h
    }

    /// The regular fabric family this topology was built as, if a structured
    /// builder produced it and no structural mutation has occurred since.
    /// Trunk failures and repairs preserve the tag (see
    /// [`FabricStructure`]).
    pub fn structure(&self) -> Option<&FabricStructure> {
        self.structure.as_ref()
    }

    /// Like [`Topology::fingerprint`], but over the *healthy* graph — failed
    /// trunks are hashed as if still up.  Every cut/repair state of one
    /// fabric shares this value, which is what lets a routing cache
    /// recognise "the same fabric, one trunk different" and repair its
    /// tables incrementally instead of rebuilding from scratch.
    pub fn structural_fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mix = |h: u64, v: u64| (h ^ v).wrapping_mul(PRIME);
        for s in &self.switches {
            h = mix(h, 1);
            h = mix(h, u64::from(s.0));
        }
        for (n, s) in &self.attachments {
            h = mix(h, 2);
            h = mix(h, u64::from(n.get()));
            h = mix(h, u64::from(s.0));
        }
        let all_trunks: BTreeSet<(SwitchId, SwitchId)> =
            self.trunks().chain(self.failed_trunks()).collect();
        for &(a, b) in &all_trunks {
            h = mix(h, 3);
            h = mix(h, u64::from(a.0));
            h = mix(h, u64::from(b.0));
        }
        for (&(a, b), &cost) in &self.costs {
            if all_trunks.contains(&(a, b)) {
                h = mix(h, 4);
                h = mix(h, u64::from(a.0));
                h = mix(h, u64::from(b.0));
                h = mix(h, cost);
            }
        }
        h
    }

    /// Number of attached end nodes.
    pub fn node_count(&self) -> usize {
        self.attachments.len()
    }

    /// The switches, in ascending id order.
    pub fn switches(&self) -> impl Iterator<Item = SwitchId> + '_ {
        self.switches.iter().copied()
    }

    /// The undirected trunk edges, each reported once with `from < to`.
    pub fn trunks(&self) -> impl Iterator<Item = (SwitchId, SwitchId)> + '_ {
        self.adjacency
            .iter()
            .flat_map(|(&a, nbrs)| nbrs.iter().map(move |&b| (a, b)))
            .filter(|(a, b)| a < b)
    }

    /// The switch an end node is attached to.
    pub fn switch_of(&self, node: NodeId) -> Option<SwitchId> {
        self.attachments.get(&node).copied()
    }

    /// The trunk neighbours of a switch, in ascending id order.
    pub fn neighbours(&self, switch: SwitchId) -> impl Iterator<Item = SwitchId> + '_ {
        self.adjacency.get(&switch).into_iter().flatten().copied()
    }

    /// The attached end nodes, in ascending id order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.attachments.keys().copied()
    }

    /// The end nodes attached to one switch, in ascending id order.
    pub fn nodes_of(&self, switch: SwitchId) -> impl Iterator<Item = NodeId> + '_ {
        self.attachments
            .iter()
            .filter(move |(_, &s)| s == switch)
            .map(|(&n, _)| n)
    }

    /// `true` if every switch can reach every other switch over trunks.
    pub fn is_connected(&self) -> bool {
        let Some(&first) = self.switches.iter().next() else {
            return true;
        };
        let mut seen = BTreeSet::from([first]);
        let mut queue = VecDeque::from([first]);
        while let Some(current) = queue.pop_front() {
            if let Some(neighbours) = self.adjacency.get(&current) {
                for &next in neighbours {
                    if seen.insert(next) {
                        queue.push_back(next);
                    }
                }
            }
        }
        seen.len() == self.switches.len()
    }

    /// A cheapest switch-to-switch path (inclusive of both endpoints), or
    /// `None` if the switches are not connected.  With all-default trunk
    /// costs this is BFS over the sorted adjacency (byte for byte the
    /// historical hop-count behaviour); with weighted trunks it is a
    /// deterministic Dijkstra minimising the summed cost.  On a tree it is
    /// the unique path either way.
    pub fn switch_path(&self, from: SwitchId, to: SwitchId) -> Option<Vec<SwitchId>> {
        if from == to {
            return Some(vec![from]);
        }
        if !self.switches.contains(&from) || !self.switches.contains(&to) {
            return None;
        }
        let predecessor = self.cheapest_predecessors(from, Some(to));
        if !predecessor.contains_key(&to) {
            return None;
        }
        let mut path = vec![to];
        let mut current = to;
        while current != from {
            current = predecessor[&current];
            path.push(current);
        }
        path.reverse();
        Some(path)
    }

    /// Predecessor map of cheapest paths out of `from` (optionally stopping
    /// early once `until` is settled): BFS when every trunk costs 1, a
    /// deterministic Dijkstra (frontier popped in `(distance, switch id)`
    /// order, neighbours relaxed in ascending id, ties keep the first
    /// finder) otherwise.
    fn cheapest_predecessors(
        &self,
        from: SwitchId,
        until: Option<SwitchId>,
    ) -> BTreeMap<SwitchId, SwitchId> {
        self.cheapest_predecessors_banned(from, until, &BTreeSet::new(), &BTreeSet::new())
    }

    /// The ban-aware form of [`Topology::cheapest_predecessors`], shared
    /// with the k-shortest router (Yen's spur searches ban root switches
    /// and the *directed* edges of already-accepted paths).  One
    /// implementation carries both so the tie-break rules — which decide
    /// which equal-cost path the whole stack agrees on — can never drift
    /// apart between plain routing and candidate enumeration.
    pub(crate) fn cheapest_predecessors_banned(
        &self,
        from: SwitchId,
        until: Option<SwitchId>,
        banned_nodes: &BTreeSet<SwitchId>,
        banned_edges: &BTreeSet<(SwitchId, SwitchId)>,
    ) -> BTreeMap<SwitchId, SwitchId> {
        let banned = |current: SwitchId, next: SwitchId| {
            banned_nodes.contains(&next) || banned_edges.contains(&(current, next))
        };
        let mut predecessor: BTreeMap<SwitchId, SwitchId> = BTreeMap::new();
        if self.has_uniform_cost() {
            let mut queue = VecDeque::from([from]);
            let mut seen = BTreeSet::from([from]);
            while let Some(current) = queue.pop_front() {
                if until == Some(current) {
                    break;
                }
                if let Some(neighbours) = self.adjacency.get(&current) {
                    for &next in neighbours {
                        if banned(current, next) {
                            continue;
                        }
                        if seen.insert(next) {
                            predecessor.insert(next, current);
                            queue.push_back(next);
                        }
                    }
                }
            }
            return predecessor;
        }
        let mut dist: BTreeMap<SwitchId, u64> = BTreeMap::from([(from, 0)]);
        let mut frontier: BTreeSet<(u64, SwitchId)> = BTreeSet::from([(0, from)]);
        let mut settled: BTreeSet<SwitchId> = BTreeSet::new();
        while let Some(&(d, current)) = frontier.iter().next() {
            frontier.remove(&(d, current));
            if !settled.insert(current) {
                continue;
            }
            if until == Some(current) {
                break;
            }
            if let Some(neighbours) = self.adjacency.get(&current) {
                for &next in neighbours {
                    if settled.contains(&next) || banned(current, next) {
                        continue;
                    }
                    let cost = self
                        .costs
                        .get(&(current.min(next), current.max(next)))
                        .copied()
                        .unwrap_or(1);
                    let candidate = d + cost;
                    let better = dist.get(&next).is_none_or(|&known| candidate < known);
                    if better {
                        if let Some(&known) = dist.get(&next) {
                            frontier.remove(&(known, next));
                        }
                        dist.insert(next, candidate);
                        predecessor.insert(next, current);
                        frontier.insert((candidate, next));
                    }
                }
            }
        }
        predecessor
    }

    /// The directed links an RT channel from `source` to `destination`
    /// traverses along a shortest path: uplink, trunk hops, downlink.
    ///
    /// This is the BFS primitive the routers build on; prefer going through
    /// a [`crate::router::Router`], which adds capability checks, caching
    /// and (for ECMP) multi-path selection.
    pub fn route(&self, source: NodeId, destination: NodeId) -> RtResult<Vec<HopLink>> {
        if source == destination {
            return Err(RtError::InvalidChannelSpec(
                "source and destination must differ".into(),
            ));
        }
        let src_switch = self.switch_of(source).ok_or(RtError::UnknownNode(source))?;
        let dst_switch = self
            .switch_of(destination)
            .ok_or(RtError::UnknownNode(destination))?;
        let switch_path = self.switch_path(src_switch, dst_switch).ok_or_else(|| {
            RtError::Config(format!(
                "switches {src_switch} and {dst_switch} are not connected"
            ))
        })?;
        let mut links = Vec::with_capacity(switch_path.len() + 1);
        links.push(HopLink::Uplink(source));
        for pair in switch_path.windows(2) {
            links.push(HopLink::Trunk {
                from: pair[0],
                to: pair[1],
            });
        }
        links.push(HopLink::Downlink(destination));
        Ok(links)
    }

    /// The next-hop forwarding table of the trunk graph: for every ordered
    /// pair of distinct connected switches `(at, towards)`, the neighbour of
    /// `at` on a cheapest path towards `towards` (the unique path on a
    /// tree).  Deterministic: BFS over sorted adjacency with all-default
    /// trunk costs, a deterministic Dijkstra with weighted trunks.  This is
    /// O(V·E log V); routers cache the result per topology fingerprint so
    /// the simulator does not recompute it per construction — prefer
    /// [`crate::router::Router::next_hop_table`].
    pub fn next_hop_table(&self) -> BTreeMap<(SwitchId, SwitchId), SwitchId> {
        let mut table = BTreeMap::new();
        for &from in &self.switches {
            // One search per source switch.
            let predecessor = self.cheapest_predecessors(from, None);
            for &to in &self.switches {
                if to == from || !predecessor.contains_key(&to) {
                    continue;
                }
                // Walk back from `to` until the step out of `from`.
                let mut step = to;
                while predecessor[&step] != from {
                    step = predecessor[&step];
                }
                table.insert((from, to), step);
            }
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dumbbell(m: u32, s: u32) -> Topology {
        let mut t = Topology::new();
        t.add_switch(SwitchId::new(0));
        t.add_switch(SwitchId::new(1));
        t.add_trunk(SwitchId::new(0), SwitchId::new(1)).unwrap();
        for i in 0..m {
            t.attach_node(NodeId::new(i), SwitchId::new(0)).unwrap();
        }
        for i in 0..s {
            t.attach_node(NodeId::new(m + i), SwitchId::new(1)).unwrap();
        }
        t
    }

    #[test]
    fn construction_and_validation() {
        let mut t = Topology::new();
        t.add_switch(SwitchId::new(0));
        t.add_switch(SwitchId::new(1));
        t.add_switch(SwitchId::new(2));
        // Duplicate switch ids are idempotent, not an error.
        t.add_switch(SwitchId::new(0));
        assert_eq!(t.switch_count(), 3);
        assert!(t.attach_node(NodeId::new(0), SwitchId::new(9)).is_err());
        t.attach_node(NodeId::new(0), SwitchId::new(0)).unwrap();
        // A node attached twice is an error.
        assert!(t.attach_node(NodeId::new(0), SwitchId::new(1)).is_err());
        t.add_trunk(SwitchId::new(0), SwitchId::new(1)).unwrap();
        t.add_trunk(SwitchId::new(1), SwitchId::new(2)).unwrap();
        assert!(t.is_tree());
        // A closing trunk is now legal (meshes allowed)...
        t.add_trunk(SwitchId::new(0), SwitchId::new(2)).unwrap();
        assert!(!t.is_tree());
        assert!(t.is_connected());
        // ...but self-loops, unknown switches and duplicates are not.
        assert!(t.add_trunk(SwitchId::new(0), SwitchId::new(0)).is_err());
        assert!(t.add_trunk(SwitchId::new(0), SwitchId::new(7)).is_err());
        assert!(t.add_trunk(SwitchId::new(2), SwitchId::new(0)).is_err());
        assert_eq!(t.switch_count(), 3);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.switch_of(NodeId::new(0)), Some(SwitchId::new(0)));
        assert_eq!(t.trunks().count(), 3);
        assert_eq!(t.trunk_count(), 3);
    }

    #[test]
    fn star_and_line_builders() {
        let star = Topology::star(SwitchId::new(0), (0..4).map(NodeId::new));
        assert_eq!(star.switch_count(), 1);
        assert_eq!(star.node_count(), 4);
        assert_eq!(star.nodes_of(SwitchId::new(0)).count(), 4);

        let line = Topology::line(3, 2);
        assert_eq!(line.switch_count(), 3);
        assert_eq!(line.node_count(), 6);
        assert_eq!(line.switch_of(NodeId::new(5)), Some(SwitchId::new(2)));
        assert!(line.is_connected());
        assert!(line.is_tree());
        // End-to-end route: uplink + 2 trunks + downlink.
        let route = line.route(NodeId::new(0), NodeId::new(5)).unwrap();
        assert_eq!(route.len(), 4);
    }

    #[test]
    fn ring_builder_closes_the_cycle() {
        let ring = Topology::ring(4, 1);
        assert_eq!(ring.switch_count(), 4);
        assert_eq!(ring.trunk_count(), 4);
        assert!(ring.is_connected());
        assert!(!ring.is_tree());
        // The closing trunk makes sw0 -> sw3 a single hop.
        assert_eq!(
            ring.switch_path(SwitchId::new(0), SwitchId::new(3)),
            Some(vec![SwitchId::new(0), SwitchId::new(3)])
        );
        // Small rings degenerate to lines (no duplicate trunk).
        assert_eq!(Topology::ring(2, 1).trunk_count(), 1);
        assert!(Topology::ring(2, 1).is_tree());
        assert_eq!(Topology::ring(1, 2).trunk_count(), 0);
    }

    #[test]
    fn torus_builder_wraps_both_dimensions() {
        let t = Topology::torus(4, 4, 2);
        assert_eq!(t.switch_count(), 16);
        assert_eq!(t.node_count(), 32);
        // A 2D torus has 2 trunks per switch (each edge counted once).
        assert_eq!(t.trunk_count(), 32);
        assert!(t.is_connected());
        assert!(!t.is_tree());
        // Wrap-around: (0,0) and (0,3) are direct neighbours, as are
        // (0,0) and (3,0).
        assert!(t
            .neighbours(SwitchId::new(0))
            .any(|s| s == SwitchId::new(3)));
        assert!(t
            .neighbours(SwitchId::new(0))
            .any(|s| s == SwitchId::new(12)));
        // Node allocation is switch-major.
        assert_eq!(t.switch_of(NodeId::new(31)), Some(SwitchId::new(15)));

        // Degenerate shapes skip the duplicate wrap trunk.
        assert_eq!(Topology::torus(1, 2, 1).trunk_count(), 1);
        assert_eq!(Topology::torus(2, 2, 1).trunk_count(), 4);
        assert_eq!(Topology::torus(1, 4, 1).trunk_count(), 4); // a ring
        assert!(Topology::torus(2, 2, 1).is_connected());
    }

    #[test]
    fn fat_tree_builder_shape_and_validation() {
        let t = Topology::fat_tree(4).unwrap();
        assert_eq!(t.switch_count(), 20); // 4 core + 4 pods x (2 agg + 2 edge)
        assert_eq!(t.node_count(), 16); // 8 edge switches x 2 hosts
        assert_eq!(t.trunk_count(), 32); // 16 edge-agg + 16 agg-core
        assert!(t.is_connected());
        assert!(!t.is_tree());
        // Hosts attach to edge switches only: pod 0's first edge switch is
        // core(4) + agg(2) = switch 6, and it carries nodes 0 and 1.
        assert_eq!(t.switch_of(NodeId::new(0)), Some(SwitchId::new(6)));
        assert_eq!(t.nodes_of(SwitchId::new(6)).count(), 2);
        // Core switches carry no hosts.
        assert_eq!(t.nodes_of(SwitchId::new(0)).count(), 0);

        // The issue's target scale: k=16 -> 320 switches, 1024 hosts.
        let big = Topology::fat_tree(16).unwrap();
        assert_eq!(big.switch_count(), 320);
        assert_eq!(big.node_count(), 1024);
        assert!(big.is_connected());

        // Odd or too-small radix is rejected with a config error.
        for k in [0, 1, 2, 3, 5, 7] {
            assert!(matches!(Topology::fat_tree(k), Err(RtError::Config(_))));
        }
    }

    #[test]
    fn torus_nd_matches_2d_torus_and_wraps() {
        // The 2-D case reproduces the existing builder switch for switch.
        let nd = Topology::torus_nd(&[4, 4], 2).unwrap();
        assert_eq!(nd.fingerprint(), Topology::torus(4, 4, 2).fingerprint());

        // A 3-D wrap-closed torus: every switch has degree 6.
        let t = Topology::torus_nd(&[3, 3, 3], 1).unwrap();
        assert_eq!(t.switch_count(), 27);
        assert_eq!(t.trunk_count(), 81);
        assert!(t.is_connected());
        for s in 0..27 {
            assert_eq!(t.neighbours(SwitchId::new(s)).count(), 6);
        }

        // Short dimensions degenerate without duplicate trunks, as in 2-D.
        let small = Topology::torus_nd(&[2, 2, 2], 1).unwrap();
        assert_eq!(small.trunk_count(), 12); // a cube, no wraps
        assert!(small.is_connected());

        // Empty, 1-D and zero-length dimensions are rejected.
        assert!(matches!(
            Topology::torus_nd(&[], 1),
            Err(RtError::Config(_))
        ));
        assert!(matches!(
            Topology::torus_nd(&[5], 1),
            Err(RtError::Config(_))
        ));
        assert!(matches!(
            Topology::torus_nd(&[3, 0, 3], 1),
            Err(RtError::Config(_))
        ));
    }

    #[test]
    fn fingerprint_tracks_structure() {
        let a = Topology::line(3, 2);
        let b = Topology::line(3, 2);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut c = Topology::line(3, 2);
        c.add_trunk(SwitchId::new(0), SwitchId::new(2)).unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());
        let mut d = Topology::line(3, 2);
        d.attach_node(NodeId::new(99), SwitchId::new(1)).unwrap();
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn mesh_routes_take_a_shortest_path() {
        // A ring of 4: node 0 on sw0, node 3 on sw3 — one trunk hop via the
        // closing edge, not three through the line.
        let t = Topology::ring(4, 1);
        let route = t.route(NodeId::new(0), NodeId::new(3)).unwrap();
        assert_eq!(
            route,
            vec![
                HopLink::Uplink(NodeId::new(0)),
                HopLink::Trunk {
                    from: SwitchId::new(0),
                    to: SwitchId::new(3)
                },
                HopLink::Downlink(NodeId::new(3)),
            ]
        );
        // Equal-cost pair (sw0 -> sw2): BFS tie-break is deterministic.
        let first = t.route(NodeId::new(0), NodeId::new(2)).unwrap();
        let second = t.route(NodeId::new(0), NodeId::new(2)).unwrap();
        assert_eq!(first, second);
        assert_eq!(first.len(), 4);
    }

    #[test]
    fn switch_paths_and_routes() {
        let t = dumbbell(2, 2);
        assert_eq!(
            t.switch_path(SwitchId::new(0), SwitchId::new(1)),
            Some(vec![SwitchId::new(0), SwitchId::new(1)])
        );
        assert_eq!(
            t.switch_path(SwitchId::new(0), SwitchId::new(0)),
            Some(vec![SwitchId::new(0)])
        );
        assert_eq!(t.switch_path(SwitchId::new(0), SwitchId::new(9)), None);

        let route = t.route(NodeId::new(0), NodeId::new(2)).unwrap();
        assert_eq!(
            route,
            vec![
                HopLink::Uplink(NodeId::new(0)),
                HopLink::Trunk {
                    from: SwitchId::new(0),
                    to: SwitchId::new(1)
                },
                HopLink::Downlink(NodeId::new(2)),
            ]
        );
        let route = t.route(NodeId::new(0), NodeId::new(1)).unwrap();
        assert_eq!(route.len(), 2);
        assert!(t.route(NodeId::new(0), NodeId::new(0)).is_err());
        assert!(t.route(NodeId::new(0), NodeId::new(99)).is_err());
    }

    #[test]
    fn next_hop_table_matches_paths() {
        let t = Topology::line(4, 1);
        let table = t.next_hop_table();
        // sw0 towards sw3 goes via sw1; sw3 towards sw0 via sw2.
        assert_eq!(
            table[&(SwitchId::new(0), SwitchId::new(3))],
            SwitchId::new(1)
        );
        assert_eq!(
            table[&(SwitchId::new(3), SwitchId::new(0))],
            SwitchId::new(2)
        );
        assert_eq!(
            table[&(SwitchId::new(1), SwitchId::new(2))],
            SwitchId::new(2)
        );
        // 4 switches, ordered pairs: 4*3 = 12 entries.
        assert_eq!(table.len(), 12);
    }

    #[test]
    fn fail_and_repair_trunk_round_trips() {
        let mut t = Topology::ring(4, 1);
        let fp_healthy = t.fingerprint();
        assert!(t.has_trunk(SwitchId::new(3), SwitchId::new(0)));

        // Failing the closing trunk degrades the ring to a line.
        t.fail_trunk(SwitchId::new(3), SwitchId::new(0)).unwrap();
        assert!(!t.has_trunk(SwitchId::new(3), SwitchId::new(0)));
        assert!(!t.has_trunk(SwitchId::new(0), SwitchId::new(3)));
        assert_eq!(t.trunk_count(), 3);
        assert!(t.is_connected());
        assert!(t.is_tree());
        assert_eq!(
            t.failed_trunks().collect::<Vec<_>>(),
            vec![(SwitchId::new(0), SwitchId::new(3))]
        );
        // The fingerprint changed, so NextHopCache entries invalidate.
        assert_ne!(t.fingerprint(), fp_healthy);
        // Routing sees the degraded graph: sw0 -> sw3 is now 3 trunk hops.
        assert_eq!(t.route(NodeId::new(0), NodeId::new(3)).unwrap().len(), 5);

        // Double-failing, failing a non-existent trunk and re-adding a
        // failed trunk are all rejected.
        assert!(t.fail_trunk(SwitchId::new(3), SwitchId::new(0)).is_err());
        assert!(t.fail_trunk(SwitchId::new(0), SwitchId::new(2)).is_err());
        assert!(t.add_trunk(SwitchId::new(0), SwitchId::new(3)).is_err());

        // Repair restores the graph and the fingerprint exactly.
        t.repair_trunk(SwitchId::new(0), SwitchId::new(3)).unwrap();
        assert_eq!(t.fingerprint(), fp_healthy);
        assert_eq!(t.failed_trunks().count(), 0);
        assert_eq!(t.route(NodeId::new(0), NodeId::new(3)).unwrap().len(), 3);
        // Repairing a healthy trunk is an error.
        assert!(t.repair_trunk(SwitchId::new(0), SwitchId::new(3)).is_err());
    }

    #[test]
    fn failing_a_bridge_disconnects_the_graph() {
        let mut t = Topology::line(3, 1);
        t.fail_trunk(SwitchId::new(1), SwitchId::new(2)).unwrap();
        assert!(!t.is_connected());
        assert!(t.route(NodeId::new(0), NodeId::new(2)).is_err());
        assert!(!t
            .next_hop_table()
            .contains_key(&(SwitchId::new(0), SwitchId::new(2))));
        t.repair_trunk(SwitchId::new(2), SwitchId::new(1)).unwrap();
        assert!(t.is_connected());
    }

    #[test]
    fn structure_tag_survives_faults_but_not_mutations() {
        let mut ft = Topology::fat_tree(4).unwrap();
        assert_eq!(ft.structure(), Some(&FabricStructure::FatTree { k: 4 }));
        // A cut and its repair describe the same fabric.
        let (a, b) = ft.trunks().next().unwrap();
        ft.fail_trunk(a, b).unwrap();
        assert!(ft.structure().is_some());
        ft.repair_trunk(a, b).unwrap();
        assert!(ft.structure().is_some());
        // An extra trunk does not.
        ft.add_trunk(SwitchId::new(0), SwitchId::new(1)).unwrap();
        assert!(ft.structure().is_none());

        let nd = Topology::torus_nd(&[3, 4], 1).unwrap();
        assert_eq!(
            nd.structure(),
            Some(&FabricStructure::TorusNd { dims: vec![3, 4] })
        );
        // The 2-D builder tags the identical graph identically.
        assert_eq!(Topology::torus(3, 4, 1).structure(), nd.structure());

        let mut weighted = Topology::torus(3, 3, 1);
        weighted
            .set_trunk_cost(SwitchId::new(0), SwitchId::new(1), 5)
            .unwrap();
        assert!(weighted.structure().is_none());

        let mut grown = Topology::torus(3, 3, 1);
        grown.add_switch(SwitchId::new(99));
        assert!(grown.structure().is_none());

        // Hand-built topologies never carry a tag.
        assert!(Topology::ring(4, 1).structure().is_none());
        assert!(Topology::line(3, 1).structure().is_none());
    }

    #[test]
    fn structural_fingerprint_is_fault_invariant() {
        let mut t = Topology::ring(5, 1);
        let healthy = t.structural_fingerprint();
        assert_ne!(healthy, Topology::ring(4, 1).structural_fingerprint());
        t.fail_trunk(SwitchId::new(0), SwitchId::new(1)).unwrap();
        assert_eq!(t.structural_fingerprint(), healthy);
        // The degraded *routing* fingerprint still differs, of course.
        assert_ne!(t.fingerprint(), Topology::ring(5, 1).fingerprint());
        t.fail_trunk(SwitchId::new(2), SwitchId::new(3)).unwrap();
        assert_eq!(t.structural_fingerprint(), healthy);
        t.repair_trunk(SwitchId::new(0), SwitchId::new(1)).unwrap();
        assert_eq!(t.structural_fingerprint(), healthy);
        // A genuinely different healthy graph hashes differently.
        let mut other = Topology::ring(5, 1);
        other.add_trunk(SwitchId::new(0), SwitchId::new(2)).unwrap();
        assert_ne!(other.structural_fingerprint(), healthy);
    }

    #[test]
    fn disconnected_switches_have_no_route() {
        let mut t = Topology::new();
        t.add_switch(SwitchId::new(0));
        t.add_switch(SwitchId::new(1));
        t.attach_node(NodeId::new(0), SwitchId::new(0)).unwrap();
        t.attach_node(NodeId::new(1), SwitchId::new(1)).unwrap();
        assert!(!t.is_connected());
        assert!(t.route(NodeId::new(0), NodeId::new(1)).is_err());
        assert!(t.next_hop_table().is_empty());
    }
}
