//! Deterministic topology partitioners for sharded (parallel) simulation.
//!
//! A shard owns a set of switches — together with their access links and the
//! trunk ports that *originate* at them — and runs its own event scheduler.
//! The partitioner's only job is to split the switch set **deterministically**:
//! the sharded simulator is pinned byte-for-byte against the single-thread
//! oracle, so the assignment must be a pure function of the topology and the
//! shard count, never of iteration order of a hash map or of thread timing.
//!
//! Two strategies are provided:
//!
//! * [`ShardStrategy::Striped`] — switch `i` (in ascending id order) goes to
//!   shard `i mod n`.  Maximises inter-shard trunks; useful as a stress
//!   partition in tests because every trunk is likely a shard boundary.
//! * [`ShardStrategy::BfsRegions`] — a breadth-first traversal from the
//!   lowest switch id (neighbours in ascending id order) is cut into `n`
//!   balanced contiguous regions.  Neighbouring switches tend to share a
//!   shard, so most trunks stay shard-internal and the conservative
//!   synchronisation windows carry less cross-shard traffic.  The default.

use crate::topology::Topology;

/// How [`partition_switches`] splits the switch set across shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardStrategy {
    /// Round-robin over switches in ascending id order.
    Striped,
    /// Balanced contiguous regions of a breadth-first traversal (ascending
    /// id tie-breaking everywhere), keeping neighbourhoods together.
    #[default]
    BfsRegions,
}

impl ShardStrategy {
    /// A short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ShardStrategy::Striped => "striped",
            ShardStrategy::BfsRegions => "bfs-regions",
        }
    }
}

/// Assign every switch of `topology` to one of `shards` shards.
///
/// The result is indexed by the switch's position in
/// [`Topology::switches`] (ascending id order — the same order every dense
/// index in the workspace is built from), and each entry is the owning shard
/// in `0..effective_shards()`.  The shard count is clamped to
/// `1..=switch_count`, so asking for more shards than switches degrades
/// gracefully instead of producing empty workers.
///
/// The assignment is a pure function of `(topology, shards, strategy)`:
/// identical inputs yield identical output on every run and platform.
pub fn partition_switches(topology: &Topology, shards: usize, strategy: ShardStrategy) -> Vec<u32> {
    let count = topology.switch_count();
    let shards = effective_shards(count, shards);
    match strategy {
        ShardStrategy::Striped => (0..count).map(|i| (i % shards) as u32).collect(),
        ShardStrategy::BfsRegions => bfs_regions(topology, count, shards),
    }
}

/// The shard count a partition of `switch_count` switches actually uses:
/// clamped to `1..=switch_count` (and 1 for an empty topology).
pub fn effective_shards(switch_count: usize, shards: usize) -> usize {
    shards.clamp(1, switch_count.max(1))
}

/// Balanced contiguous regions over a deterministic BFS order.
fn bfs_regions(topology: &Topology, count: usize, shards: usize) -> Vec<u32> {
    // Position of each switch in the ascending-id (dense) order.
    let order: Vec<_> = topology.switches().collect();
    let pos_of = |sw| order.binary_search(&sw).expect("switch from this topology");

    // Deterministic BFS: start from the lowest id, visit neighbours in
    // ascending id order, and seed each further connected component from the
    // lowest unvisited id.  (Connected topologies take one seed; the
    // disconnected case still partitions deterministically.)
    let mut visited = vec![false; count];
    let mut bfs_rank = vec![0u32; count];
    let mut next_rank = 0u32;
    let mut frontier = std::collections::VecDeque::new();
    for seed in 0..count {
        if visited[seed] {
            continue;
        }
        visited[seed] = true;
        frontier.push_back(order[seed]);
        while let Some(sw) = frontier.pop_front() {
            bfs_rank[pos_of(sw)] = next_rank;
            next_rank += 1;
            for nb in topology.neighbours(sw) {
                let p = pos_of(nb);
                if !visited[p] {
                    visited[p] = true;
                    frontier.push_back(nb);
                }
            }
        }
    }

    // Cut the BFS order into `shards` balanced contiguous regions:
    // rank r goes to shard ⌊r·shards/count⌋ — region sizes differ by at
    // most one, and every shard is non-empty because shards ≤ count.
    bfs_rank
        .into_iter()
        .map(|r| (r as usize * shards / count) as u32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u32) -> Topology {
        Topology::line(n, 1)
    }

    #[test]
    fn striped_round_robins_in_id_order() {
        let t = line(5);
        assert_eq!(
            partition_switches(&t, 2, ShardStrategy::Striped),
            vec![0, 1, 0, 1, 0]
        );
    }

    #[test]
    fn bfs_regions_keep_neighbours_together_on_a_line() {
        let t = line(6);
        // BFS from switch 0 on a line is just the line order; 2 shards cut
        // it in half.
        assert_eq!(
            partition_switches(&t, 2, ShardStrategy::BfsRegions),
            vec![0, 0, 0, 1, 1, 1]
        );
    }

    #[test]
    fn shard_count_clamps_to_switch_count() {
        let t = line(3);
        for strategy in [ShardStrategy::Striped, ShardStrategy::BfsRegions] {
            let part = partition_switches(&t, 16, strategy);
            assert_eq!(part.len(), 3);
            assert!(part.iter().all(|&s| s < 3));
        }
        assert_eq!(effective_shards(3, 16), 3);
        assert_eq!(effective_shards(3, 0), 1);
    }

    #[test]
    fn every_shard_is_non_empty_and_assignment_is_deterministic() {
        let t = Topology::torus(4, 4, 2);
        for strategy in [ShardStrategy::Striped, ShardStrategy::BfsRegions] {
            for shards in 1..=8 {
                let a = partition_switches(&t, shards, strategy);
                let b = partition_switches(&t, shards, strategy);
                assert_eq!(a, b, "partition must be deterministic");
                for s in 0..shards as u32 {
                    assert!(
                        a.contains(&s),
                        "{strategy:?} with {shards} shards left shard {s} empty: {a:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn bfs_regions_are_balanced() {
        let t = line(10);
        let part = partition_switches(&t, 4, ShardStrategy::BfsRegions);
        let mut sizes = [0usize; 4];
        for &s in &part {
            sizes[s as usize] += 1;
        }
        let (min, max) = (
            *sizes.iter().min().expect("non-empty"),
            *sizes.iter().max().expect("non-empty"),
        );
        assert!(max - min <= 1, "unbalanced regions: {sizes:?}");
    }
}
