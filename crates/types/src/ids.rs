//! Identifiers for nodes, ports, links, RT channels and connection requests.
//!
//! The paper identifies an RT channel by a *network-unique* 16-bit ID that
//! the switch assigns during establishment, and a connection request by an
//! 8-bit *source-node-unique* ID so that a node can match responses to its
//! outstanding requests.  Links are identified by the end-node they attach to
//! plus a direction — because the network is a star, every link connects one
//! node to the switch, and full duplex makes the two directions independent
//! scheduling resources ("two CPUs" in the paper's analogy).

use std::fmt;

/// Identifier of an end node (or the switch itself) in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Conventional identifier for the switch in a single-switch star.
    pub const SWITCH: NodeId = NodeId(u32::MAX);

    /// Construct a node id.
    pub const fn new(id: u32) -> Self {
        NodeId(id)
    }

    /// Raw value.
    pub const fn get(self) -> u32 {
        self.0
    }

    /// `true` if this id denotes the switch.
    pub const fn is_switch(self) -> bool {
        self.0 == u32::MAX
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_switch() {
            write!(f, "switch")
        } else {
            write!(f, "node{}", self.0)
        }
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Identifier of a switch output port.  In the star topology port `n` leads
/// to node `n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub u32);

impl PortId {
    /// Construct a port id.
    pub const fn new(id: u32) -> Self {
        PortId(id)
    }

    /// Raw value.
    pub const fn get(self) -> u32 {
        self.0
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "port{}", self.0)
    }
}

/// Network-unique identifier of an established RT channel (16 bits on the
/// wire, Figure 18.3/18.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelId(pub u16);

impl ChannelId {
    /// Construct a channel id.
    pub const fn new(id: u16) -> Self {
        ChannelId(id)
    }

    /// Raw value.
    pub const fn get(self) -> u16 {
        self.0
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

impl From<u16> for ChannelId {
    fn from(v: u16) -> Self {
        ChannelId(v)
    }
}

/// Source-node-unique identifier of an outstanding connection request
/// (8 bits on the wire, Figure 18.3/18.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConnectionRequestId(pub u8);

impl ConnectionRequestId {
    /// Construct a connection-request id.
    pub const fn new(id: u8) -> Self {
        ConnectionRequestId(id)
    }

    /// Raw value.
    pub const fn get(self) -> u8 {
        self.0
    }
}

impl fmt::Display for ConnectionRequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req{}", self.0)
    }
}

/// Direction of a link relative to the switch.
///
/// An RT channel always traverses exactly two directed links: the *uplink*
/// from the source node into the switch, and the *downlink* from the switch
/// to the destination node.  Because links are full duplex the two directions
/// of one physical cable are scheduled independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LinkDirection {
    /// Node → switch.
    Uplink,
    /// Switch → node.
    Downlink,
}

impl LinkDirection {
    /// The opposite direction.
    pub const fn opposite(self) -> LinkDirection {
        match self {
            LinkDirection::Uplink => LinkDirection::Downlink,
            LinkDirection::Downlink => LinkDirection::Uplink,
        }
    }

    /// Both directions, uplink first.
    pub const fn both() -> [LinkDirection; 2] {
        [LinkDirection::Uplink, LinkDirection::Downlink]
    }
}

impl fmt::Display for LinkDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkDirection::Uplink => write!(f, "uplink"),
            LinkDirection::Downlink => write!(f, "downlink"),
        }
    }
}

/// A directed link in the star network: the physical cable of `node` taken in
/// `direction`.  This is the unit on which the per-link EDF feasibility test
/// runs ("each link organises two independent CPUs").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId {
    /// The end node whose cable this is.
    pub node: NodeId,
    /// Which of the two full-duplex directions.
    pub direction: LinkDirection,
}

impl LinkId {
    /// The uplink of `node` (node → switch).
    pub const fn uplink(node: NodeId) -> Self {
        LinkId {
            node,
            direction: LinkDirection::Uplink,
        }
    }

    /// The downlink of `node` (switch → node).
    pub const fn downlink(node: NodeId) -> Self {
        LinkId {
            node,
            direction: LinkDirection::Downlink,
        }
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.node, self.direction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn node_id_switch_sentinel() {
        assert!(NodeId::SWITCH.is_switch());
        assert!(!NodeId::new(0).is_switch());
        assert_eq!(format!("{}", NodeId::SWITCH), "switch");
        assert_eq!(format!("{}", NodeId::new(3)), "node3");
    }

    #[test]
    fn link_direction_opposite() {
        assert_eq!(LinkDirection::Uplink.opposite(), LinkDirection::Downlink);
        assert_eq!(LinkDirection::Downlink.opposite(), LinkDirection::Uplink);
        assert_eq!(LinkDirection::both().len(), 2);
    }

    #[test]
    fn link_id_constructors() {
        let n = NodeId::new(7);
        assert_eq!(
            LinkId::uplink(n),
            LinkId {
                node: n,
                direction: LinkDirection::Uplink
            }
        );
        assert_eq!(LinkId::downlink(n).direction, LinkDirection::Downlink);
        assert_eq!(format!("{}", LinkId::uplink(n)), "node7/uplink");
    }

    #[test]
    fn ids_are_hashable_and_distinct() {
        let mut set = HashSet::new();
        for i in 0..10 {
            set.insert(LinkId::uplink(NodeId::new(i)));
            set.insert(LinkId::downlink(NodeId::new(i)));
        }
        assert_eq!(set.len(), 20);
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", ChannelId::new(5)), "ch5");
        assert_eq!(format!("{}", ConnectionRequestId::new(2)), "req2");
        assert_eq!(format!("{}", PortId::new(1)), "port1");
        assert_eq!(format!("{}", LinkDirection::Uplink), "uplink");
    }
}
