//! MAC and IPv4 addresses as they appear in the paper's frame formats.
//!
//! The RequestFrame (Figure 18.3) carries source and destination MAC and IP
//! addresses; the RT data-frame encoding (§18.2.2) overwrites the IP source
//! address and the upper half of the IP destination address with the absolute
//! deadline, so both addresses need cheap conversion to and from raw bits.

use std::fmt;
use std::str::FromStr;

use crate::error::RtError;
use crate::ids::NodeId;

/// A 48-bit IEEE 802 MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);
    /// The all-zero address.
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Construct from raw octets.
    pub const fn new(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }

    /// The raw octets.
    pub const fn octets(self) -> [u8; 6] {
        self.0
    }

    /// Construct from the low 48 bits of a `u64`.
    pub const fn from_u64(v: u64) -> Self {
        let b = v.to_be_bytes();
        MacAddr([b[2], b[3], b[4], b[5], b[6], b[7]])
    }

    /// The address as the low 48 bits of a `u64`.
    pub const fn to_u64(self) -> u64 {
        let o = self.0;
        ((o[0] as u64) << 40)
            | ((o[1] as u64) << 32)
            | ((o[2] as u64) << 24)
            | ((o[3] as u64) << 16)
            | ((o[4] as u64) << 8)
            | (o[5] as u64)
    }

    /// A locally-administered unicast MAC address derived deterministically
    /// from a node id — convenient for simulated networks.
    pub const fn for_node(node: NodeId) -> Self {
        let n = node.get();
        MacAddr([
            0x02, // locally administered, unicast
            0x00,
            ((n >> 24) & 0xff) as u8,
            ((n >> 16) & 0xff) as u8,
            ((n >> 8) & 0xff) as u8,
            (n & 0xff) as u8,
        ])
    }

    /// The MAC address used for the switch in simulated networks.
    ///
    /// This is the *generic* switch address: a node addressing its control
    /// frames here reaches "the control plane", wherever it runs — the
    /// managing switch under central management, the node's access switch
    /// under distributed management.  Switch-to-switch control traffic uses
    /// the per-switch [`MacAddr::for_switch_id`] addresses instead.
    pub const fn for_switch() -> Self {
        MacAddr([0x02, 0xff, 0xff, 0xff, 0xff, 0xfe])
    }

    /// The per-switch control-plane MAC address of one specific switch,
    /// derived deterministically from its id.  Distinct from every
    /// [`MacAddr::for_node`] address (`02:00:…`) and from the generic
    /// [`MacAddr::for_switch`] address (`02:ff:…`).
    pub const fn for_switch_id(switch: crate::topology::SwitchId) -> Self {
        let s = switch.get();
        MacAddr([
            0x02,
            0xfe,
            ((s >> 24) & 0xff) as u8,
            ((s >> 16) & 0xff) as u8,
            ((s >> 8) & 0xff) as u8,
            (s & 0xff) as u8,
        ])
    }

    /// The switch id a [`MacAddr::for_switch_id`] address encodes, or `None`
    /// for any other address.
    pub const fn switch_id(self) -> Option<crate::topology::SwitchId> {
        let o = self.0;
        if o[0] != 0x02 || o[1] != 0xfe {
            return None;
        }
        Some(crate::topology::SwitchId::new(
            ((o[2] as u32) << 24) | ((o[3] as u32) << 16) | ((o[4] as u32) << 8) | (o[5] as u32),
        ))
    }

    /// `true` if this is the broadcast address.
    pub const fn is_broadcast(self) -> bool {
        self.to_u64() == 0xffff_ffff_ffff
    }

    /// `true` if the group (multicast/broadcast) bit is set.
    pub const fn is_multicast(self) -> bool {
        self.0[0] & 0x01 != 0
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            o[0], o[1], o[2], o[3], o[4], o[5]
        )
    }
}

impl FromStr for MacAddr {
    type Err = RtError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() != 6 {
            return Err(RtError::AddressParse(format!(
                "expected 6 colon-separated octets, got {}",
                parts.len()
            )));
        }
        let mut octets = [0u8; 6];
        for (i, p) in parts.iter().enumerate() {
            octets[i] = u8::from_str_radix(p, 16)
                .map_err(|e| RtError::AddressParse(format!("bad MAC octet {p:?}: {e}")))?;
        }
        Ok(MacAddr(octets))
    }
}

/// A 32-bit IPv4 address.
///
/// A local wrapper (rather than `std::net::Ipv4Addr`) so that the deadline
/// overwriting trick of §18.2.2 — treating the address bytes as plain bits —
/// is explicit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ipv4Address(pub [u8; 4]);

impl Ipv4Address {
    /// `0.0.0.0`.
    pub const UNSPECIFIED: Ipv4Address = Ipv4Address([0; 4]);

    /// Construct from octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4Address([a, b, c, d])
    }

    /// Construct from raw octets.
    pub const fn from_octets(octets: [u8; 4]) -> Self {
        Ipv4Address(octets)
    }

    /// The raw octets.
    pub const fn octets(self) -> [u8; 4] {
        self.0
    }

    /// Construct from a `u32` in network bit order.
    pub const fn from_u32(v: u32) -> Self {
        Ipv4Address(v.to_be_bytes())
    }

    /// The address as a `u32` in network bit order.
    pub const fn to_u32(self) -> u32 {
        u32::from_be_bytes(self.0)
    }

    /// A `10.0.x.y` address derived deterministically from a node id for
    /// simulated networks.
    pub const fn for_node(node: NodeId) -> Self {
        let n = node.get();
        Ipv4Address([10, 0, ((n >> 8) & 0xff) as u8, (n & 0xff) as u8])
    }

    /// The IPv4 address used for the switch management entity in simulated
    /// networks.
    pub const fn for_switch() -> Self {
        Ipv4Address([10, 0, 255, 254])
    }
}

impl fmt::Display for Ipv4Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.0;
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

impl FromStr for Ipv4Address {
    type Err = RtError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split('.').collect();
        if parts.len() != 4 {
            return Err(RtError::AddressParse(format!(
                "expected 4 dot-separated octets, got {}",
                parts.len()
            )));
        }
        let mut octets = [0u8; 4];
        for (i, p) in parts.iter().enumerate() {
            octets[i] = p
                .parse::<u8>()
                .map_err(|e| RtError::AddressParse(format!("bad IPv4 octet {p:?}: {e}")))?;
        }
        Ok(Ipv4Address(octets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_u64_round_trip() {
        let m = MacAddr::new([0x02, 0x00, 0x00, 0x00, 0x01, 0x2a]);
        assert_eq!(MacAddr::from_u64(m.to_u64()), m);
        assert_eq!(MacAddr::BROADCAST.to_u64(), 0xffff_ffff_ffff);
        assert_eq!(MacAddr::from_u64(0xffff_ffff_ffff), MacAddr::BROADCAST);
    }

    #[test]
    fn mac_display_and_parse() {
        let m = MacAddr::new([0xde, 0xad, 0xbe, 0xef, 0x00, 0x01]);
        let s = m.to_string();
        assert_eq!(s, "de:ad:be:ef:00:01");
        assert_eq!(s.parse::<MacAddr>().unwrap(), m);
        assert!("de:ad:be:ef:00".parse::<MacAddr>().is_err());
        assert!("zz:ad:be:ef:00:01".parse::<MacAddr>().is_err());
    }

    #[test]
    fn mac_for_node_is_unique_and_unicast() {
        let a = MacAddr::for_node(NodeId::new(1));
        let b = MacAddr::for_node(NodeId::new(2));
        assert_ne!(a, b);
        assert!(!a.is_multicast());
        assert!(!MacAddr::for_switch().is_multicast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(!a.is_broadcast());
    }

    #[test]
    fn ipv4_u32_round_trip() {
        let a = Ipv4Address::new(192, 168, 1, 42);
        assert_eq!(Ipv4Address::from_u32(a.to_u32()), a);
        assert_eq!(a.to_u32(), 0xc0a8_012a);
    }

    #[test]
    fn ipv4_display_and_parse() {
        let a = Ipv4Address::new(10, 0, 0, 7);
        assert_eq!(a.to_string(), "10.0.0.7");
        assert_eq!("10.0.0.7".parse::<Ipv4Address>().unwrap(), a);
        assert!("10.0.0".parse::<Ipv4Address>().is_err());
        assert!("10.0.0.300".parse::<Ipv4Address>().is_err());
    }

    #[test]
    fn per_node_addresses_are_distinct() {
        let a = Ipv4Address::for_node(NodeId::new(3));
        let b = Ipv4Address::for_node(NodeId::new(259));
        assert_ne!(a, b);
        assert_ne!(Ipv4Address::for_switch(), a);
        assert_ne!(MacAddr::for_switch(), MacAddr::for_node(NodeId::new(3)));
    }
}
