//! # rt-types
//!
//! Foundation types shared by every crate in the switched real-time Ethernet
//! workspace: the slot/nanosecond time model, node / channel / link
//! identifiers, MAC and IPv4 addresses, Ethernet constants and the common
//! error type.
//!
//! The paper (Hoang & Jonsson, 2004) expresses every traffic parameter — the
//! period `P_i`, the capacity `C_i` and the relative deadline `d_i` of an RT
//! channel — in *number of maximum-sized frames*, i.e. in time slots whose
//! length is the time it takes to put one maximum-sized Ethernet frame on the
//! wire.  [`time::Slots`] models that unit; [`time::SimTime`] is the
//! nanosecond-resolution clock used by the discrete-event simulator, and
//! [`time::LinkSpeed`] converts between the two.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod constants;
pub mod dense;
pub mod error;
pub mod ids;
pub mod partition;
pub mod rng;
pub mod router;
pub mod structural;
pub mod time;
pub mod topology;

pub use addr::{Ipv4Address, MacAddr};
pub use constants::*;
pub use dense::{IdIndex, NO_INDEX};
pub use error::{RtError, RtResult};
pub use ids::{ChannelId, ConnectionRequestId, LinkDirection, LinkId, NodeId, PortId};
pub use partition::{effective_shards, partition_switches, ShardStrategy};
pub use rng::Xoshiro256;
pub use router::{
    DenseNextHop, EcmpRouter, KShortestRouter, NextHopCache, NextHopCacheStats, NextHopTable,
    Route, Router, ShortestPathRouter, TreeRouter,
};
pub use structural::StructuralRouter;
pub use time::{Duration, LinkSpeed, SimTime, Slots};
pub use topology::{FabricStructure, HopLink, ManagerPlacement, SwitchId, Topology};
