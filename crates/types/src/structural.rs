//! Table-free structural routing for coordinate-addressable fabrics.
//!
//! `fat_tree(k)` and `torus_nd` assign switch ids by coordinate, so
//! shortest-path distances — and therefore next hops — have closed forms.
//! This module evaluates them directly: a forwarding decision is a handful
//! of integer operations, no all-pairs table, no O(V·E) rebuild when the
//! topology fingerprint flips under fault churn.
//!
//! The closed forms reproduce [`crate::topology::Topology::next_hop_table`]
//! *byte for byte* on healthy fabrics.  That table is built by BFS with an
//! ascending-id neighbour scan and first-finder parents, which yields for
//! every pair the lexicographically-minimal shortest path; consequently its
//! entry for `(s, t)` is exactly the minimum-id neighbour `u` of `s` with
//! `dist(u, t) == dist(s, t) - 1`.  [`FabricStructure::next_hop`] computes
//! that minimum directly from the closed-form distance, so the structural
//! and tabled answers cannot disagree on a healthy fabric — a property the
//! test suite checks switch by switch.
//!
//! Faults are handled by exception, not by abandoning the closed form: the
//! [`crate::router::NextHopCache`] keeps a small per-destination detour
//! overlay for exactly those destinations whose healthy lex-min tree uses a
//! failed trunk (see `NextHopCache`'s structural mode).  Healthy traffic
//! keeps the O(1) decision path.

use std::fmt;

use crate::error::{RtError, RtResult};
use crate::ids::NodeId;
use crate::router::{walk_dense, NextHopCache, NextHopCacheStats, Route, Router};
use crate::topology::{FabricStructure, Topology};

impl FabricStructure {
    /// Number of switches the structure describes.
    pub fn switch_count(&self) -> u32 {
        match self {
            FabricStructure::FatTree { k } => {
                let h = k / 2;
                h * h + k * k
            }
            FabricStructure::TorusNd { dims } => dims.iter().product(),
        }
    }

    /// Closed-form shortest-path distance (in trunk hops) between two
    /// switches of the healthy fabric.  `None` only for out-of-range ids —
    /// both builder fabrics are connected.
    pub fn distance(&self, a: u32, b: u32) -> Option<u32> {
        let n = self.switch_count();
        if a >= n || b >= n {
            return None;
        }
        if a == b {
            return Some(0);
        }
        Some(match self {
            FabricStructure::FatTree { k } => fat_tree_distance(*k, a, b),
            FabricStructure::TorusNd { dims } => torus_distance(dims, a, b),
        })
    }

    /// Visit every neighbour of `s` in the healthy fabric (order
    /// unspecified; no allocation).
    fn for_each_neighbour(&self, s: u32, f: &mut dyn FnMut(u32)) {
        match self {
            FabricStructure::FatTree { k } => fat_tree_neighbours(*k, s, f),
            FabricStructure::TorusNd { dims } => torus_neighbours(dims, s, f),
        }
    }

    /// The neighbours of `s`, ascending — matches
    /// [`crate::topology::Topology::neighbours`] on the healthy fabric.
    pub fn neighbours(&self, s: u32) -> Vec<u32> {
        let mut out = Vec::new();
        if s < self.switch_count() {
            self.for_each_neighbour(s, &mut |n| out.push(n));
            out.sort_unstable();
            out.dedup();
        }
        out
    }

    /// The next hop from `at` towards `towards` on the healthy fabric: the
    /// minimum-id neighbour of `at` that is one hop closer to `towards`.
    /// This is exactly the entry the tabled BFS build produces (lex-min
    /// shortest paths), computed in O(degree) integer ops with no lookup
    /// table and no allocation.
    pub fn next_hop(&self, at: u32, towards: u32) -> Option<u32> {
        if at == towards {
            return None;
        }
        let d = self.distance(at, towards)?;
        let mut best: Option<u32> = None;
        self.for_each_neighbour(at, &mut |nb| {
            if self.distance(nb, towards) == Some(d - 1) && best.is_none_or(|b| nb < b) {
                best = Some(nb);
            }
        });
        best
    }
}

/// Role of a fat-tree switch, recovered from its id.
///
/// `fat_tree(k)` lays ids out as: cores `0..h²` (`h = k/2`, core `c` in
/// *group* `c / h`), then per pod `p` (of `k` pods) the `h` aggregation
/// switches `h² + p·k + j` followed by the `h` edge switches
/// `h² + p·k + h + e`.  Trunks: `agg(p, j)` ↔ cores of group `j`, and
/// `edge(p, e)` ↔ every `agg(p, ·)`.
enum FtClass {
    Core { group: u32 },
    Agg { pod: u32, idx: u32 },
    Edge { pod: u32 },
}

fn ft_class(k: u32, s: u32) -> FtClass {
    let h = k / 2;
    let h2 = h * h;
    if s < h2 {
        FtClass::Core { group: s / h }
    } else {
        let r = s - h2;
        let pod = r / k;
        let offset = r % k;
        if offset < h {
            FtClass::Agg { pod, idx: offset }
        } else {
            FtClass::Edge { pod }
        }
    }
}

fn fat_tree_distance(k: u32, a: u32, b: u32) -> u32 {
    use FtClass::*;
    debug_assert_ne!(a, b);
    match (ft_class(k, a), ft_class(k, b)) {
        (Core { group: g1 }, Core { group: g2 }) => {
            if g1 == g2 {
                2 // both hang off every pod's agg(·, g1)
            } else {
                4 // core → agg → edge → agg' → core'
            }
        }
        (Core { group }, Agg { idx, .. }) | (Agg { idx, .. }, Core { group }) => {
            if group == idx {
                1
            } else {
                3 // agg → edge → agg' → core
            }
        }
        (Core { .. }, Edge { .. }) | (Edge { .. }, Core { .. }) => 2,
        (Agg { pod: p1, idx: j1 }, Agg { pod: p2, idx: j2 }) => {
            if p1 == p2 || j1 == j2 {
                2 // same pod: via a shared edge; same group: via a shared core
            } else {
                4
            }
        }
        (Agg { pod: p1, .. }, Edge { pod: p2 }) | (Edge { pod: p2 }, Agg { pod: p1, .. }) => {
            if p1 == p2 {
                1
            } else {
                3 // edge → agg(p2, j) → core → agg(p1, j)
            }
        }
        (Edge { pod: p1 }, Edge { pod: p2 }) => {
            if p1 == p2 {
                2
            } else {
                4
            }
        }
    }
}

fn fat_tree_neighbours(k: u32, s: u32, f: &mut dyn FnMut(u32)) {
    let h = k / 2;
    let h2 = h * h;
    match ft_class(k, s) {
        FtClass::Core { group } => {
            for p in 0..k {
                f(h2 + p * k + group);
            }
        }
        FtClass::Agg { pod, idx } => {
            for c in idx * h..(idx + 1) * h {
                f(c);
            }
            for e in 0..h {
                f(h2 + pod * k + h + e);
            }
        }
        FtClass::Edge { pod } => {
            for j in 0..h {
                f(h2 + pod * k + j);
            }
        }
    }
}

fn torus_distance(dims: &[u32], a: u32, b: u32) -> u32 {
    // Row-major ids, last dimension fastest: peel coordinates from the
    // least significant dimension.  Per-dimension distance is the shorter
    // way around the ring (the builder adds the wrap trunk for len >= 3;
    // for len == 2 the single trunk makes min(delta, len - delta) = delta).
    let mut ra = a;
    let mut rb = b;
    let mut total = 0;
    for &len in dims.iter().rev() {
        let ca = ra % len;
        let cb = rb % len;
        ra /= len;
        rb /= len;
        let delta = ca.abs_diff(cb);
        total += delta.min(len - delta);
    }
    total
}

fn torus_neighbours(dims: &[u32], s: u32, f: &mut dyn FnMut(u32)) {
    let mut stride = 1u32;
    for &len in dims.iter().rev() {
        let coord = (s / stride) % len;
        if len >= 2 {
            let down = if coord == 0 { len - 1 } else { coord - 1 };
            let up = if coord + 1 == len { 0 } else { coord + 1 };
            let base = s - coord * stride;
            f(base + down * stride);
            if up != down {
                f(base + up * stride);
            }
        }
        stride *= len;
    }
}

/// Table-free routing for coordinate-addressable fabrics: next hops are
/// computed from switch coordinates via [`FabricStructure`], so routing
/// state is O(V) (the id index) instead of O(V·E), and a fault-churn
/// fingerprint flip costs a per-destination detour scan instead of a full
/// table rebuild.
///
/// Requires a topology built by [`Topology::fat_tree`] or
/// [`Topology::torus_nd`]/[`Topology::torus`] (which tag their structure);
/// structural mutations clear the tag and are rejected by
/// [`Router::validate`].  Under faults the router stays *exact*: it serves
/// detours from a per-destination overlay that is byte-identical to what
/// [`crate::router::ShortestPathRouter`] would compute on the degraded
/// graph, so admission and delivery sequences are reproducible across both
/// routers, healthy or degraded.
pub struct StructuralRouter {
    cache: NextHopCache,
}

impl StructuralRouter {
    /// Create a structural router with the default cache capacity.
    pub fn new() -> Self {
        StructuralRouter {
            cache: NextHopCache::structural(),
        }
    }

    /// Create a structural router whose fingerprint cache keeps up to
    /// `capacity` fabric states resident.
    pub fn with_cache_capacity(capacity: usize) -> Self {
        StructuralRouter {
            cache: NextHopCache::structural_with_capacity(capacity),
        }
    }

    /// Cache counters (hits, misses, rebuild kinds) for observability.
    pub fn cache_stats(&self) -> NextHopCacheStats {
        self.cache.stats()
    }
}

impl Default for StructuralRouter {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for StructuralRouter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StructuralRouter").finish()
    }
}

impl Router for StructuralRouter {
    fn name(&self) -> &'static str {
        "structural"
    }

    fn validate(&self, topology: &Topology) -> RtResult<()> {
        if topology.structure().is_none() {
            return Err(RtError::Config(
                "StructuralRouter needs structural metadata: build the fabric with \
                 Topology::fat_tree or Topology::torus_nd (structural mutations clear the tag)"
                    .into(),
            ));
        }
        if !topology.has_uniform_cost() {
            return Err(RtError::Config(
                "StructuralRouter requires uniform trunk costs (hop-count closed forms)".into(),
            ));
        }
        if !topology.is_connected() {
            return Err(RtError::Config("the switch graph must be connected".into()));
        }
        Ok(())
    }

    fn route(&self, topology: &Topology, source: NodeId, destination: NodeId) -> RtResult<Route> {
        walk_dense(
            &self.cache.get_dense(topology),
            topology,
            source,
            destination,
        )
    }

    fn next_hop_cache(&self) -> Option<&NextHopCache> {
        Some(&self.cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::SwitchId;
    use std::collections::BTreeMap;

    /// BFS distances from `from` over the topology's trunk graph.
    fn bfs_distances(t: &Topology, from: SwitchId) -> BTreeMap<SwitchId, u32> {
        let mut dist = BTreeMap::from([(from, 0u32)]);
        let mut queue = std::collections::VecDeque::from([from]);
        while let Some(current) = queue.pop_front() {
            let d = dist[&current];
            for next in t.neighbours(current) {
                dist.entry(next).or_insert_with(|| {
                    queue.push_back(next);
                    d + 1
                });
            }
        }
        dist
    }

    fn assert_structure_matches_graph(t: &Topology) {
        let s = t.structure().expect("builder tags structure").clone();
        assert_eq!(s.switch_count() as usize, t.switch_count());
        let table = t.next_hop_table();
        for a in t.switches() {
            // Closed-form neighbours match the real adjacency, ascending.
            let graph: Vec<u32> = t.neighbours(a).map(|n| n.get()).collect();
            assert_eq!(s.neighbours(a.get()), graph, "neighbours of {a}");
            let dist = bfs_distances(t, a);
            for b in t.switches() {
                assert_eq!(
                    s.distance(a.get(), b.get()),
                    dist.get(&b).copied(),
                    "distance {a} -> {b}"
                );
                let expected = table.get(&(a, b)).map(|n| n.get());
                assert_eq!(
                    s.next_hop(a.get(), b.get()),
                    expected,
                    "next hop {a} -> {b}"
                );
            }
        }
    }

    #[test]
    fn fat_tree_closed_forms_match_the_graph() {
        for k in [4u32, 6] {
            let t = Topology::fat_tree(k).unwrap();
            assert_structure_matches_graph(&t);
        }
    }

    #[test]
    fn torus_closed_forms_match_the_graph() {
        for dims in [vec![3u32, 4], vec![2, 3], vec![2, 2, 3], vec![1, 4]] {
            let t = Topology::torus_nd(&dims, 1).unwrap();
            assert_structure_matches_graph(&t);
        }
    }

    #[test]
    fn out_of_range_ids_have_no_closed_form() {
        let t = Topology::fat_tree(4).unwrap();
        let s = t.structure().unwrap();
        let n = s.switch_count();
        assert_eq!(s.distance(0, n), None);
        assert_eq!(s.next_hop(n, 0), None);
        assert!(s.neighbours(n).is_empty());
        assert_eq!(s.next_hop(3, 3), None);
    }

    #[test]
    fn structural_router_validates_structure_and_cost() {
        let router = StructuralRouter::new();
        let t = Topology::fat_tree(4).unwrap();
        router.validate(&t).unwrap();

        // No structural tag: rejected with a pointer at the builders.
        let ring = Topology::ring(4, 1);
        let err = router.validate(&ring).unwrap_err().to_string();
        assert!(err.contains("fat_tree"), "{err}");

        // Structural mutations clear the tag and therefore reject.
        let mut mutated = Topology::fat_tree(4).unwrap();
        mutated.add_switch(SwitchId::new(999));
        assert!(router.validate(&mutated).is_err());

        // Weighted trunks break the hop-count closed forms.
        let mut weighted = Topology::torus_nd(&[3, 3], 1).unwrap();
        // set_trunk_cost with cost != 1 clears the tag.
        weighted
            .set_trunk_cost(SwitchId::new(0), SwitchId::new(1), 3)
            .unwrap();
        assert!(router.validate(&weighted).is_err());
    }

    #[test]
    fn structural_router_routes_like_shortest_path() {
        use crate::router::ShortestPathRouter;
        let t = Topology::fat_tree(4).unwrap();
        let structural = StructuralRouter::new();
        let tabled = ShortestPathRouter::new();
        for src in 0..8u32 {
            for dst in 8..16u32 {
                let a = structural
                    .route(&t, NodeId::new(src), NodeId::new(dst))
                    .unwrap();
                let b = tabled
                    .route(&t, NodeId::new(src), NodeId::new(dst))
                    .unwrap();
                assert_eq!(a, b, "{src} -> {dst}");
            }
        }
    }
}
