//! Time model: paper-level time slots and simulator-level nanoseconds.
//!
//! The admission-control mathematics in the paper operates on integer
//! *slots*: one slot is the time needed to transmit one maximum-sized
//! Ethernet frame (including preamble and inter-frame gap) on the link.  The
//! discrete-event simulator, on the other hand, operates on nanoseconds so
//! that propagation delays, switching latency and frames of different sizes
//! can be modelled faithfully.  [`LinkSpeed`] ties the two together.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

use crate::constants::MAX_FRAME_WIRE_BYTES;

/// A number of time slots (paper unit: transmission times of a maximum-sized
/// frame).
///
/// All RT-channel parameters (`P_i`, `C_i`, `d_i`) are expressed in slots.
/// The type is a thin newtype over `u64` with saturating-free checked
/// arithmetic in debug builds (regular `+`/`-` panics on overflow there) and
/// explicit helpers for the few places where saturation is wanted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Slots(pub u64);

impl Slots {
    /// Zero slots.
    pub const ZERO: Slots = Slots(0);
    /// One slot.
    pub const ONE: Slots = Slots(1);
    /// The largest representable slot count.
    pub const MAX: Slots = Slots(u64::MAX);

    /// Construct from a raw slot count.
    #[inline]
    pub const fn new(slots: u64) -> Self {
        Slots(slots)
    }

    /// The raw slot count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// `true` if this is zero slots.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked addition.
    #[inline]
    pub fn checked_add(self, rhs: Slots) -> Option<Slots> {
        self.0.checked_add(rhs.0).map(Slots)
    }

    /// Checked subtraction.
    #[inline]
    pub fn checked_sub(self, rhs: Slots) -> Option<Slots> {
        self.0.checked_sub(rhs.0).map(Slots)
    }

    /// Checked multiplication by a scalar.
    #[inline]
    pub fn checked_mul(self, rhs: u64) -> Option<Slots> {
        self.0.checked_mul(rhs).map(Slots)
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, rhs: Slots) -> Slots {
        Slots(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction (floors at zero).
    #[inline]
    pub fn saturating_sub(self, rhs: Slots) -> Slots {
        Slots(self.0.saturating_sub(rhs.0))
    }

    /// Saturating multiplication by a scalar.
    #[inline]
    pub fn saturating_mul(self, rhs: u64) -> Slots {
        Slots(self.0.saturating_mul(rhs))
    }

    /// Integer division, rounding down.
    #[inline]
    pub fn div_floor(self, rhs: Slots) -> u64 {
        debug_assert!(rhs.0 != 0, "division by zero slots");
        self.0 / rhs.0
    }

    /// Integer division, rounding up.
    #[inline]
    pub fn div_ceil(self, rhs: Slots) -> u64 {
        debug_assert!(rhs.0 != 0, "division by zero slots");
        self.0.div_ceil(rhs.0)
    }

    /// The smaller of two slot counts.
    #[inline]
    pub fn min(self, other: Slots) -> Slots {
        Slots(self.0.min(other.0))
    }

    /// The larger of two slot counts.
    #[inline]
    pub fn max(self, other: Slots) -> Slots {
        Slots(self.0.max(other.0))
    }

    /// Least common multiple of two slot counts, `None` on overflow.
    pub fn checked_lcm(self, other: Slots) -> Option<Slots> {
        if self.0 == 0 || other.0 == 0 {
            return Some(Slots::ZERO);
        }
        let g = gcd(self.0, other.0);
        (self.0 / g).checked_mul(other.0).map(Slots)
    }
}

/// Greatest common divisor (Euclid).
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl fmt::Display for Slots {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} slot(s)", self.0)
    }
}

impl From<u64> for Slots {
    fn from(v: u64) -> Self {
        Slots(v)
    }
}

impl From<u32> for Slots {
    fn from(v: u32) -> Self {
        Slots(v as u64)
    }
}

impl Add for Slots {
    type Output = Slots;
    #[inline]
    fn add(self, rhs: Slots) -> Slots {
        Slots(self.0 + rhs.0)
    }
}

impl AddAssign for Slots {
    #[inline]
    fn add_assign(&mut self, rhs: Slots) {
        self.0 += rhs.0;
    }
}

impl Sub for Slots {
    type Output = Slots;
    #[inline]
    fn sub(self, rhs: Slots) -> Slots {
        Slots(self.0 - rhs.0)
    }
}

impl SubAssign for Slots {
    #[inline]
    fn sub_assign(&mut self, rhs: Slots) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Slots {
    type Output = Slots;
    #[inline]
    fn mul(self, rhs: u64) -> Slots {
        Slots(self.0 * rhs)
    }
}

impl Div<u64> for Slots {
    type Output = Slots;
    #[inline]
    fn div(self, rhs: u64) -> Slots {
        Slots(self.0 / rhs)
    }
}

impl Rem<Slots> for Slots {
    type Output = Slots;
    #[inline]
    fn rem(self, rhs: Slots) -> Slots {
        Slots(self.0 % rhs.0)
    }
}

impl Sum for Slots {
    fn sum<I: Iterator<Item = Slots>>(iter: I) -> Slots {
        iter.fold(Slots::ZERO, |acc, s| acc + s)
    }
}

/// A point in simulated time, in nanoseconds since the start of the
/// simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; used as an "infinite" deadline sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since the epoch.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since the epoch (rounded down).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since the epoch (rounded down).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since the epoch as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`; saturates at zero if `earlier` is
    /// actually later.
    #[inline]
    pub fn saturating_duration_since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration.
    #[inline]
    pub fn checked_add(self, d: Duration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// Saturating addition of a duration.
    #[inline]
    pub fn saturating_add(self, d: Duration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        Duration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Duration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000_000)
    }

    /// Nanoseconds in this duration.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds in this duration (rounded down).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating multiplication by a scalar.
    #[inline]
    pub fn saturating_mul(self, k: u64) -> Duration {
        Duration(self.0.saturating_mul(k))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        format_nanos(self.0, f)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        format_nanos(self.0, f)
    }
}

fn format_nanos(ns: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if ns >= 1_000_000_000 {
        write!(f, "{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        write!(f, "{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        write!(f, "{:.3}us", ns as f64 / 1e3)
    } else {
        write!(f, "{ns}ns")
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: Duration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: SimTime) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, |acc, d| acc + d)
    }
}

/// A link bit-rate, used to convert between bytes/slots and wall-clock time.
///
/// The paper assumes Fast Ethernet (100 Mbit/s); the simulator supports any
/// rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkSpeed {
    bits_per_second: u64,
}

impl LinkSpeed {
    /// 10 Mbit/s classic Ethernet.
    pub const ETHERNET_10M: LinkSpeed = LinkSpeed::from_mbps(10);
    /// 100 Mbit/s Fast Ethernet (the paper's assumption).
    pub const FAST_ETHERNET: LinkSpeed = LinkSpeed::from_mbps(100);
    /// 1 Gbit/s Gigabit Ethernet.
    pub const GIGABIT: LinkSpeed = LinkSpeed::from_mbps(1000);

    /// Construct from megabits per second.
    pub const fn from_mbps(mbps: u64) -> Self {
        LinkSpeed {
            bits_per_second: mbps * 1_000_000,
        }
    }

    /// Construct from bits per second.
    pub const fn from_bps(bps: u64) -> Self {
        LinkSpeed {
            bits_per_second: bps,
        }
    }

    /// The raw rate in bits per second.
    pub const fn bits_per_second(self) -> u64 {
        self.bits_per_second
    }

    /// The rate in megabits per second (rounded down).
    pub const fn mbps(self) -> u64 {
        self.bits_per_second / 1_000_000
    }

    /// Time to transmit `bytes` bytes at this rate (rounded up to whole
    /// nanoseconds).
    pub fn transmission_time(self, bytes: usize) -> Duration {
        let bits = bytes as u64 * 8;
        // ns = bits * 1e9 / rate, rounded up so we never under-estimate.
        let ns = (bits as u128 * 1_000_000_000u128).div_ceil(self.bits_per_second as u128);
        Duration(ns as u64)
    }

    /// Length of one paper time slot: the wire time of a maximum-sized frame
    /// (1518 B MAC frame + preamble/SFD + inter-frame gap).
    pub fn slot_duration(self) -> Duration {
        self.transmission_time(MAX_FRAME_WIRE_BYTES)
    }

    /// Convert a slot count into simulated time.
    pub fn slots_to_duration(self, slots: Slots) -> Duration {
        self.slot_duration().saturating_mul(slots.get())
    }

    /// Convert a duration into whole slots, rounding up (a partial slot
    /// still occupies the link for scheduling purposes).
    pub fn duration_to_slots_ceil(self, d: Duration) -> Slots {
        let slot = self.slot_duration().as_nanos().max(1);
        Slots(d.as_nanos().div_ceil(slot))
    }
}

impl Default for LinkSpeed {
    fn default() -> Self {
        LinkSpeed::FAST_ETHERNET
    }
}

impl fmt::Display for LinkSpeed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} Mbit/s", self.mbps())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_basic_arithmetic() {
        let a = Slots::new(10);
        let b = Slots::new(3);
        assert_eq!(a + b, Slots::new(13));
        assert_eq!(a - b, Slots::new(7));
        assert_eq!(a * 2, Slots::new(20));
        assert_eq!(a / 3, Slots::new(3));
        assert_eq!(a % b, Slots::new(1));
        assert_eq!(a.div_floor(b), 3);
        assert_eq!(a.div_ceil(b), 4);
    }

    #[test]
    fn slots_checked_and_saturating() {
        assert_eq!(Slots::MAX.checked_add(Slots::ONE), None);
        assert_eq!(Slots::MAX.saturating_add(Slots::ONE), Slots::MAX);
        assert_eq!(Slots::ZERO.checked_sub(Slots::ONE), None);
        assert_eq!(Slots::ZERO.saturating_sub(Slots::ONE), Slots::ZERO);
        assert_eq!(Slots::new(5).checked_mul(3), Some(Slots::new(15)));
        assert_eq!(Slots::MAX.checked_mul(2), None);
    }

    #[test]
    fn slots_lcm_and_gcd() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(
            Slots::new(4).checked_lcm(Slots::new(6)),
            Some(Slots::new(12))
        );
        assert_eq!(
            Slots::new(100).checked_lcm(Slots::new(40)),
            Some(Slots::new(200))
        );
        assert_eq!(Slots::new(0).checked_lcm(Slots::new(7)), Some(Slots::ZERO));
        assert_eq!(Slots::MAX.checked_lcm(Slots::new(u64::MAX - 1)), None);
    }

    #[test]
    fn slots_ordering_and_sum() {
        let v = [Slots::new(1), Slots::new(2), Slots::new(3)];
        let total: Slots = v.iter().copied().sum();
        assert_eq!(total, Slots::new(6));
        assert!(Slots::new(2) < Slots::new(3));
        assert_eq!(Slots::new(2).max(Slots::new(3)), Slots::new(3));
        assert_eq!(Slots::new(2).min(Slots::new(3)), Slots::new(2));
    }

    #[test]
    fn simtime_arithmetic() {
        let t = SimTime::from_micros(5);
        let d = Duration::from_micros(3);
        assert_eq!((t + d).as_nanos(), 8_000);
        assert_eq!((t + d) - t, d);
        assert_eq!(t.saturating_duration_since(t + d), Duration::ZERO);
        assert_eq!((t + d).saturating_duration_since(t), d);
        assert_eq!(SimTime::from_millis(1).as_micros(), 1_000);
        assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
    }

    #[test]
    fn duration_display_units() {
        assert_eq!(format!("{}", Duration::from_nanos(500)), "500ns");
        assert_eq!(format!("{}", Duration::from_micros(2)), "2.000us");
        assert_eq!(format!("{}", Duration::from_millis(3)), "3.000ms");
        assert_eq!(format!("{}", Duration::from_secs(4)), "4.000s");
    }

    #[test]
    fn link_speed_transmission_times() {
        // 1538 wire bytes at 100 Mbit/s = 123.04 us.
        let slot = LinkSpeed::FAST_ETHERNET.slot_duration();
        assert_eq!(slot.as_nanos(), 123_040);
        // Minimum frame: 64 B + 8 preamble + 12 IFG = 84 B -> 6.72 us.
        let min = LinkSpeed::FAST_ETHERNET.transmission_time(84);
        assert_eq!(min.as_nanos(), 6_720);
        // Gigabit is 10x faster.
        assert_eq!(LinkSpeed::GIGABIT.slot_duration().as_nanos(), 12_304);
    }

    #[test]
    fn link_speed_slot_round_trip() {
        let speed = LinkSpeed::FAST_ETHERNET;
        let d = speed.slots_to_duration(Slots::new(40));
        assert_eq!(speed.duration_to_slots_ceil(d), Slots::new(40));
        // A partial slot rounds up.
        let d_plus = d + Duration::from_nanos(1);
        assert_eq!(speed.duration_to_slots_ceil(d_plus), Slots::new(41));
    }
}
