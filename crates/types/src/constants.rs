//! Ethernet framing constants and paper-specific protocol constants.

/// Minimum Ethernet MAC frame size (header + payload + FCS) in bytes.
pub const MIN_FRAME_BYTES: usize = 64;

/// Maximum standard Ethernet MAC frame size (header + 1500 B payload + FCS)
/// in bytes.
pub const MAX_FRAME_BYTES: usize = 1518;

/// Ethernet MAC header size: destination (6) + source (6) + EtherType (2).
pub const ETH_HEADER_BYTES: usize = 14;

/// Frame check sequence (CRC-32) size in bytes.
pub const ETH_FCS_BYTES: usize = 4;

/// Maximum MAC payload (MTU) in bytes.
pub const ETH_MTU_BYTES: usize = 1500;

/// Minimum MAC payload in bytes (frames shorter than this are padded).
pub const ETH_MIN_PAYLOAD_BYTES: usize = MIN_FRAME_BYTES - ETH_HEADER_BYTES - ETH_FCS_BYTES;

/// Preamble (7) + start-of-frame delimiter (1) in bytes.
pub const ETH_PREAMBLE_BYTES: usize = 8;

/// Inter-frame gap expressed in byte times (96 bit times).
pub const ETH_IFG_BYTES: usize = 12;

/// Per-frame wire overhead beyond the MAC frame itself (preamble + IFG).
pub const ETH_WIRE_OVERHEAD_BYTES: usize = ETH_PREAMBLE_BYTES + ETH_IFG_BYTES;

/// Total wire occupancy of a maximum-sized frame: this defines the paper's
/// time-slot length.
pub const MAX_FRAME_WIRE_BYTES: usize = MAX_FRAME_BYTES + ETH_WIRE_OVERHEAD_BYTES;

/// Total wire occupancy of a minimum-sized frame.
pub const MIN_FRAME_WIRE_BYTES: usize = MIN_FRAME_BYTES + ETH_WIRE_OVERHEAD_BYTES;

/// IPv4 header length without options, in bytes.
pub const IPV4_HEADER_BYTES: usize = 20;

/// UDP header length in bytes.
pub const UDP_HEADER_BYTES: usize = 8;

/// Maximum UDP payload that fits in a single maximum-sized Ethernet frame.
pub const MAX_UDP_PAYLOAD_BYTES: usize = ETH_MTU_BYTES - IPV4_HEADER_BYTES - UDP_HEADER_BYTES;

/// EtherType for IPv4, used by RT data traffic (which is UDP/IP underneath).
pub const ETHERTYPE_IPV4: u16 = 0x0800;

/// EtherType chosen for the RT-layer control frames (RequestFrame /
/// ResponseFrame).  The paper does not prescribe one; an experimental value
/// from the locally administered range is used.
pub const ETHERTYPE_RT_CONTROL: u16 = 0x88B5;

/// The Type-of-Service value that marks a datagram as real-time (§18.2.2:
/// "The Type of Service (ToS) field is always set to value 255").
pub const RT_TOS_VALUE: u8 = 255;

/// Wire size in bytes of the RequestFrame payload (Figure 18.3):
/// type(1) + request id(1) + channel id(2) + src MAC(6) + dst MAC(6)
/// + src IP(4) + dst IP(4) + period(4) + capacity(4) + deadline(4).
pub const REQUEST_FRAME_PAYLOAD_BYTES: usize = 36;

/// Wire size in bytes of the ResponseFrame payload (Figure 18.4).
pub const RESPONSE_FRAME_PAYLOAD_BYTES: usize = 11;

/// Frame-type discriminator carried in the first payload byte of RT control
/// frames: connection request ("Connect packet" in Figure 18.3).
pub const RT_FRAME_TYPE_CONNECT: u8 = 0x01;

/// Frame-type discriminator: connection response ("Response packet" in
/// Figure 18.4).
pub const RT_FRAME_TYPE_RESPONSE: u8 = 0x02;

/// Frame-type discriminator: channel tear-down request (an extension beyond
/// the paper, needed for dynamic channel removal).
pub const RT_FRAME_TYPE_TEARDOWN: u8 = 0x03;

/// Frame-type discriminator: switch-to-switch reservation traffic of the
/// distributed control plane (probe / reserve / rollback / confirm /
/// release), an extension beyond the paper's centralised management.
pub const RT_FRAME_TYPE_RESERVATION: u8 = 0x04;

/// Buffer size of the small arena class: covers every RT control frame
/// (request / response / teardown / reservation with a short value list)
/// plus the 14-byte Ethernet header.
pub const ARENA_SMALL_BYTES: usize = 128;

/// Buffer size of the medium arena class: typical RT data frames with
/// sensor-sized payloads.
pub const ARENA_MEDIUM_BYTES: usize = 512;

/// Buffer size of the large arena class: a full-MTU Ethernet frame stored
/// unpadded (header + 1500-byte payload).
pub const ARENA_MTU_BYTES: usize = ETH_HEADER_BYTES + ETH_MTU_BYTES;

/// Buffers per slab chunk in the frame arena.  Each size class grows its
/// backing storage one contiguous chunk at a time, so a workload that keeps
/// N frames in flight costs N/256 heap allocations, not N, and neighbouring
/// buffers share cache lines and pages.
pub const ARENA_CHUNK_SLOTS: usize = 256;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn frame_size_relations() {
        assert!(MIN_FRAME_BYTES < MAX_FRAME_BYTES);
        assert_eq!(
            ETH_HEADER_BYTES + ETH_MTU_BYTES + ETH_FCS_BYTES,
            MAX_FRAME_BYTES
        );
        assert_eq!(ETH_MIN_PAYLOAD_BYTES, 46);
        assert_eq!(MAX_FRAME_WIRE_BYTES, 1538);
        assert_eq!(MIN_FRAME_WIRE_BYTES, 84);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn udp_payload_fits_mtu() {
        assert_eq!(MAX_UDP_PAYLOAD_BYTES, 1472);
        assert!(MAX_UDP_PAYLOAD_BYTES + IPV4_HEADER_BYTES + UDP_HEADER_BYTES <= ETH_MTU_BYTES);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn arena_classes_are_ordered_and_cover_the_mtu() {
        assert!(ARENA_SMALL_BYTES < ARENA_MEDIUM_BYTES);
        assert!(ARENA_MEDIUM_BYTES < ARENA_MTU_BYTES);
        assert_eq!(ARENA_MTU_BYTES, 1514);
    }

    #[test]
    fn rt_frame_types_are_distinct() {
        assert_ne!(RT_FRAME_TYPE_CONNECT, RT_FRAME_TYPE_RESPONSE);
        assert_ne!(RT_FRAME_TYPE_CONNECT, RT_FRAME_TYPE_TEARDOWN);
        assert_ne!(RT_FRAME_TYPE_RESPONSE, RT_FRAME_TYPE_TEARDOWN);
    }
}
