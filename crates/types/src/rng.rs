//! A small, dependency-free, deterministic pseudo-random number generator.
//!
//! The workspace must be exactly reproducible from a seed (experiments,
//! workload generation, randomised tests), and it deliberately carries no
//! external crates, so this module provides the one PRNG everything shares:
//! xoshiro256++ seeded through SplitMix64.  It is not cryptographic — it is
//! a fast, well-distributed generator whose streams are stable across
//! platforms and releases.

/// A deterministic PRNG: xoshiro256++ with SplitMix64 seeding.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Create a generator from a 64-bit seed.  Equal seeds yield equal
    /// sequences forever.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the 256-bit state; this is
        // the seeding procedure recommended by the xoshiro authors.
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next_sm(), next_sm(), next_sm(), next_sm()];
        Xoshiro256 { s }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniformly distributed integer in `[0, bound)`, bias-free via
    /// rejection sampling.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Reject values in the incomplete top interval so every residue is
        // equally likely: threshold = 2^64 mod bound.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let v = self.next_u64();
            if v >= threshold {
                return v % bound;
            }
        }
    }

    /// A uniformly distributed integer in `[lo, hi]` (inclusive).
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "invalid range");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(hi - lo + 1)
    }

    /// A uniform float in `[0, 1)` with 53 bits of precision.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Xoshiro256::new(7);
        let mut b = Xoshiro256::new(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256::new(1);
        let mut b = Xoshiro256::new(2);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn below_respects_bound_and_hits_all_residues() {
        let mut rng = Xoshiro256::new(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn range_inclusive_covers_endpoints() {
        let mut rng = Xoshiro256::new(11);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2000 {
            let v = rng.range_inclusive(5, 8);
            assert!((5..=8).contains(&v));
            lo_seen |= v == 5;
            hi_seen |= v == 8;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn unit_is_in_half_open_interval_and_roughly_uniform() {
        let mut rng = Xoshiro256::new(5);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Xoshiro256::new(9);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }
}
