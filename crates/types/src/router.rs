//! Path selection over a [`Topology`]: the [`Router`] trait and its three
//! stock implementations.
//!
//! Hoang & Jonsson's analysis treats every *directed link* as an independent
//! EDF processor, so nothing in the admission theory cares how a channel's
//! path was chosen — only that the path is fixed at establishment time and
//! that every link on it passes the per-link feasibility test.  That makes
//! path selection a pluggable policy:
//!
//! * [`TreeRouter`] — the pre-mesh behaviour, byte for byte: requires the
//!   switch graph to be a tree (its *capability check*) and returns the
//!   unique path.
//! * [`ShortestPathRouter`] — BFS shortest paths over arbitrary connected
//!   meshes, deterministic tie-break (lowest switch id first).
//! * [`EcmpRouter`] — equal-cost multi-path: enumerates (by counting, not
//!   materialising) all shortest paths and picks one by a deterministic
//!   hash of `(seed, source, destination)` through the in-repo
//!   [`Xoshiro256`] PRNG, so different channels spread over redundant
//!   trunks while a fixed seed always yields the same route.
//!
//! (A fourth policy, the table-free
//! [`crate::structural::StructuralRouter`], lives in its own module.)
//!
//! All stock routers share a per-topology [`NextHopCache`] keyed by
//! [`Topology::fingerprint`], so constructing many simulators (or routing
//! many channels) over the same fabric computes the forwarding state once.
//! On uniform-cost fabrics the cache rebuilds *incrementally* across fault
//! churn — a state one trunk flip away from a resident one is patched per
//! destination instead of rebuilt from scratch — and materialises the
//! `BTreeMap` table form lazily.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Deref;
use std::sync::{Arc, Mutex};

use crate::dense::{IdIndex, NO_INDEX};
use crate::error::{RtError, RtResult};
use crate::ids::NodeId;
use crate::rng::Xoshiro256;
use crate::topology::{FabricStructure, HopLink, SwitchId, Topology};

/// The next-hop forwarding table of a trunk graph: `(at, towards) →
/// neighbour of `at` on a shortest path towards `towards``.
pub type NextHopTable = BTreeMap<(SwitchId, SwitchId), SwitchId>;

/// The forwarding table in the form the per-event hot path consumes:
/// switches get contiguous indices (via [`IdIndex`]) and a forwarding
/// decision is a couple of array reads — or, on structured fabrics, a
/// handful of integer operations with no table at all.
///
/// Both backings carry the *same* routes the policy's `BTreeMap` table
/// would — the simulator uses this form for speed, not policy:
///
/// * **Columns** — destination-major `S × S` storage, one `Arc`'d column
///   per destination, so an incremental rebuild after a single trunk flip
///   shares every untouched column with the previous table instead of
///   copying O(V²) entries.
/// * **Structural** — table-free: next hops are computed from switch
///   coordinates ([`FabricStructure`] closed forms, O(V) resident state
///   for the id index), plus a sparse detour overlay covering exactly the
///   entries a failed trunk changes.
#[derive(Debug)]
pub struct DenseNextHop {
    index: IdIndex,
    backing: Backing,
}

#[derive(Debug)]
enum Backing {
    /// `columns[towards][at]` = dense index of the next switch, or
    /// [`NO_INDEX`] when unreachable (or `at == towards`).
    Columns(Vec<Arc<[u32]>>),
    /// Closed-form next hops.  The structured builders allocate contiguous
    /// switch ids, so dense index == switch id and the closed forms apply
    /// directly; `detours` overrides `(at, towards)` pairs whose healthy
    /// route crosses a failed trunk ([`NO_INDEX`] = unreachable).
    Structural {
        structure: Arc<FabricStructure>,
        detours: Arc<BTreeMap<(u32, u32), u32>>,
    },
}

impl DenseNextHop {
    /// Flatten `table` over the switches of `topology`.
    pub fn build(topology: &Topology, table: &NextHopTable) -> Self {
        let index = IdIndex::new(topology.switches().map(|s| s.get()));
        let n = index.len();
        let mut columns = vec![vec![NO_INDEX; n]; n];
        for (&(from, to), &next) in table {
            let (Some(f), Some(t), Some(x)) = (
                index.get(from.get()),
                index.get(to.get()),
                index.get(next.get()),
            ) else {
                continue;
            };
            columns[t as usize][f as usize] = x;
        }
        Self::from_columns(index, columns.into_iter().map(Arc::from).collect())
    }

    fn from_columns(index: IdIndex, columns: Vec<Arc<[u32]>>) -> Self {
        DenseNextHop {
            index,
            backing: Backing::Columns(columns),
        }
    }

    fn structural(
        index: IdIndex,
        structure: Arc<FabricStructure>,
        detours: BTreeMap<(u32, u32), u32>,
    ) -> Self {
        DenseNextHop {
            index,
            backing: Backing::Structural {
                structure,
                detours: Arc::new(detours),
            },
        }
    }

    /// Number of switches.
    #[inline]
    pub fn switch_count(&self) -> usize {
        self.index.len()
    }

    /// The dense index of a switch.
    #[inline]
    pub fn index_of(&self, switch: SwitchId) -> Option<u32> {
        self.index.get(switch.get())
    }

    /// The switch at a dense index (panics if out of range).
    #[inline]
    pub fn switch_at(&self, index: u32) -> SwitchId {
        SwitchId::new(self.index.id_at(index))
    }

    /// The next hop from dense index `at` towards dense index `towards`,
    /// as a dense index.  This is the per-event fast path.
    #[inline]
    pub fn next_hop_index(&self, at: u32, towards: u32) -> Option<u32> {
        match &self.backing {
            Backing::Columns(columns) => match columns[towards as usize][at as usize] {
                NO_INDEX => None,
                next => Some(next),
            },
            Backing::Structural { structure, detours } => {
                if !detours.is_empty() {
                    if let Some(&next) = detours.get(&(at, towards)) {
                        return if next == NO_INDEX { None } else { Some(next) };
                    }
                }
                structure.next_hop(at, towards)
            }
        }
    }

    /// The next hop by switch id (convenience for cold paths and tests).
    pub fn next_hop(&self, at: SwitchId, towards: SwitchId) -> Option<SwitchId> {
        let at = self.index_of(at)?;
        let towards = self.index_of(towards)?;
        self.next_hop_index(at, towards).map(|i| self.switch_at(i))
    }

    /// Materialise the `BTreeMap` form carrying exactly this table's
    /// entries.  Cold path: the cache calls it lazily, once per fabric
    /// state, and only when someone actually asks for the tree form.
    pub fn to_table(&self) -> NextHopTable {
        let n = self.index.len() as u32;
        let mut table = NextHopTable::new();
        for towards in 0..n {
            let to = self.switch_at(towards);
            for at in 0..n {
                if at == towards {
                    continue;
                }
                if let Some(next) = self.next_hop_index(at, towards) {
                    table.insert((self.switch_at(at), to), self.switch_at(next));
                }
            }
        }
        table
    }

    /// Approximate resident bytes of the forwarding state: O(V²) for the
    /// tabled backing, O(V + detours) for the structural one.  Feeds the
    /// routing microbench's memory rows.
    pub fn resident_bytes(&self) -> usize {
        let index = self.index.len() * 2 * std::mem::size_of::<u32>();
        index
            + match &self.backing {
                Backing::Columns(columns) => columns
                    .iter()
                    .map(|c| std::mem::size_of::<Arc<[u32]>>() + std::mem::size_of_val(&c[..]))
                    .sum(),
                // BTreeMap node overhead, rounded up generously.
                Backing::Structural { detours, .. } => 64 + detours.len() * 40,
            }
    }
}

/// The path an RT channel takes through the fabric: the source's uplink,
/// zero or more directed trunk hops, the destination's downlink.
///
/// A `Route` is what a [`Router`] produces and what admission control and
/// the wire-level simulator consume: each [`HopLink`] in it is one EDF
/// "processor" of the feasibility analysis and one output port of the
/// simulated fabric.  Derefs to `[HopLink]`, so `route.len()` is the hop
/// count `h` of the hop-aware Eq. 18.1 bound `d·slot + T_latency(h)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Route {
    links: Vec<HopLink>,
}

impl Route {
    /// Build a route from its directed links, validating its shape: at
    /// least two links, starting with the source's uplink, ending with the
    /// destination's downlink, and — in between — a contiguous chain of
    /// trunks that never revisits a switch.  The contiguity check matters
    /// because the simulator installs one forwarding entry *per switch* of
    /// the route: a switch-revisiting route would silently overwrite its
    /// own entries and could loop frames forever.
    pub fn from_links(links: Vec<HopLink>) -> RtResult<Self> {
        if links.len() < 2 {
            return Err(RtError::Config(format!(
                "a route needs at least an uplink and a downlink, got {} link(s)",
                links.len()
            )));
        }
        if !matches!(links.first(), Some(HopLink::Uplink(_))) {
            return Err(RtError::Config(
                "a route must start with the source's uplink".into(),
            ));
        }
        if !matches!(links.last(), Some(HopLink::Downlink(_))) {
            return Err(RtError::Config(
                "a route must end with the destination's downlink".into(),
            ));
        }
        let mut visited = std::collections::BTreeSet::new();
        let mut previous: Option<SwitchId> = None;
        for link in &links[1..links.len() - 1] {
            let HopLink::Trunk { from, to } = link else {
                return Err(RtError::Config(format!(
                    "interior links of a route must be trunks, got [{link}]"
                )));
            };
            if from == to {
                return Err(RtError::Config(format!(
                    "a route cannot contain the self-loop trunk [{link}]"
                )));
            }
            if let Some(previous) = previous {
                if previous != *from {
                    return Err(RtError::Config(format!(
                        "discontiguous route: trunk [{link}] does not start at {previous}"
                    )));
                }
            }
            if !visited.insert(*from) {
                return Err(RtError::Config(format!(
                    "a route cannot revisit switch {from}"
                )));
            }
            previous = Some(*to);
        }
        if let Some(last) = previous {
            if visited.contains(&last) {
                return Err(RtError::Config(format!(
                    "a route cannot revisit switch {last}"
                )));
            }
        }
        Ok(Route { links })
    }

    /// The directed links of the route, in traversal order.
    pub fn links(&self) -> &[HopLink] {
        &self.links
    }

    /// Number of directed links (the `h` of `T_latency(h)`).
    pub fn hops(&self) -> usize {
        self.links.len()
    }

    /// The source node (owner of the first link).
    pub fn source(&self) -> NodeId {
        match self.links[0] {
            HopLink::Uplink(n) => n,
            _ => unreachable!("validated in from_links"),
        }
    }

    /// The destination node (owner of the last link).
    pub fn destination(&self) -> NodeId {
        match self.links[self.links.len() - 1] {
            HopLink::Downlink(n) => n,
            _ => unreachable!("validated in from_links"),
        }
    }

    /// Consume the route, yielding its links.
    pub fn into_links(self) -> Vec<HopLink> {
        self.links
    }
}

impl Deref for Route {
    type Target = [HopLink];

    fn deref(&self) -> &[HopLink] {
        &self.links
    }
}

impl<'a> IntoIterator for &'a Route {
    type Item = &'a HopLink;
    type IntoIter = std::slice::Iter<'a, HopLink>;

    fn into_iter(self) -> Self::IntoIter {
        self.links.iter()
    }
}

impl fmt::Display for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, link) in self.links.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "[{link}]")?;
        }
        Ok(())
    }
}

/// A path-selection policy over a [`Topology`].
///
/// Implementations must be deterministic: the same topology, source and
/// destination always yield the same route (that is what makes admission
/// decisions and simulated delivery sequences reproducible).
pub trait Router: fmt::Debug + Send + Sync {
    /// A short policy name for reports and error messages.
    fn name(&self) -> &'static str;

    /// Capability check: can this router serve the given topology at all?
    /// [`TreeRouter`] rejects cyclic graphs here; the mesh routers only
    /// require connectivity.  Called once when a network or simulator is
    /// built, not per route.
    fn validate(&self, topology: &Topology) -> RtResult<()>;

    /// Select the path for an RT channel from `source` to `destination`.
    fn route(&self, topology: &Topology, source: NodeId, destination: NodeId) -> RtResult<Route>;

    /// The shared per-topology forwarding cache, when the policy keeps one.
    /// The stock routers all return theirs, which lets the two defaulted
    /// table accessors below dispatch through a single implementation
    /// (instead of every router duplicating the pair) and gives callers
    /// access to the cache's [`NextHopCache::stats`] counters.
    fn next_hop_cache(&self) -> Option<&NextHopCache> {
        None
    }

    /// The next-hop forwarding table used for traffic that carries no
    /// per-route forwarding state (control-plane and best-effort frames).
    /// Served from [`Router::next_hop_cache`] when the policy keeps one
    /// (the `BTreeMap` form is materialised lazily, once per cached fabric
    /// state); built fresh otherwise.
    fn next_hop_table(&self, topology: &Topology) -> Arc<NextHopTable> {
        match self.next_hop_cache() {
            Some(cache) => cache.get(topology),
            None => Arc::new(topology.next_hop_table()),
        }
    }

    /// The [`DenseNextHop`] carrying the same routes as
    /// [`Router::next_hop_table`], which is what the simulator's per-event
    /// hot path consumes.
    fn dense_next_hop(&self, topology: &Topology) -> Arc<DenseNextHop> {
        match self.next_hop_cache() {
            Some(cache) => cache.get_dense(topology),
            None => Arc::new(DenseNextHop::build(
                topology,
                &self.next_hop_table(topology),
            )),
        }
    }

    /// Candidate routes in preference order, primary first.  Admission
    /// control tries them in order and accepts the first feasible one, so a
    /// router that can enumerate alternates (the [`KShortestRouter`]) turns
    /// "the shortest path is saturated" from a rejection into a detour.
    /// The default is the single [`Router::route`] — existing policies keep
    /// their exact behaviour.
    fn routes(
        &self,
        topology: &Topology,
        source: NodeId,
        destination: NodeId,
    ) -> RtResult<Vec<Route>> {
        Ok(vec![self.route(topology, source, destination)?])
    }
}

/// A per-topology memo of the forwarding state, keyed by
/// [`Topology::fingerprint`].  Shared by all stock routers so repeated
/// simulator constructions over the same fabric reuse one table.
///
/// The memo keeps a small bounded set of fabric states (most recently used
/// first), not just the latest one.  Under fault churn a fabric alternates
/// between its healthy and degraded fingerprints on every cut/repair; a
/// single-entry cache recomputed the full `O(V·E log V)` table and its dense
/// flattening on *every* flip, which soak profiling showed dominating the
/// admission hot path.  With a few entries resident, a repair that returns
/// to a previously seen graph is a lookup.
///
/// A miss no longer implies a from-scratch pass, either:
///
/// * On uniform-cost fabrics the table is built per *destination* (one BFS
///   column each, next hop = minimum-id neighbour one hop closer — exactly
///   the lex-min entry the legacy per-source build produces), and a miss
///   whose failed-trunk set differs from a resident state's by a single
///   trunk is served by *patching* that state's columns: only destinations
///   whose route tree actually crossed the flipped trunk are recomputed,
///   everything else shares the previous `Arc`'d column.  A single cut on
///   a 1280-switch fabric costs milliseconds instead of a full rebuild.
/// * In structural mode (the [`crate::structural::StructuralRouter`]), a
///   fabric tagged with a [`FabricStructure`] gets a table-free backing:
///   closed-form next hops plus a sparse detour overlay for faults, O(V)
///   resident instead of O(V²).
/// * The `BTreeMap` form is materialised lazily per state, only when
///   [`NextHopCache::get`] is actually called.
///
/// Weighted fabrics keep the exact legacy build: Dijkstra tie-breaks are
/// not the local min-id rule, and byte-identical tables are a hard
/// requirement for reproducible admission.
#[derive(Debug)]
pub struct NextHopCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
    /// Prefer the table-free structural backing for tagged fabrics.
    structural: bool,
}

#[derive(Debug, Default)]
struct CacheInner {
    entries: Vec<CacheEntry>,
    stats: NextHopCacheStats,
}

/// Default number of distinct fabric states kept memoized.  Fault scripts
/// flip between a handful of graph states (healthy plus one per concurrent
/// cut), so a small bound captures the churn working set while keeping the
/// linear scan and memory footprint trivial; tune per router via
/// [`NextHopCache::with_capacity`].
pub const DEFAULT_NEXT_HOP_CACHE_CAPACITY: usize = 8;

/// Counters describing how a [`NextHopCache`] behaves under churn —
/// observable via [`NextHopCache::stats`] / [`Router::next_hop_cache`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NextHopCacheStats {
    /// Lookups served from a resident fabric state.
    pub hits: u64,
    /// Lookups that had to build a new entry.
    pub misses: u64,
    /// Entries dropped because the cache was at capacity.
    pub evictions: u64,
    /// Misses served by patching a sibling state's columns (single trunk
    /// flip on the same underlying fabric).
    pub incremental_rebuilds: u64,
    /// Misses that paid for a from-scratch build.
    pub full_rebuilds: u64,
}

#[derive(Debug)]
struct CacheEntry {
    fingerprint: u64,
    /// Fault-invariant fabric identity ([`Topology::structural_fingerprint`]):
    /// two states with equal values differ only in which trunks are failed,
    /// which is what makes cross-state incremental rebuilds sound.
    structural_fingerprint: u64,
    uniform: bool,
    /// This state's failed trunks, normalised `(min, max)` and sorted.
    failed: Vec<(u32, u32)>,
    dense: Arc<DenseNextHop>,
    /// Per-destination BFS distance columns (uniform tabled states only) —
    /// the base data an incremental rebuild patches from.
    dist: Option<Vec<Arc<[u32]>>>,
    /// The `BTreeMap` form, materialised on first [`NextHopCache::get`].
    table: Option<Arc<NextHopTable>>,
}

impl Default for NextHopCache {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_NEXT_HOP_CACHE_CAPACITY)
    }
}

impl NextHopCache {
    /// A cache with the default capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// A cache keeping up to `capacity` fabric states resident (clamped to
    /// at least 1).
    pub fn with_capacity(capacity: usize) -> Self {
        NextHopCache {
            inner: Mutex::new(CacheInner::default()),
            capacity: capacity.max(1),
            structural: false,
        }
    }

    /// A cache that serves structure-tagged fabrics table-free (closed-form
    /// next hops + fault detour overlay) and falls back to the tabled path
    /// for everything else.
    pub fn structural() -> Self {
        Self::structural_with_capacity(DEFAULT_NEXT_HOP_CACHE_CAPACITY)
    }

    /// Structural-mode cache with an explicit capacity.
    pub fn structural_with_capacity(capacity: usize) -> Self {
        NextHopCache {
            structural: true,
            ..Self::with_capacity(capacity)
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// A snapshot of the hit/miss/eviction/rebuild counters.
    pub fn stats(&self) -> NextHopCacheStats {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).stats
    }

    /// The cached table for `topology`, computing it on first use (or after
    /// the topology changed).  Materialises the `BTreeMap` form lazily —
    /// hot paths that only ever touch the dense form never pay for it.
    pub fn get(&self, topology: &Topology) -> Arc<NextHopTable> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        self.ensure(topology, &mut inner);
        let entry = &mut inner.entries[0];
        if entry.table.is_none() {
            entry.table = Some(Arc::new(entry.dense.to_table()));
        }
        Arc::clone(entry.table.as_ref().expect("just materialised"))
    }

    /// The cached dense form for `topology` — the entry point the simulator
    /// and the routers' own walks use.
    pub fn get_dense(&self, topology: &Topology) -> Arc<DenseNextHop> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        self.ensure(topology, &mut inner);
        Arc::clone(&inner.entries[0].dense)
    }

    /// Make the entry for `topology` resident at the front of the list.
    fn ensure(&self, topology: &Topology, inner: &mut CacheInner) {
        let fp = topology.fingerprint();
        if let Some(pos) = inner.entries.iter().position(|e| e.fingerprint == fp) {
            inner.stats.hits += 1;
            // Move the hit to the front so eviction drops the least
            // recently used fabric state.
            let entry = inner.entries.remove(pos);
            inner.entries.insert(0, entry);
            return;
        }
        inner.stats.misses += 1;
        let uniform = topology.has_uniform_cost();
        let structural_fingerprint = topology.structural_fingerprint();
        let failed: Vec<(u32, u32)> = topology
            .failed_trunks()
            .map(|(a, b)| (a.get(), b.get()))
            .collect();
        let index = IdIndex::new(topology.switches().map(|s| s.get()));

        let entry = 'build: {
            let blank = |dense: Arc<DenseNextHop>, dist, table| CacheEntry {
                fingerprint: fp,
                structural_fingerprint,
                uniform,
                failed: failed.clone(),
                dense,
                dist,
                table,
            };
            if uniform && self.structural {
                if let Some(structure) = topology.structure() {
                    if ids_are_contiguous(&index, structure) {
                        let dense = structural_dense(topology, structure, index, &failed);
                        break 'build blank(Arc::new(dense), None, None);
                    }
                }
            }
            if uniform {
                // A resident state one trunk flip away on the same fabric
                // seeds an incremental rebuild.
                let base = inner.entries.iter().find_map(|e| {
                    if !e.uniform || e.structural_fingerprint != structural_fingerprint {
                        return None;
                    }
                    let dist = e.dist.as_ref()?;
                    let Backing::Columns(columns) = &e.dense.backing else {
                        return None;
                    };
                    single_trunk_delta(&e.failed, &failed)
                        .map(|delta| (columns.clone(), dist.clone(), delta))
                });
                if let Some((base_next, base_dist, delta)) = base {
                    inner.stats.incremental_rebuilds += 1;
                    let (next_cols, dist_cols) =
                        incremental_columns(topology, &index, &base_next, &base_dist, &delta);
                    let dense = DenseNextHop::from_columns(index, next_cols);
                    break 'build blank(Arc::new(dense), Some(dist_cols), None);
                }
                inner.stats.full_rebuilds += 1;
                let (next_cols, dist_cols) = uniform_columns(topology, &index);
                let dense = DenseNextHop::from_columns(index, next_cols);
                break 'build blank(Arc::new(dense), Some(dist_cols), None);
            }
            // Weighted trunks: deterministic-Dijkstra tie-breaks are not
            // the local min-id rule, so keep the exact legacy build (and
            // its eager table — it exists as a by-product anyway).
            inner.stats.full_rebuilds += 1;
            let table = Arc::new(topology.next_hop_table());
            let dense = Arc::new(DenseNextHop::build(topology, &table));
            blank(dense, None, Some(table))
        };
        inner.entries.insert(0, entry);
        while inner.entries.len() > self.capacity {
            inner.entries.pop();
            inner.stats.evictions += 1;
        }
    }
}

/// The structured builders allocate switch ids `0..n`, so dense index ==
/// switch id and the closed forms can be evaluated on indices directly.
/// Cheap sanity check (the structure tag is cleared by any mutation that
/// could break this, so it never fails in practice).
fn ids_are_contiguous(index: &IdIndex, structure: &FabricStructure) -> bool {
    let n = index.len();
    n == structure.switch_count() as usize && n > 0 && index.id_at(n as u32 - 1) == n as u32 - 1
}

/// Dense adjacency (ascending, as [`Topology::neighbours`] iterates) over
/// the topology's current — possibly degraded — trunk graph.
fn dense_adjacency(topology: &Topology, index: &IdIndex) -> Vec<Vec<u32>> {
    let mut adjacency = vec![Vec::new(); index.len()];
    for s in topology.switches() {
        let si = index.get(s.get()).expect("switch is indexed");
        adjacency[si as usize] = topology
            .neighbours(s)
            .filter_map(|n| index.get(n.get()))
            .collect();
    }
    adjacency
}

/// One BFS column towards destination `t`: per-source next hop (the
/// minimum-id neighbour one hop closer — the ascending adjacency makes the
/// first tight neighbour the minimum) and per-source distance
/// (`u32::MAX` = unreachable).
///
/// The legacy per-source build ([`Topology::next_hop_table`]) explores
/// neighbours in ascending id with first-finder parents, which yields the
/// lexicographically-minimal shortest path for every pair — and the first
/// hop of the lex-min path from `s` is precisely the minimum-id neighbour
/// of `s` that is one hop closer to `t`.  So this per-destination build
/// produces byte-identical entries at a fraction of the allocation cost.
fn bfs_column(adjacency: &[Vec<u32>], t: usize) -> (Arc<[u32]>, Arc<[u32]>) {
    let n = adjacency.len();
    let mut dist = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::with_capacity(n);
    dist[t] = 0;
    queue.push_back(t as u32);
    while let Some(s) = queue.pop_front() {
        let d = dist[s as usize];
        for &nb in &adjacency[s as usize] {
            if dist[nb as usize] == u32::MAX {
                dist[nb as usize] = d + 1;
                queue.push_back(nb);
            }
        }
    }
    let mut next = vec![NO_INDEX; n];
    for s in 0..n {
        if s == t || dist[s] == u32::MAX {
            continue;
        }
        for &nb in &adjacency[s] {
            if dist[nb as usize] != u32::MAX && dist[nb as usize] + 1 == dist[s] {
                next[s] = nb;
                break;
            }
        }
    }
    (Arc::from(next), Arc::from(dist))
}

/// Per-destination `(next-hop, distance)` column sets, `Arc`'d per column
/// so incremental rebuilds can share unchanged columns with their base.
type ColumnSets = (Vec<Arc<[u32]>>, Vec<Arc<[u32]>>);

/// From-scratch per-destination build of every column.
fn uniform_columns(topology: &Topology, index: &IdIndex) -> ColumnSets {
    let adjacency = dense_adjacency(topology, index);
    let n = adjacency.len();
    let mut next_cols = Vec::with_capacity(n);
    let mut dist_cols = Vec::with_capacity(n);
    for t in 0..n {
        let (next, dist) = bfs_column(&adjacency, t);
        next_cols.push(next);
        dist_cols.push(dist);
    }
    (next_cols, dist_cols)
}

/// A single-trunk difference between two failed-trunk sets.
enum TrunkDelta {
    /// The new state failed one trunk the base had healthy.
    Cut((u32, u32)),
    /// The new state repaired one trunk the base had failed.
    Repaired((u32, u32)),
}

/// `Some` when `new` differs from `base` by exactly one failed trunk
/// (both sorted, as [`Topology::failed_trunks`] reports them).
fn single_trunk_delta(base: &[(u32, u32)], new: &[(u32, u32)]) -> Option<TrunkDelta> {
    fn one_extra(shorter: &[(u32, u32)], longer: &[(u32, u32)]) -> Option<(u32, u32)> {
        if longer.len() != shorter.len() + 1 {
            return None;
        }
        let mut matched = 0;
        let mut extra = None;
        for &e in longer {
            if matched < shorter.len() && shorter[matched] == e {
                matched += 1;
            } else if extra.is_none() {
                extra = Some(e);
            } else {
                return None;
            }
        }
        if matched == shorter.len() {
            extra
        } else {
            None
        }
    }
    if let Some(e) = one_extra(base, new) {
        return Some(TrunkDelta::Cut(e));
    }
    one_extra(new, base).map(TrunkDelta::Repaired)
}

/// Patch a base state's per-destination columns for a single trunk flip,
/// sharing every untouched column's `Arc`.
///
/// Soundness rests on two facts about uniform-cost BFS columns:
///
/// * A trunk between switches at *equal* distance from the destination (or
///   with either endpoint unreachable) lies on no shortest path at all, so
///   flipping it changes nothing for that destination.
/// * For a *tight* trunk (distances differ by one), only the downstream
///   endpoint `u` routes over it, and it does so iff the column's next hop
///   at `u` is the upstream endpoint.  A cut with an equal-length
///   alternative at `u` — and likewise a repair that only offers `u` a new
///   equal-length option — leaves every distance intact and changes at
///   most `u`'s own min-id choice; every other source either never crossed
///   the trunk or can be re-routed through `u`'s surviving choice at equal
///   length.  Only when `u` loses its last tight neighbour (or a repair
///   bridges a distance gap of 2+ / reconnects an unreachable region) does
///   the column get a from-scratch BFS.
fn incremental_columns(
    topology: &Topology,
    index: &IdIndex,
    base_next: &[Arc<[u32]>],
    base_dist: &[Arc<[u32]>],
    delta: &TrunkDelta,
) -> ColumnSets {
    let (edge, is_cut) = match delta {
        TrunkDelta::Cut(e) => (e, true),
        TrunkDelta::Repaired(e) => (e, false),
    };
    let a = index.get(edge.0).expect("same switch set") as usize;
    let b = index.get(edge.1).expect("same switch set") as usize;
    let adjacency = dense_adjacency(topology, index);
    let n = adjacency.len();
    let mut next_cols = Vec::with_capacity(n);
    let mut dist_cols = Vec::with_capacity(n);
    for t in 0..n {
        let next = &base_next[t];
        let dist = &base_dist[t];
        let (da, db) = (dist[a], dist[b]);
        // Equal distances (finite or both unreachable): the trunk is off
        // every shortest path towards t either way.
        if da == db {
            next_cols.push(Arc::clone(next));
            dist_cols.push(Arc::clone(dist));
            continue;
        }
        let (u, v) = if da == u32::MAX || (db != u32::MAX && da > db) {
            (a, b)
        } else {
            (b, a)
        };
        if is_cut {
            // The trunk existed in the base graph, so both distances are
            // finite and differ by exactly one; `u` is downstream.
            if next[u] != v as u32 {
                next_cols.push(Arc::clone(next));
                dist_cols.push(Arc::clone(dist));
                continue;
            }
            let alt = adjacency[u]
                .iter()
                .copied()
                .find(|&nb| dist[nb as usize] != u32::MAX && dist[nb as usize] + 1 == dist[u]);
            match alt {
                Some(alt) => {
                    let mut patched = next.to_vec();
                    patched[u] = alt;
                    next_cols.push(Arc::from(patched));
                    dist_cols.push(Arc::clone(dist));
                }
                None => {
                    let (nc, dc) = bfs_column(&adjacency, t);
                    next_cols.push(nc);
                    dist_cols.push(dc);
                }
            }
        } else if dist[u] == u32::MAX || dist[u] - dist[v] >= 2 {
            // The repair shortens paths (or reconnects a region):
            // recompute the column.
            let (nc, dc) = bfs_column(&adjacency, t);
            next_cols.push(nc);
            dist_cols.push(dc);
        } else if (v as u32) < next[u] {
            // Tight repair: distances hold, u gains a smaller-id choice.
            let mut patched = next.to_vec();
            patched[u] = v as u32;
            next_cols.push(Arc::from(patched));
            dist_cols.push(Arc::clone(dist));
        } else {
            next_cols.push(Arc::clone(next));
            dist_cols.push(Arc::clone(dist));
        }
    }
    (next_cols, dist_cols)
}

/// Build the table-free backing for a structure-tagged fabric: closed-form
/// next hops plus a sparse detour overlay.
///
/// For each destination `t`, the healthy lex-min route tree crosses a
/// failed trunk iff some endpoint's healthy next hop towards `t` is the
/// other endpoint.  Destinations whose tree avoids every failed trunk are
/// served purely by the closed form (byte-identical to the degraded BFS by
/// the patching argument above); the rest get one degraded BFS column, and
/// only the entries that *differ* from the closed form land in the
/// overlay — O(faulted columns), not O(V²).
fn structural_dense(
    topology: &Topology,
    structure: &FabricStructure,
    index: IdIndex,
    failed: &[(u32, u32)],
) -> DenseNextHop {
    let mut detours = BTreeMap::new();
    if !failed.is_empty() {
        let adjacency = dense_adjacency(topology, &index);
        let n = adjacency.len() as u32;
        for t in 0..n {
            let used = failed.iter().any(|&(x, y)| {
                structure.next_hop(x, t) == Some(y) || structure.next_hop(y, t) == Some(x)
            });
            if !used {
                continue;
            }
            let (next, _) = bfs_column(&adjacency, t as usize);
            for s in 0..n {
                if s == t {
                    continue;
                }
                let healthy = structure.next_hop(s, t).unwrap_or(NO_INDEX);
                let degraded = next[s as usize];
                if degraded != healthy {
                    detours.insert((s, t), degraded);
                }
            }
        }
    }
    DenseNextHop::structural(index, Arc::new(structure.clone()), detours)
}

/// Resolve and sanity-check the endpoints of a requested route.
fn route_endpoints(
    topology: &Topology,
    source: NodeId,
    destination: NodeId,
) -> RtResult<(SwitchId, SwitchId)> {
    if source == destination {
        return Err(RtError::InvalidChannelSpec(
            "source and destination must differ".into(),
        ));
    }
    let src_switch = topology
        .switch_of(source)
        .ok_or(RtError::UnknownNode(source))?;
    let dst_switch = topology
        .switch_of(destination)
        .ok_or(RtError::UnknownNode(destination))?;
    Ok((src_switch, dst_switch))
}

/// Walk the dense next-hop form from the source's switch to the
/// destination's, producing the uplink + trunks + downlink route.  Walking
/// the dense form (rather than the `BTreeMap`) means a `route()` call never
/// forces the lazy O(V²) table materialisation.
pub(crate) fn walk_dense(
    dense: &DenseNextHop,
    topology: &Topology,
    source: NodeId,
    destination: NodeId,
) -> RtResult<Route> {
    let (src_switch, dst_switch) = route_endpoints(topology, source, destination)?;
    let not_connected = || {
        RtError::Config(format!(
            "switches {src_switch} and {dst_switch} are not connected"
        ))
    };
    let (Some(mut at), Some(towards)) = (dense.index_of(src_switch), dense.index_of(dst_switch))
    else {
        return Err(not_connected());
    };
    let mut links = vec![HopLink::Uplink(source)];
    while at != towards {
        let next = dense
            .next_hop_index(at, towards)
            .ok_or_else(not_connected)?;
        links.push(HopLink::Trunk {
            from: dense.switch_at(at),
            to: dense.switch_at(next),
        });
        at = next;
    }
    links.push(HopLink::Downlink(destination));
    Route::from_links(links)
}

/// The pre-mesh routing policy: the switch graph must be a tree and the
/// route is the unique path through it.  Identical, link for link, to the
/// routing `Topology::route` performed before path selection became
/// pluggable.
#[derive(Debug, Default)]
pub struct TreeRouter {
    cache: NextHopCache,
    /// Fingerprint of the last topology that passed the tree check.
    checked: Mutex<Option<u64>>,
}

impl TreeRouter {
    /// Create a tree router.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure_tree(&self, topology: &Topology) -> RtResult<()> {
        let fp = topology.fingerprint();
        let mut guard = self.checked.lock().unwrap_or_else(|e| e.into_inner());
        if *guard == Some(fp) {
            return Ok(());
        }
        if !topology.is_tree() {
            return Err(RtError::Config(format!(
                "TreeRouter requires a tree, but the switch graph has {} switches and {} trunks{}",
                topology.switch_count(),
                topology.trunk_count(),
                if topology.is_connected() {
                    " (cyclic)"
                } else {
                    " (disconnected)"
                }
            )));
        }
        *guard = Some(fp);
        Ok(())
    }
}

impl Router for TreeRouter {
    fn name(&self) -> &'static str {
        "tree"
    }

    fn validate(&self, topology: &Topology) -> RtResult<()> {
        self.ensure_tree(topology)
    }

    fn route(&self, topology: &Topology, source: NodeId, destination: NodeId) -> RtResult<Route> {
        self.ensure_tree(topology)?;
        walk_dense(
            &self.cache.get_dense(topology),
            topology,
            source,
            destination,
        )
    }

    fn next_hop_cache(&self) -> Option<&NextHopCache> {
        Some(&self.cache)
    }
}

/// BFS shortest-path routing over arbitrary connected meshes, with a
/// deterministic tie-break (the BFS visits neighbours in ascending switch
/// id, so among equal-cost paths the lexicographically smallest wins).  On
/// a tree this coincides with [`TreeRouter`].
#[derive(Debug, Default)]
pub struct ShortestPathRouter {
    cache: NextHopCache,
}

impl ShortestPathRouter {
    /// Create a shortest-path router.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Router for ShortestPathRouter {
    fn name(&self) -> &'static str {
        "shortest-path"
    }

    fn validate(&self, topology: &Topology) -> RtResult<()> {
        if !topology.is_connected() {
            return Err(RtError::Config("the switch graph must be connected".into()));
        }
        Ok(())
    }

    fn route(&self, topology: &Topology, source: NodeId, destination: NodeId) -> RtResult<Route> {
        walk_dense(
            &self.cache.get_dense(topology),
            topology,
            source,
            destination,
        )
    }

    fn next_hop_cache(&self) -> Option<&NextHopCache> {
        Some(&self.cache)
    }
}

/// Equal-cost multi-path routing: among *all* shortest paths between two
/// switches, pick one by a deterministic hash of `(seed, source,
/// destination)`.  Distinct node pairs therefore spread over redundant
/// trunks, while a fixed seed makes every run exactly reproducible.
///
/// The selection never materialises the path set: a BFS from the
/// destination switch yields distances, the per-switch shortest-path
/// *counts* are accumulated in distance order, and the hash picks the k-th
/// path by descending through the counts.
#[derive(Debug)]
pub struct EcmpRouter {
    seed: u64,
    cache: NextHopCache,
}

impl EcmpRouter {
    /// Create an ECMP router with the given hash seed.
    pub fn new(seed: u64) -> Self {
        EcmpRouter {
            seed,
            cache: NextHopCache::default(),
        }
    }

    /// The hash seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The deterministic per-pair selector: a PRNG keyed on the seed and
    /// the endpoints, independent of call order.
    fn pick(&self, source: NodeId, destination: NodeId, count: u64) -> u64 {
        if count <= 1 {
            return 0;
        }
        let key = self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (u64::from(source.get()) << 32)
            ^ u64::from(destination.get());
        Xoshiro256::new(key).below(count)
    }
}

impl Router for EcmpRouter {
    fn name(&self) -> &'static str {
        "ecmp"
    }

    fn validate(&self, topology: &Topology) -> RtResult<()> {
        if !topology.is_connected() {
            return Err(RtError::Config("the switch graph must be connected".into()));
        }
        Ok(())
    }

    fn route(&self, topology: &Topology, source: NodeId, destination: NodeId) -> RtResult<Route> {
        let (src_switch, dst_switch) = route_endpoints(topology, source, destination)?;
        if src_switch == dst_switch {
            return Route::from_links(vec![
                HopLink::Uplink(source),
                HopLink::Downlink(destination),
            ]);
        }
        // BFS distances towards the destination switch.
        let mut dist: BTreeMap<SwitchId, u64> = BTreeMap::from([(dst_switch, 0)]);
        let mut queue = std::collections::VecDeque::from([dst_switch]);
        while let Some(current) = queue.pop_front() {
            let d = dist[&current];
            for next in topology.neighbours(current) {
                if let std::collections::btree_map::Entry::Vacant(e) = dist.entry(next) {
                    e.insert(d + 1);
                    queue.push_back(next);
                }
            }
        }
        if !dist.contains_key(&src_switch) {
            return Err(RtError::Config(format!(
                "switches {src_switch} and {dst_switch} are not connected"
            )));
        }
        // Shortest-path counts towards the destination, accumulated in
        // ascending distance (saturating: the count only steers the hash).
        let mut by_distance: Vec<(u64, SwitchId)> = dist.iter().map(|(&s, &d)| (d, s)).collect();
        by_distance.sort_unstable();
        let mut count: BTreeMap<SwitchId, u64> = BTreeMap::from([(dst_switch, 1)]);
        for &(d, s) in by_distance.iter().skip(1) {
            let total = topology
                .neighbours(s)
                .filter(|n| dist.get(n) == Some(&(d - 1)))
                .map(|n| count.get(&n).copied().unwrap_or(0))
                .fold(0u64, u64::saturating_add);
            count.insert(s, total);
        }
        // Pick the k-th shortest path and walk it.
        let mut remaining = self.pick(source, destination, count[&src_switch]);
        let mut links = vec![HopLink::Uplink(source)];
        let mut at = src_switch;
        while at != dst_switch {
            let d = dist[&at];
            let mut chosen = None;
            for next in topology.neighbours(at) {
                if dist.get(&next) != Some(&(d - 1)) {
                    continue;
                }
                let paths_via = count.get(&next).copied().unwrap_or(0);
                if remaining < paths_via {
                    chosen = Some(next);
                    break;
                }
                remaining -= paths_via;
            }
            let next = chosen.expect("counts cover every shortest path");
            links.push(HopLink::Trunk { from: at, to: next });
            at = next;
        }
        links.push(HopLink::Downlink(destination));
        Route::from_links(links)
    }

    fn next_hop_cache(&self) -> Option<&NextHopCache> {
        Some(&self.cache)
    }
}

/// Cheapest switch path from `from` to `to` that avoids `banned_nodes` and
/// the *directed* `banned_edges` — the one shared search of
/// [`Topology::cheapest_predecessors_banned`] (BFS on uniform costs, byte
/// for byte the historical behaviour; deterministic Dijkstra on weighted
/// trunks), so the routers and `Topology`'s own paths can never disagree on
/// tie-breaks.
fn bfs_switch_path(
    topology: &Topology,
    from: SwitchId,
    to: SwitchId,
    banned_nodes: &std::collections::BTreeSet<SwitchId>,
    banned_edges: &std::collections::BTreeSet<(SwitchId, SwitchId)>,
) -> Option<Vec<SwitchId>> {
    if from == to {
        return Some(vec![from]);
    }
    let predecessor =
        topology.cheapest_predecessors_banned(from, Some(to), banned_nodes, banned_edges);
    if !predecessor.contains_key(&to) {
        return None;
    }
    let mut path = vec![to];
    let mut current = to;
    while current != from {
        current = predecessor[&current];
        path.push(current);
    }
    path.reverse();
    Some(path)
}

/// The summed trunk cost of a switch path (1 per trunk on unweighted
/// fabrics, so ordering by cost coincides with ordering by length there).
fn switch_path_cost(topology: &Topology, path: &[SwitchId]) -> u64 {
    path.windows(2)
        .map(|w| topology.trunk_cost(w[0], w[1]).unwrap_or(1))
        .sum()
}

/// K-shortest-path routing with admission fallback: the primary route is
/// the BFS shortest path, and [`Router::routes`] enumerates up to `k`
/// loop-free switch paths in ascending length (Yen's algorithm, ties broken
/// lexicographically) so admission control can fall back to a detour when
/// the shortest path's feasibility test fails — and fail-over can re-admit
/// channels over whatever survives a trunk cut.
///
/// Deterministic like every router: same topology and endpoints always
/// yield the same candidate list.
#[derive(Debug)]
pub struct KShortestRouter {
    k: usize,
    cache: NextHopCache,
}

impl KShortestRouter {
    /// Create a router that offers up to `k` candidate paths per request
    /// (`k` is clamped to at least 1).
    pub fn new(k: usize) -> Self {
        KShortestRouter {
            k: k.max(1),
            cache: NextHopCache::default(),
        }
    }

    /// The number of candidate paths offered per request.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Up to `k` loop-free switch paths from `from` to `to`, shortest first
    /// (Yen's algorithm over the trunk graph).  Fewer than `k` when the
    /// graph has fewer distinct loop-free paths.
    pub fn switch_paths(
        &self,
        topology: &Topology,
        from: SwitchId,
        to: SwitchId,
    ) -> Vec<Vec<SwitchId>> {
        let none_banned = std::collections::BTreeSet::new();
        let no_edges = std::collections::BTreeSet::new();
        let Some(first) = bfs_switch_path(topology, from, to, &none_banned, &no_edges) else {
            return Vec::new();
        };
        let mut paths = vec![first];
        // Candidates ordered by (cost, lexicographic path): ascending
        // iteration pops the best next path deterministically.  On an
        // unweighted fabric cost = trunks = length − 1, so the order is the
        // historical (length, path) one, byte for byte.
        let mut candidates: std::collections::BTreeSet<(u64, Vec<SwitchId>)> =
            std::collections::BTreeSet::new();
        while paths.len() < self.k {
            let prev = paths.last().expect("paths starts non-empty").clone();
            for i in 0..prev.len() - 1 {
                let spur = prev[i];
                let root = &prev[..=i];
                // Edges already used by accepted paths sharing this root
                // must not be reused for the spur.
                let mut banned_edges = std::collections::BTreeSet::new();
                for p in &paths {
                    if p.len() > i + 1 && p[..=i] == *root {
                        banned_edges.insert((p[i], p[i + 1]));
                    }
                }
                // Root nodes before the spur must not be revisited.
                let banned_nodes: std::collections::BTreeSet<SwitchId> =
                    root[..i].iter().copied().collect();
                if let Some(spur_path) =
                    bfs_switch_path(topology, spur, to, &banned_nodes, &banned_edges)
                {
                    let mut total: Vec<SwitchId> = root[..i].to_vec();
                    total.extend(spur_path);
                    if !paths.contains(&total) {
                        candidates.insert((switch_path_cost(topology, &total), total));
                    }
                }
            }
            let Some(best) = candidates.iter().next().cloned() else {
                break;
            };
            candidates.remove(&best);
            paths.push(best.1);
        }
        paths
    }

    /// Wrap a switch path into the uplink + trunks + downlink [`Route`].
    fn route_from_switch_path(
        source: NodeId,
        destination: NodeId,
        path: &[SwitchId],
    ) -> RtResult<Route> {
        let mut links = Vec::with_capacity(path.len() + 1);
        links.push(HopLink::Uplink(source));
        for pair in path.windows(2) {
            links.push(HopLink::Trunk {
                from: pair[0],
                to: pair[1],
            });
        }
        links.push(HopLink::Downlink(destination));
        Route::from_links(links)
    }
}

impl Router for KShortestRouter {
    fn name(&self) -> &'static str {
        "k-shortest"
    }

    fn validate(&self, topology: &Topology) -> RtResult<()> {
        if !topology.is_connected() {
            return Err(RtError::Config("the switch graph must be connected".into()));
        }
        Ok(())
    }

    fn route(&self, topology: &Topology, source: NodeId, destination: NodeId) -> RtResult<Route> {
        let (src_switch, dst_switch) = route_endpoints(topology, source, destination)?;
        let none = std::collections::BTreeSet::new();
        let no_edges = std::collections::BTreeSet::new();
        let path = bfs_switch_path(topology, src_switch, dst_switch, &none, &no_edges).ok_or_else(
            || {
                RtError::Config(format!(
                    "switches {src_switch} and {dst_switch} are not connected"
                ))
            },
        )?;
        Self::route_from_switch_path(source, destination, &path)
    }

    fn routes(
        &self,
        topology: &Topology,
        source: NodeId,
        destination: NodeId,
    ) -> RtResult<Vec<Route>> {
        let (src_switch, dst_switch) = route_endpoints(topology, source, destination)?;
        let paths = self.switch_paths(topology, src_switch, dst_switch);
        if paths.is_empty() {
            return Err(RtError::Config(format!(
                "switches {src_switch} and {dst_switch} are not connected"
            )));
        }
        paths
            .iter()
            .map(|p| Self::route_from_switch_path(source, destination, p))
            .collect()
    }

    fn next_hop_cache(&self) -> Option<&NextHopCache> {
        Some(&self.cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring4() -> Topology {
        Topology::ring(4, 1)
    }

    #[test]
    fn route_shape_is_validated() {
        assert!(Route::from_links(vec![]).is_err());
        assert!(Route::from_links(vec![HopLink::Uplink(NodeId::new(0))]).is_err());
        assert!(Route::from_links(vec![
            HopLink::Downlink(NodeId::new(0)),
            HopLink::Uplink(NodeId::new(1)),
        ])
        .is_err());
        let trunk = |from: u32, to: u32| HopLink::Trunk {
            from: SwitchId::new(from),
            to: SwitchId::new(to),
        };
        // Interior links must be trunks.
        assert!(Route::from_links(vec![
            HopLink::Uplink(NodeId::new(0)),
            HopLink::Uplink(NodeId::new(1)),
            HopLink::Downlink(NodeId::new(2)),
        ])
        .is_err());
        // Discontiguous trunk chains are rejected.
        assert!(Route::from_links(vec![
            HopLink::Uplink(NodeId::new(0)),
            trunk(2, 3),
            HopLink::Downlink(NodeId::new(1)),
        ])
        .is_ok()); // a single trunk has nothing to be contiguous with
        assert!(Route::from_links(vec![
            HopLink::Uplink(NodeId::new(0)),
            trunk(0, 1),
            trunk(2, 3),
            HopLink::Downlink(NodeId::new(1)),
        ])
        .is_err());
        // Self-loop trunks and switch-revisiting walks are rejected.
        assert!(Route::from_links(vec![
            HopLink::Uplink(NodeId::new(0)),
            trunk(1, 1),
            HopLink::Downlink(NodeId::new(1)),
        ])
        .is_err());
        assert!(Route::from_links(vec![
            HopLink::Uplink(NodeId::new(0)),
            trunk(0, 1),
            trunk(1, 2),
            trunk(2, 1),
            HopLink::Downlink(NodeId::new(1)),
        ])
        .is_err());
        assert!(Route::from_links(vec![
            HopLink::Uplink(NodeId::new(0)),
            trunk(0, 1),
            trunk(1, 0),
            HopLink::Downlink(NodeId::new(1)),
        ])
        .is_err());
        // A legal multi-trunk chain passes.
        assert!(Route::from_links(vec![
            HopLink::Uplink(NodeId::new(0)),
            trunk(0, 1),
            trunk(1, 2),
            HopLink::Downlink(NodeId::new(1)),
        ])
        .is_ok());
        let r = Route::from_links(vec![
            HopLink::Uplink(NodeId::new(0)),
            HopLink::Downlink(NodeId::new(1)),
        ])
        .unwrap();
        assert_eq!(r.hops(), 2);
        assert_eq!(r.source(), NodeId::new(0));
        assert_eq!(r.destination(), NodeId::new(1));
        assert_eq!(r.links().len(), 2);
        assert_eq!(format!("{r}"), "[node0/uplink] [node1/downlink]");
    }

    #[test]
    fn tree_router_matches_topology_route_on_trees() {
        let t = Topology::line(4, 2);
        let router = TreeRouter::new();
        router.validate(&t).unwrap();
        for src in 0..8u32 {
            for dst in 0..8u32 {
                if src == dst {
                    continue;
                }
                let legacy = t.route(NodeId::new(src), NodeId::new(dst)).unwrap();
                let routed = router
                    .route(&t, NodeId::new(src), NodeId::new(dst))
                    .unwrap();
                assert_eq!(routed.links(), legacy.as_slice());
            }
        }
    }

    #[test]
    fn tree_router_rejects_cycles_and_disconnection() {
        let router = TreeRouter::new();
        assert!(router.validate(&ring4()).is_err());
        assert!(router
            .route(&ring4(), NodeId::new(0), NodeId::new(2))
            .is_err());
        let mut disconnected = Topology::new();
        disconnected.add_switch(SwitchId::new(0));
        disconnected.add_switch(SwitchId::new(1));
        assert!(router.validate(&disconnected).is_err());
        // Trees still pass after a rejection (the check is per topology).
        router.validate(&Topology::line(3, 1)).unwrap();
    }

    #[test]
    fn shortest_path_router_accepts_cycles() {
        let t = ring4();
        let router = ShortestPathRouter::new();
        router.validate(&t).unwrap();
        // sw0 -> sw3 uses the closing trunk: 3 links, not 5.
        let route = router.route(&t, NodeId::new(0), NodeId::new(3)).unwrap();
        assert_eq!(route.hops(), 3);
        assert_eq!(
            route.links()[1],
            HopLink::Trunk {
                from: SwitchId::new(0),
                to: SwitchId::new(3)
            }
        );
        let mut disconnected = Topology::new();
        disconnected.add_switch(SwitchId::new(0));
        disconnected.add_switch(SwitchId::new(1));
        assert!(router.validate(&disconnected).is_err());
    }

    #[test]
    fn routers_report_consistent_errors() {
        let t = Topology::line(2, 1);
        let routers: [&dyn Router; 3] = [
            &TreeRouter::new(),
            &ShortestPathRouter::new(),
            &EcmpRouter::new(7),
        ];
        for r in routers {
            assert!(r.route(&t, NodeId::new(0), NodeId::new(0)).is_err());
            assert!(r.route(&t, NodeId::new(0), NodeId::new(99)).is_err());
            assert!(r.route(&t, NodeId::new(99), NodeId::new(0)).is_err());
        }
    }

    #[test]
    fn ecmp_is_deterministic_per_seed_and_spreads_over_paths() {
        let t = ring4();
        let a = EcmpRouter::new(42);
        let b = EcmpRouter::new(42);
        // Equal-cost pair: sw0 -> sw2 has two 2-trunk paths.
        for (src, dst) in [(0u32, 2u32), (1, 3), (2, 0), (3, 1)] {
            let ra = a.route(&t, NodeId::new(src), NodeId::new(dst)).unwrap();
            let rb = b.route(&t, NodeId::new(src), NodeId::new(dst)).unwrap();
            assert_eq!(ra, rb, "same seed must give the same route");
            assert_eq!(ra.hops(), 4, "ECMP must still pick a shortest path");
        }
        // Over many node pairs on a larger ring, both equal-cost branches
        // are exercised.
        let big = Topology::ring(4, 8);
        let router = EcmpRouter::new(1);
        let mut via_sw1 = 0u32;
        let mut via_sw3 = 0u32;
        for k in 0..8u32 {
            for j in 0..8u32 {
                let route = router
                    .route(&big, NodeId::new(k), NodeId::new(16 + j))
                    .unwrap();
                match route.links()[1] {
                    HopLink::Trunk { to, .. } if to == SwitchId::new(1) => via_sw1 += 1,
                    HopLink::Trunk { to, .. } if to == SwitchId::new(3) => via_sw3 += 1,
                    other => panic!("unexpected first trunk {other:?}"),
                }
            }
        }
        assert!(via_sw1 > 0 && via_sw3 > 0, "ECMP must use both branches");
    }

    #[test]
    fn default_routes_is_the_single_primary() {
        let t = Topology::line(3, 1);
        let router = ShortestPathRouter::new();
        let routes = router.routes(&t, NodeId::new(0), NodeId::new(2)).unwrap();
        assert_eq!(routes.len(), 1);
        assert_eq!(
            routes[0],
            router.route(&t, NodeId::new(0), NodeId::new(2)).unwrap()
        );
    }

    #[test]
    fn k_shortest_enumerates_both_ways_around_a_ring() {
        let t = ring4();
        let router = KShortestRouter::new(4);
        router.validate(&t).unwrap();
        // sw0 -> sw2: two loop-free paths exist (via sw1 and via sw3).
        let paths = router.switch_paths(&t, SwitchId::new(0), SwitchId::new(2));
        assert_eq!(paths.len(), 2);
        assert_eq!(
            paths[0],
            vec![SwitchId::new(0), SwitchId::new(1), SwitchId::new(2)]
        );
        assert_eq!(
            paths[1],
            vec![SwitchId::new(0), SwitchId::new(3), SwitchId::new(2)]
        );
        // sw0 -> sw1: the direct trunk, then the long way around.
        let paths = router.switch_paths(&t, SwitchId::new(0), SwitchId::new(1));
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0], vec![SwitchId::new(0), SwitchId::new(1)]);
        assert_eq!(
            paths[1],
            vec![
                SwitchId::new(0),
                SwitchId::new(3),
                SwitchId::new(2),
                SwitchId::new(1)
            ]
        );
        // As routes: primary first, every candidate a valid Route.
        let routes = router.routes(&t, NodeId::new(0), NodeId::new(1)).unwrap();
        assert_eq!(routes.len(), 2);
        assert_eq!(
            routes[0],
            router.route(&t, NodeId::new(0), NodeId::new(1)).unwrap()
        );
        assert_eq!(routes[0].hops(), 3);
        assert_eq!(routes[1].hops(), 5);
    }

    #[test]
    fn k_shortest_is_deterministic_and_respects_k() {
        let t = Topology::torus(3, 3, 1);
        let a = KShortestRouter::new(3);
        let b = KShortestRouter::new(3);
        let pa = a.switch_paths(&t, SwitchId::new(0), SwitchId::new(4));
        let pb = b.switch_paths(&t, SwitchId::new(0), SwitchId::new(4));
        assert_eq!(pa, pb);
        assert_eq!(pa.len(), 3, "a torus has at least 3 loop-free paths");
        // Ascending length, shortest first.
        for w in pa.windows(2) {
            assert!(w[0].len() <= w[1].len());
        }
        // k = 1 degenerates to the single shortest path.
        let single = KShortestRouter::new(0); // clamped to 1
        assert_eq!(single.k(), 1);
        assert_eq!(
            single
                .switch_paths(&t, SwitchId::new(0), SwitchId::new(4))
                .len(),
            1
        );
    }

    #[test]
    fn k_shortest_survives_a_trunk_cut() {
        let mut t = ring4();
        let router = KShortestRouter::new(2);
        let before = router.routes(&t, NodeId::new(0), NodeId::new(3)).unwrap();
        assert_eq!(before[0].hops(), 3, "closing trunk is the primary");
        t.fail_trunk(SwitchId::new(3), SwitchId::new(0)).unwrap();
        let after = router.routes(&t, NodeId::new(0), NodeId::new(3)).unwrap();
        assert_eq!(after.len(), 1, "the degraded ring is a line: one path");
        assert_eq!(after[0].hops(), 5, "re-route goes the long way around");
        // Same-switch pairs never need the trunk graph.
        let local = router.routes(&t, NodeId::new(0), NodeId::new(0));
        assert!(local.is_err(), "same node is still rejected");
    }

    #[test]
    fn dense_next_hop_matches_the_tree_table() {
        for topology in [Topology::line(5, 1), Topology::ring(6, 1)] {
            let router = ShortestPathRouter::new();
            let table = router.next_hop_table(&topology);
            let dense = router.dense_next_hop(&topology);
            assert_eq!(dense.switch_count(), topology.switch_count());
            for from in topology.switches() {
                for to in topology.switches() {
                    let expected = if from == to {
                        None
                    } else {
                        table.get(&(from, to)).copied()
                    };
                    assert_eq!(dense.next_hop(from, to), expected, "{from} -> {to}");
                }
            }
            // Unknown switches resolve to nothing.
            assert_eq!(dense.next_hop(SwitchId::new(99), SwitchId::new(0)), None);
            assert!(dense.index_of(SwitchId::new(99)).is_none());
        }
    }

    #[test]
    fn dense_next_hop_is_cached_per_topology() {
        let t = Topology::line(4, 1);
        let router = ShortestPathRouter::new();
        let first = router.dense_next_hop(&t);
        let second = router.dense_next_hop(&t);
        assert!(Arc::ptr_eq(&first, &second));
        // The table and its dense form come from one cache entry.
        let table = router.next_hop_table(&t);
        let third = router.dense_next_hop(&t);
        assert!(Arc::ptr_eq(&first, &third));
        assert_eq!(table.len(), 4 * 3);
    }

    #[test]
    fn next_hop_cache_reuses_the_table() {
        let t = Topology::line(5, 1);
        let router = ShortestPathRouter::new();
        let first = router.next_hop_table(&t);
        let second = router.next_hop_table(&t);
        assert!(
            Arc::ptr_eq(&first, &second),
            "same topology reuses the table"
        );
        assert_eq!(first.len(), 5 * 4);
        // A structurally different topology misses the cache.
        let other = Topology::line(4, 1);
        let third = router.next_hop_table(&other);
        assert!(!Arc::ptr_eq(&first, &third));
    }

    #[test]
    fn cached_tables_stay_byte_identical_to_the_legacy_build() {
        // The per-destination column build (and the lazy BTreeMap form
        // derived from it) must reproduce Topology::next_hop_table exactly,
        // healthy and degraded — admission reproducibility depends on it.
        let mut weighted = Topology::ring(5, 1);
        weighted
            .set_trunk_cost(SwitchId::new(0), SwitchId::new(1), 3)
            .unwrap();
        let mut degraded = Topology::torus(3, 4, 1);
        degraded
            .fail_trunk(SwitchId::new(0), SwitchId::new(1))
            .unwrap();
        let topologies = [
            Topology::line(4, 1),
            Topology::ring(6, 1),
            Topology::torus(3, 4, 1),
            Topology::fat_tree(4).unwrap(),
            weighted,
            degraded,
        ];
        for t in topologies {
            let router = ShortestPathRouter::new();
            assert_eq!(
                *router.next_hop_table(&t),
                t.next_hop_table(),
                "switches={} uniform={}",
                t.switch_count(),
                t.has_uniform_cost()
            );
        }
    }

    #[test]
    fn cache_counts_hits_misses_and_evictions() {
        let router = ShortestPathRouter::new();
        let cache = router.next_hop_cache().expect("stock router has a cache");
        assert_eq!(cache.stats(), NextHopCacheStats::default());
        let t = Topology::ring(4, 1);
        router.dense_next_hop(&t);
        router.dense_next_hop(&t);
        router.next_hop_table(&t);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.full_rebuilds, 1);
        assert_eq!(stats.evictions, 0);

        // A tiny cache evicts under churn.
        let small = NextHopCache::with_capacity(1);
        assert_eq!(small.capacity(), 1);
        small.get_dense(&Topology::line(3, 1));
        small.get_dense(&Topology::line(4, 1));
        let stats = small.stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.evictions, 1);
    }

    #[test]
    fn single_trunk_flips_rebuild_incrementally() {
        // fail -> (new fingerprint) is served by patching the healthy
        // columns, and the patched table is byte-identical to from-scratch.
        let mut t = Topology::torus(4, 4, 1);
        let router = ShortestPathRouter::new();
        let cache = router.next_hop_cache().unwrap();
        router.dense_next_hop(&t);
        assert_eq!(cache.stats().full_rebuilds, 1);

        t.fail_trunk(SwitchId::new(0), SwitchId::new(1)).unwrap();
        let degraded = router.next_hop_table(&t);
        let stats = cache.stats();
        assert_eq!(stats.incremental_rebuilds, 1);
        assert_eq!(stats.full_rebuilds, 1);
        assert_eq!(*degraded, t.next_hop_table(), "patched == from-scratch");

        // A second, concurrent cut patches the degraded state.
        t.fail_trunk(SwitchId::new(5), SwitchId::new(6)).unwrap();
        let twice = router.next_hop_table(&t);
        assert_eq!(cache.stats().incremental_rebuilds, 2);
        assert_eq!(*twice, t.next_hop_table());

        // Repairing back is a fingerprint hit, not a rebuild.
        t.repair_trunk(SwitchId::new(5), SwitchId::new(6)).unwrap();
        router.next_hop_table(&t);
        let stats = cache.stats();
        assert_eq!(stats.incremental_rebuilds, 2);
        assert_eq!(stats.full_rebuilds, 1);
        assert!(stats.hits >= 1);
    }

    #[test]
    fn repair_onto_an_unseen_state_patches_from_the_degraded_base() {
        // Seed the cache with ONLY a degraded state, then repair: the
        // healthy state is one flip away and must be patched, including
        // the min-id improvement the repaired trunk re-enables.
        let mut t = Topology::ring(6, 1);
        t.fail_trunk(SwitchId::new(0), SwitchId::new(5)).unwrap();
        let router = ShortestPathRouter::new();
        let cache = router.next_hop_cache().unwrap();
        router.dense_next_hop(&t);
        t.repair_trunk(SwitchId::new(0), SwitchId::new(5)).unwrap();
        let healthy = router.next_hop_table(&t);
        assert_eq!(cache.stats().incremental_rebuilds, 1);
        assert_eq!(*healthy, t.next_hop_table());
    }

    #[test]
    fn disconnecting_cut_is_patched_correctly() {
        // Cutting a line in half makes whole columns unreachable — the
        // incremental path must fall back to per-column BFS and agree with
        // the from-scratch build.
        let mut t = Topology::line(6, 1);
        let router = ShortestPathRouter::new();
        router.dense_next_hop(&t);
        t.fail_trunk(SwitchId::new(2), SwitchId::new(3)).unwrap();
        let degraded = router.next_hop_table(&t);
        let cache = router.next_hop_cache().unwrap();
        assert_eq!(cache.stats().incremental_rebuilds, 1);
        assert_eq!(*degraded, t.next_hop_table());
    }

    #[test]
    fn next_hop_cache_keeps_churning_fingerprints_resident() {
        // Fault churn alternates between the healthy and the degraded
        // fingerprint; both must stay memoized so a repair is a lookup, not
        // a full recompute.
        let mut t = Topology::ring(5, 1);
        let router = ShortestPathRouter::new();
        let healthy = router.next_hop_table(&t);
        let healthy_dense = router.dense_next_hop(&t);
        t.fail_trunk(SwitchId::new(0), SwitchId::new(1)).unwrap();
        let degraded = router.next_hop_table(&t);
        assert!(!Arc::ptr_eq(&healthy, &degraded));
        t.repair_trunk(SwitchId::new(0), SwitchId::new(1)).unwrap();
        // Back to the healthy graph: same Arc, no rebuild.
        assert!(Arc::ptr_eq(&healthy, &router.next_hop_table(&t)));
        assert!(Arc::ptr_eq(&healthy_dense, &router.dense_next_hop(&t)));
        t.fail_trunk(SwitchId::new(0), SwitchId::new(1)).unwrap();
        assert!(Arc::ptr_eq(&degraded, &router.next_hop_table(&t)));
    }
}
