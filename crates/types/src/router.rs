//! Path selection over a [`Topology`]: the [`Router`] trait and its three
//! stock implementations.
//!
//! Hoang & Jonsson's analysis treats every *directed link* as an independent
//! EDF processor, so nothing in the admission theory cares how a channel's
//! path was chosen — only that the path is fixed at establishment time and
//! that every link on it passes the per-link feasibility test.  That makes
//! path selection a pluggable policy:
//!
//! * [`TreeRouter`] — the pre-mesh behaviour, byte for byte: requires the
//!   switch graph to be a tree (its *capability check*) and returns the
//!   unique path.
//! * [`ShortestPathRouter`] — BFS shortest paths over arbitrary connected
//!   meshes, deterministic tie-break (lowest switch id first).
//! * [`EcmpRouter`] — equal-cost multi-path: enumerates (by counting, not
//!   materialising) all shortest paths and picks one by a deterministic
//!   hash of `(seed, source, destination)` through the in-repo
//!   [`Xoshiro256`] PRNG, so different channels spread over redundant
//!   trunks while a fixed seed always yields the same route.
//!
//! All three share a per-topology cache of the next-hop forwarding table
//! keyed by [`Topology::fingerprint`], so constructing many simulators (or
//! routing many channels) over the same fabric computes the O(V·E) table
//! once.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Deref;
use std::sync::{Arc, Mutex};

use crate::dense::{IdIndex, NO_INDEX};
use crate::error::{RtError, RtResult};
use crate::ids::NodeId;
use crate::rng::Xoshiro256;
use crate::topology::{HopLink, SwitchId, Topology};

/// The next-hop forwarding table of a trunk graph: `(at, towards) →
/// neighbour of `at` on a shortest path towards `towards``.
pub type NextHopTable = BTreeMap<(SwitchId, SwitchId), SwitchId>;

/// The [`NextHopTable`] flattened for the per-event hot path: switches get
/// contiguous indices (via [`IdIndex`]) and the table becomes one `S × S`
/// vector of next-hop indices, so a forwarding decision is two array reads
/// instead of a tree descent.
///
/// The dense form carries the *same* routes as the `BTreeMap` it was built
/// from — the simulator uses it for speed, not policy.
#[derive(Debug)]
pub struct DenseNextHop {
    index: IdIndex,
    /// `table[at * S + towards]` = dense index of the next switch, or
    /// [`NO_INDEX`] when unreachable (or `at == towards`).
    table: Vec<u32>,
}

impl DenseNextHop {
    /// Flatten `table` over the switches of `topology`.
    pub fn build(topology: &Topology, table: &NextHopTable) -> Self {
        let index = IdIndex::new(topology.switches().map(|s| s.get()));
        let n = index.len();
        let mut dense = vec![NO_INDEX; n * n];
        for (&(from, to), &next) in table {
            let (Some(f), Some(t), Some(x)) = (
                index.get(from.get()),
                index.get(to.get()),
                index.get(next.get()),
            ) else {
                continue;
            };
            dense[f as usize * n + t as usize] = x;
        }
        DenseNextHop {
            index,
            table: dense,
        }
    }

    /// Number of switches.
    #[inline]
    pub fn switch_count(&self) -> usize {
        self.index.len()
    }

    /// The dense index of a switch.
    #[inline]
    pub fn index_of(&self, switch: SwitchId) -> Option<u32> {
        self.index.get(switch.get())
    }

    /// The switch at a dense index (panics if out of range).
    #[inline]
    pub fn switch_at(&self, index: u32) -> SwitchId {
        SwitchId::new(self.index.id_at(index))
    }

    /// The next hop from dense index `at` towards dense index `towards`,
    /// as a dense index.  This is the per-event fast path.
    #[inline]
    pub fn next_hop_index(&self, at: u32, towards: u32) -> Option<u32> {
        let n = self.index.len();
        match self.table[at as usize * n + towards as usize] {
            NO_INDEX => None,
            next => Some(next),
        }
    }

    /// The next hop by switch id (convenience for cold paths and tests).
    pub fn next_hop(&self, at: SwitchId, towards: SwitchId) -> Option<SwitchId> {
        let at = self.index_of(at)?;
        let towards = self.index_of(towards)?;
        self.next_hop_index(at, towards).map(|i| self.switch_at(i))
    }
}

/// The path an RT channel takes through the fabric: the source's uplink,
/// zero or more directed trunk hops, the destination's downlink.
///
/// A `Route` is what a [`Router`] produces and what admission control and
/// the wire-level simulator consume: each [`HopLink`] in it is one EDF
/// "processor" of the feasibility analysis and one output port of the
/// simulated fabric.  Derefs to `[HopLink]`, so `route.len()` is the hop
/// count `h` of the hop-aware Eq. 18.1 bound `d·slot + T_latency(h)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Route {
    links: Vec<HopLink>,
}

impl Route {
    /// Build a route from its directed links, validating its shape: at
    /// least two links, starting with the source's uplink, ending with the
    /// destination's downlink, and — in between — a contiguous chain of
    /// trunks that never revisits a switch.  The contiguity check matters
    /// because the simulator installs one forwarding entry *per switch* of
    /// the route: a switch-revisiting route would silently overwrite its
    /// own entries and could loop frames forever.
    pub fn from_links(links: Vec<HopLink>) -> RtResult<Self> {
        if links.len() < 2 {
            return Err(RtError::Config(format!(
                "a route needs at least an uplink and a downlink, got {} link(s)",
                links.len()
            )));
        }
        if !matches!(links.first(), Some(HopLink::Uplink(_))) {
            return Err(RtError::Config(
                "a route must start with the source's uplink".into(),
            ));
        }
        if !matches!(links.last(), Some(HopLink::Downlink(_))) {
            return Err(RtError::Config(
                "a route must end with the destination's downlink".into(),
            ));
        }
        let mut visited = std::collections::BTreeSet::new();
        let mut previous: Option<SwitchId> = None;
        for link in &links[1..links.len() - 1] {
            let HopLink::Trunk { from, to } = link else {
                return Err(RtError::Config(format!(
                    "interior links of a route must be trunks, got [{link}]"
                )));
            };
            if from == to {
                return Err(RtError::Config(format!(
                    "a route cannot contain the self-loop trunk [{link}]"
                )));
            }
            if let Some(previous) = previous {
                if previous != *from {
                    return Err(RtError::Config(format!(
                        "discontiguous route: trunk [{link}] does not start at {previous}"
                    )));
                }
            }
            if !visited.insert(*from) {
                return Err(RtError::Config(format!(
                    "a route cannot revisit switch {from}"
                )));
            }
            previous = Some(*to);
        }
        if let Some(last) = previous {
            if visited.contains(&last) {
                return Err(RtError::Config(format!(
                    "a route cannot revisit switch {last}"
                )));
            }
        }
        Ok(Route { links })
    }

    /// The directed links of the route, in traversal order.
    pub fn links(&self) -> &[HopLink] {
        &self.links
    }

    /// Number of directed links (the `h` of `T_latency(h)`).
    pub fn hops(&self) -> usize {
        self.links.len()
    }

    /// The source node (owner of the first link).
    pub fn source(&self) -> NodeId {
        match self.links[0] {
            HopLink::Uplink(n) => n,
            _ => unreachable!("validated in from_links"),
        }
    }

    /// The destination node (owner of the last link).
    pub fn destination(&self) -> NodeId {
        match self.links[self.links.len() - 1] {
            HopLink::Downlink(n) => n,
            _ => unreachable!("validated in from_links"),
        }
    }

    /// Consume the route, yielding its links.
    pub fn into_links(self) -> Vec<HopLink> {
        self.links
    }
}

impl Deref for Route {
    type Target = [HopLink];

    fn deref(&self) -> &[HopLink] {
        &self.links
    }
}

impl<'a> IntoIterator for &'a Route {
    type Item = &'a HopLink;
    type IntoIter = std::slice::Iter<'a, HopLink>;

    fn into_iter(self) -> Self::IntoIter {
        self.links.iter()
    }
}

impl fmt::Display for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, link) in self.links.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "[{link}]")?;
        }
        Ok(())
    }
}

/// A path-selection policy over a [`Topology`].
///
/// Implementations must be deterministic: the same topology, source and
/// destination always yield the same route (that is what makes admission
/// decisions and simulated delivery sequences reproducible).
pub trait Router: fmt::Debug + Send + Sync {
    /// A short policy name for reports and error messages.
    fn name(&self) -> &'static str;

    /// Capability check: can this router serve the given topology at all?
    /// [`TreeRouter`] rejects cyclic graphs here; the mesh routers only
    /// require connectivity.  Called once when a network or simulator is
    /// built, not per route.
    fn validate(&self, topology: &Topology) -> RtResult<()>;

    /// Select the path for an RT channel from `source` to `destination`.
    fn route(&self, topology: &Topology, source: NodeId, destination: NodeId) -> RtResult<Route>;

    /// The next-hop forwarding table used for traffic that carries no
    /// per-route forwarding state (control-plane and best-effort frames).
    /// Implementations cache this per topology fingerprint.
    fn next_hop_table(&self, topology: &Topology) -> Arc<NextHopTable>;

    /// The [`DenseNextHop`] flattening of [`Router::next_hop_table`], which
    /// is what the simulator's per-event hot path consumes.  The default
    /// builds it fresh; the stock routers override this with the shared
    /// per-topology cache.
    fn dense_next_hop(&self, topology: &Topology) -> Arc<DenseNextHop> {
        Arc::new(DenseNextHop::build(
            topology,
            &self.next_hop_table(topology),
        ))
    }

    /// Candidate routes in preference order, primary first.  Admission
    /// control tries them in order and accepts the first feasible one, so a
    /// router that can enumerate alternates (the [`KShortestRouter`]) turns
    /// "the shortest path is saturated" from a rejection into a detour.
    /// The default is the single [`Router::route`] — existing policies keep
    /// their exact behaviour.
    fn routes(
        &self,
        topology: &Topology,
        source: NodeId,
        destination: NodeId,
    ) -> RtResult<Vec<Route>> {
        Ok(vec![self.route(topology, source, destination)?])
    }
}

/// A per-topology memo of the next-hop table (tree and dense forms), keyed
/// by [`Topology::fingerprint`].  Shared by all stock routers so repeated
/// simulator constructions over the same fabric reuse one table.
///
/// The memo keeps a small bounded set of fingerprints (most recently used
/// first), not just the latest one.  Under fault churn a fabric alternates
/// between its healthy and degraded fingerprints on every cut/repair; a
/// single-entry cache recomputed the full `O(V·E log V)` table and its dense
/// flattening on *every* flip, which soak profiling showed dominating the
/// admission hot path.  With a few entries resident, a repair that returns
/// to a previously seen graph is a lookup.
#[derive(Debug, Default)]
pub struct NextHopCache {
    inner: Mutex<Vec<CacheEntry>>,
}

/// How many distinct topology fingerprints stay memoized.  Fault scripts
/// flip between a handful of graph states (healthy plus one per concurrent
/// cut), so a small bound captures the churn working set while keeping the
/// linear scan and memory footprint trivial.
const NEXT_HOP_CACHE_CAPACITY: usize = 8;

#[derive(Debug)]
struct CacheEntry {
    fingerprint: u64,
    table: Arc<NextHopTable>,
    dense: Arc<DenseNextHop>,
}

impl NextHopCache {
    fn entry(&self, topology: &Topology) -> (Arc<NextHopTable>, Arc<DenseNextHop>) {
        let fp = topology.fingerprint();
        let mut guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(pos) = guard.iter().position(|e| e.fingerprint == fp) {
            // Move the hit to the front so eviction drops the least
            // recently used fingerprint.
            let entry = guard.remove(pos);
            let out = (Arc::clone(&entry.table), Arc::clone(&entry.dense));
            guard.insert(0, entry);
            return out;
        }
        let table = Arc::new(topology.next_hop_table());
        let dense = Arc::new(DenseNextHop::build(topology, &table));
        guard.insert(
            0,
            CacheEntry {
                fingerprint: fp,
                table: Arc::clone(&table),
                dense: Arc::clone(&dense),
            },
        );
        guard.truncate(NEXT_HOP_CACHE_CAPACITY);
        (table, dense)
    }

    /// The cached table for `topology`, computing it on first use (or after
    /// the topology changed).
    pub fn get(&self, topology: &Topology) -> Arc<NextHopTable> {
        self.entry(topology).0
    }

    /// The cached dense flattening for `topology`, computed together with
    /// the table.
    pub fn get_dense(&self, topology: &Topology) -> Arc<DenseNextHop> {
        self.entry(topology).1
    }
}

/// Resolve and sanity-check the endpoints of a requested route.
fn route_endpoints(
    topology: &Topology,
    source: NodeId,
    destination: NodeId,
) -> RtResult<(SwitchId, SwitchId)> {
    if source == destination {
        return Err(RtError::InvalidChannelSpec(
            "source and destination must differ".into(),
        ));
    }
    let src_switch = topology
        .switch_of(source)
        .ok_or(RtError::UnknownNode(source))?;
    let dst_switch = topology
        .switch_of(destination)
        .ok_or(RtError::UnknownNode(destination))?;
    Ok((src_switch, dst_switch))
}

/// Walk the next-hop table from the source's switch to the destination's,
/// producing the uplink + trunks + downlink route.
fn walk_table(
    table: &NextHopTable,
    topology: &Topology,
    source: NodeId,
    destination: NodeId,
) -> RtResult<Route> {
    let (src_switch, dst_switch) = route_endpoints(topology, source, destination)?;
    let mut links = vec![HopLink::Uplink(source)];
    let mut at = src_switch;
    while at != dst_switch {
        let next = *table.get(&(at, dst_switch)).ok_or_else(|| {
            RtError::Config(format!(
                "switches {src_switch} and {dst_switch} are not connected"
            ))
        })?;
        links.push(HopLink::Trunk { from: at, to: next });
        at = next;
    }
    links.push(HopLink::Downlink(destination));
    Route::from_links(links)
}

/// The pre-mesh routing policy: the switch graph must be a tree and the
/// route is the unique path through it.  Identical, link for link, to the
/// routing `Topology::route` performed before path selection became
/// pluggable.
#[derive(Debug, Default)]
pub struct TreeRouter {
    cache: NextHopCache,
    /// Fingerprint of the last topology that passed the tree check.
    checked: Mutex<Option<u64>>,
}

impl TreeRouter {
    /// Create a tree router.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure_tree(&self, topology: &Topology) -> RtResult<()> {
        let fp = topology.fingerprint();
        let mut guard = self.checked.lock().unwrap_or_else(|e| e.into_inner());
        if *guard == Some(fp) {
            return Ok(());
        }
        if !topology.is_tree() {
            return Err(RtError::Config(format!(
                "TreeRouter requires a tree, but the switch graph has {} switches and {} trunks{}",
                topology.switch_count(),
                topology.trunk_count(),
                if topology.is_connected() {
                    " (cyclic)"
                } else {
                    " (disconnected)"
                }
            )));
        }
        *guard = Some(fp);
        Ok(())
    }
}

impl Router for TreeRouter {
    fn name(&self) -> &'static str {
        "tree"
    }

    fn validate(&self, topology: &Topology) -> RtResult<()> {
        self.ensure_tree(topology)
    }

    fn route(&self, topology: &Topology, source: NodeId, destination: NodeId) -> RtResult<Route> {
        self.ensure_tree(topology)?;
        walk_table(&self.cache.get(topology), topology, source, destination)
    }

    fn next_hop_table(&self, topology: &Topology) -> Arc<NextHopTable> {
        self.cache.get(topology)
    }

    fn dense_next_hop(&self, topology: &Topology) -> Arc<DenseNextHop> {
        self.cache.get_dense(topology)
    }
}

/// BFS shortest-path routing over arbitrary connected meshes, with a
/// deterministic tie-break (the BFS visits neighbours in ascending switch
/// id, so among equal-cost paths the lexicographically smallest wins).  On
/// a tree this coincides with [`TreeRouter`].
#[derive(Debug, Default)]
pub struct ShortestPathRouter {
    cache: NextHopCache,
}

impl ShortestPathRouter {
    /// Create a shortest-path router.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Router for ShortestPathRouter {
    fn name(&self) -> &'static str {
        "shortest-path"
    }

    fn validate(&self, topology: &Topology) -> RtResult<()> {
        if !topology.is_connected() {
            return Err(RtError::Config("the switch graph must be connected".into()));
        }
        Ok(())
    }

    fn route(&self, topology: &Topology, source: NodeId, destination: NodeId) -> RtResult<Route> {
        walk_table(&self.cache.get(topology), topology, source, destination)
    }

    fn next_hop_table(&self, topology: &Topology) -> Arc<NextHopTable> {
        self.cache.get(topology)
    }

    fn dense_next_hop(&self, topology: &Topology) -> Arc<DenseNextHop> {
        self.cache.get_dense(topology)
    }
}

/// Equal-cost multi-path routing: among *all* shortest paths between two
/// switches, pick one by a deterministic hash of `(seed, source,
/// destination)`.  Distinct node pairs therefore spread over redundant
/// trunks, while a fixed seed makes every run exactly reproducible.
///
/// The selection never materialises the path set: a BFS from the
/// destination switch yields distances, the per-switch shortest-path
/// *counts* are accumulated in distance order, and the hash picks the k-th
/// path by descending through the counts.
#[derive(Debug)]
pub struct EcmpRouter {
    seed: u64,
    cache: NextHopCache,
}

impl EcmpRouter {
    /// Create an ECMP router with the given hash seed.
    pub fn new(seed: u64) -> Self {
        EcmpRouter {
            seed,
            cache: NextHopCache::default(),
        }
    }

    /// The hash seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The deterministic per-pair selector: a PRNG keyed on the seed and
    /// the endpoints, independent of call order.
    fn pick(&self, source: NodeId, destination: NodeId, count: u64) -> u64 {
        if count <= 1 {
            return 0;
        }
        let key = self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (u64::from(source.get()) << 32)
            ^ u64::from(destination.get());
        Xoshiro256::new(key).below(count)
    }
}

impl Router for EcmpRouter {
    fn name(&self) -> &'static str {
        "ecmp"
    }

    fn validate(&self, topology: &Topology) -> RtResult<()> {
        if !topology.is_connected() {
            return Err(RtError::Config("the switch graph must be connected".into()));
        }
        Ok(())
    }

    fn route(&self, topology: &Topology, source: NodeId, destination: NodeId) -> RtResult<Route> {
        let (src_switch, dst_switch) = route_endpoints(topology, source, destination)?;
        if src_switch == dst_switch {
            return Route::from_links(vec![
                HopLink::Uplink(source),
                HopLink::Downlink(destination),
            ]);
        }
        // BFS distances towards the destination switch.
        let mut dist: BTreeMap<SwitchId, u64> = BTreeMap::from([(dst_switch, 0)]);
        let mut queue = std::collections::VecDeque::from([dst_switch]);
        while let Some(current) = queue.pop_front() {
            let d = dist[&current];
            for next in topology.neighbours(current) {
                if let std::collections::btree_map::Entry::Vacant(e) = dist.entry(next) {
                    e.insert(d + 1);
                    queue.push_back(next);
                }
            }
        }
        if !dist.contains_key(&src_switch) {
            return Err(RtError::Config(format!(
                "switches {src_switch} and {dst_switch} are not connected"
            )));
        }
        // Shortest-path counts towards the destination, accumulated in
        // ascending distance (saturating: the count only steers the hash).
        let mut by_distance: Vec<(u64, SwitchId)> = dist.iter().map(|(&s, &d)| (d, s)).collect();
        by_distance.sort_unstable();
        let mut count: BTreeMap<SwitchId, u64> = BTreeMap::from([(dst_switch, 1)]);
        for &(d, s) in by_distance.iter().skip(1) {
            let total = topology
                .neighbours(s)
                .filter(|n| dist.get(n) == Some(&(d - 1)))
                .map(|n| count.get(&n).copied().unwrap_or(0))
                .fold(0u64, u64::saturating_add);
            count.insert(s, total);
        }
        // Pick the k-th shortest path and walk it.
        let mut remaining = self.pick(source, destination, count[&src_switch]);
        let mut links = vec![HopLink::Uplink(source)];
        let mut at = src_switch;
        while at != dst_switch {
            let d = dist[&at];
            let mut chosen = None;
            for next in topology.neighbours(at) {
                if dist.get(&next) != Some(&(d - 1)) {
                    continue;
                }
                let paths_via = count.get(&next).copied().unwrap_or(0);
                if remaining < paths_via {
                    chosen = Some(next);
                    break;
                }
                remaining -= paths_via;
            }
            let next = chosen.expect("counts cover every shortest path");
            links.push(HopLink::Trunk { from: at, to: next });
            at = next;
        }
        links.push(HopLink::Downlink(destination));
        Route::from_links(links)
    }

    fn next_hop_table(&self, topology: &Topology) -> Arc<NextHopTable> {
        self.cache.get(topology)
    }

    fn dense_next_hop(&self, topology: &Topology) -> Arc<DenseNextHop> {
        self.cache.get_dense(topology)
    }
}

/// Cheapest switch path from `from` to `to` that avoids `banned_nodes` and
/// the *directed* `banned_edges` — the one shared search of
/// [`Topology::cheapest_predecessors_banned`] (BFS on uniform costs, byte
/// for byte the historical behaviour; deterministic Dijkstra on weighted
/// trunks), so the routers and `Topology`'s own paths can never disagree on
/// tie-breaks.
fn bfs_switch_path(
    topology: &Topology,
    from: SwitchId,
    to: SwitchId,
    banned_nodes: &std::collections::BTreeSet<SwitchId>,
    banned_edges: &std::collections::BTreeSet<(SwitchId, SwitchId)>,
) -> Option<Vec<SwitchId>> {
    if from == to {
        return Some(vec![from]);
    }
    let predecessor =
        topology.cheapest_predecessors_banned(from, Some(to), banned_nodes, banned_edges);
    if !predecessor.contains_key(&to) {
        return None;
    }
    let mut path = vec![to];
    let mut current = to;
    while current != from {
        current = predecessor[&current];
        path.push(current);
    }
    path.reverse();
    Some(path)
}

/// The summed trunk cost of a switch path (1 per trunk on unweighted
/// fabrics, so ordering by cost coincides with ordering by length there).
fn switch_path_cost(topology: &Topology, path: &[SwitchId]) -> u64 {
    path.windows(2)
        .map(|w| topology.trunk_cost(w[0], w[1]).unwrap_or(1))
        .sum()
}

/// K-shortest-path routing with admission fallback: the primary route is
/// the BFS shortest path, and [`Router::routes`] enumerates up to `k`
/// loop-free switch paths in ascending length (Yen's algorithm, ties broken
/// lexicographically) so admission control can fall back to a detour when
/// the shortest path's feasibility test fails — and fail-over can re-admit
/// channels over whatever survives a trunk cut.
///
/// Deterministic like every router: same topology and endpoints always
/// yield the same candidate list.
#[derive(Debug)]
pub struct KShortestRouter {
    k: usize,
    cache: NextHopCache,
}

impl KShortestRouter {
    /// Create a router that offers up to `k` candidate paths per request
    /// (`k` is clamped to at least 1).
    pub fn new(k: usize) -> Self {
        KShortestRouter {
            k: k.max(1),
            cache: NextHopCache::default(),
        }
    }

    /// The number of candidate paths offered per request.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Up to `k` loop-free switch paths from `from` to `to`, shortest first
    /// (Yen's algorithm over the trunk graph).  Fewer than `k` when the
    /// graph has fewer distinct loop-free paths.
    pub fn switch_paths(
        &self,
        topology: &Topology,
        from: SwitchId,
        to: SwitchId,
    ) -> Vec<Vec<SwitchId>> {
        let none_banned = std::collections::BTreeSet::new();
        let no_edges = std::collections::BTreeSet::new();
        let Some(first) = bfs_switch_path(topology, from, to, &none_banned, &no_edges) else {
            return Vec::new();
        };
        let mut paths = vec![first];
        // Candidates ordered by (cost, lexicographic path): ascending
        // iteration pops the best next path deterministically.  On an
        // unweighted fabric cost = trunks = length − 1, so the order is the
        // historical (length, path) one, byte for byte.
        let mut candidates: std::collections::BTreeSet<(u64, Vec<SwitchId>)> =
            std::collections::BTreeSet::new();
        while paths.len() < self.k {
            let prev = paths.last().expect("paths starts non-empty").clone();
            for i in 0..prev.len() - 1 {
                let spur = prev[i];
                let root = &prev[..=i];
                // Edges already used by accepted paths sharing this root
                // must not be reused for the spur.
                let mut banned_edges = std::collections::BTreeSet::new();
                for p in &paths {
                    if p.len() > i + 1 && p[..=i] == *root {
                        banned_edges.insert((p[i], p[i + 1]));
                    }
                }
                // Root nodes before the spur must not be revisited.
                let banned_nodes: std::collections::BTreeSet<SwitchId> =
                    root[..i].iter().copied().collect();
                if let Some(spur_path) =
                    bfs_switch_path(topology, spur, to, &banned_nodes, &banned_edges)
                {
                    let mut total: Vec<SwitchId> = root[..i].to_vec();
                    total.extend(spur_path);
                    if !paths.contains(&total) {
                        candidates.insert((switch_path_cost(topology, &total), total));
                    }
                }
            }
            let Some(best) = candidates.iter().next().cloned() else {
                break;
            };
            candidates.remove(&best);
            paths.push(best.1);
        }
        paths
    }

    /// Wrap a switch path into the uplink + trunks + downlink [`Route`].
    fn route_from_switch_path(
        source: NodeId,
        destination: NodeId,
        path: &[SwitchId],
    ) -> RtResult<Route> {
        let mut links = Vec::with_capacity(path.len() + 1);
        links.push(HopLink::Uplink(source));
        for pair in path.windows(2) {
            links.push(HopLink::Trunk {
                from: pair[0],
                to: pair[1],
            });
        }
        links.push(HopLink::Downlink(destination));
        Route::from_links(links)
    }
}

impl Router for KShortestRouter {
    fn name(&self) -> &'static str {
        "k-shortest"
    }

    fn validate(&self, topology: &Topology) -> RtResult<()> {
        if !topology.is_connected() {
            return Err(RtError::Config("the switch graph must be connected".into()));
        }
        Ok(())
    }

    fn route(&self, topology: &Topology, source: NodeId, destination: NodeId) -> RtResult<Route> {
        let (src_switch, dst_switch) = route_endpoints(topology, source, destination)?;
        let none = std::collections::BTreeSet::new();
        let no_edges = std::collections::BTreeSet::new();
        let path = bfs_switch_path(topology, src_switch, dst_switch, &none, &no_edges).ok_or_else(
            || {
                RtError::Config(format!(
                    "switches {src_switch} and {dst_switch} are not connected"
                ))
            },
        )?;
        Self::route_from_switch_path(source, destination, &path)
    }

    fn routes(
        &self,
        topology: &Topology,
        source: NodeId,
        destination: NodeId,
    ) -> RtResult<Vec<Route>> {
        let (src_switch, dst_switch) = route_endpoints(topology, source, destination)?;
        let paths = self.switch_paths(topology, src_switch, dst_switch);
        if paths.is_empty() {
            return Err(RtError::Config(format!(
                "switches {src_switch} and {dst_switch} are not connected"
            )));
        }
        paths
            .iter()
            .map(|p| Self::route_from_switch_path(source, destination, p))
            .collect()
    }

    fn next_hop_table(&self, topology: &Topology) -> Arc<NextHopTable> {
        self.cache.get(topology)
    }

    fn dense_next_hop(&self, topology: &Topology) -> Arc<DenseNextHop> {
        self.cache.get_dense(topology)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring4() -> Topology {
        Topology::ring(4, 1)
    }

    #[test]
    fn route_shape_is_validated() {
        assert!(Route::from_links(vec![]).is_err());
        assert!(Route::from_links(vec![HopLink::Uplink(NodeId::new(0))]).is_err());
        assert!(Route::from_links(vec![
            HopLink::Downlink(NodeId::new(0)),
            HopLink::Uplink(NodeId::new(1)),
        ])
        .is_err());
        let trunk = |from: u32, to: u32| HopLink::Trunk {
            from: SwitchId::new(from),
            to: SwitchId::new(to),
        };
        // Interior links must be trunks.
        assert!(Route::from_links(vec![
            HopLink::Uplink(NodeId::new(0)),
            HopLink::Uplink(NodeId::new(1)),
            HopLink::Downlink(NodeId::new(2)),
        ])
        .is_err());
        // Discontiguous trunk chains are rejected.
        assert!(Route::from_links(vec![
            HopLink::Uplink(NodeId::new(0)),
            trunk(2, 3),
            HopLink::Downlink(NodeId::new(1)),
        ])
        .is_ok()); // a single trunk has nothing to be contiguous with
        assert!(Route::from_links(vec![
            HopLink::Uplink(NodeId::new(0)),
            trunk(0, 1),
            trunk(2, 3),
            HopLink::Downlink(NodeId::new(1)),
        ])
        .is_err());
        // Self-loop trunks and switch-revisiting walks are rejected.
        assert!(Route::from_links(vec![
            HopLink::Uplink(NodeId::new(0)),
            trunk(1, 1),
            HopLink::Downlink(NodeId::new(1)),
        ])
        .is_err());
        assert!(Route::from_links(vec![
            HopLink::Uplink(NodeId::new(0)),
            trunk(0, 1),
            trunk(1, 2),
            trunk(2, 1),
            HopLink::Downlink(NodeId::new(1)),
        ])
        .is_err());
        assert!(Route::from_links(vec![
            HopLink::Uplink(NodeId::new(0)),
            trunk(0, 1),
            trunk(1, 0),
            HopLink::Downlink(NodeId::new(1)),
        ])
        .is_err());
        // A legal multi-trunk chain passes.
        assert!(Route::from_links(vec![
            HopLink::Uplink(NodeId::new(0)),
            trunk(0, 1),
            trunk(1, 2),
            HopLink::Downlink(NodeId::new(1)),
        ])
        .is_ok());
        let r = Route::from_links(vec![
            HopLink::Uplink(NodeId::new(0)),
            HopLink::Downlink(NodeId::new(1)),
        ])
        .unwrap();
        assert_eq!(r.hops(), 2);
        assert_eq!(r.source(), NodeId::new(0));
        assert_eq!(r.destination(), NodeId::new(1));
        assert_eq!(r.links().len(), 2);
        assert_eq!(format!("{r}"), "[node0/uplink] [node1/downlink]");
    }

    #[test]
    fn tree_router_matches_topology_route_on_trees() {
        let t = Topology::line(4, 2);
        let router = TreeRouter::new();
        router.validate(&t).unwrap();
        for src in 0..8u32 {
            for dst in 0..8u32 {
                if src == dst {
                    continue;
                }
                let legacy = t.route(NodeId::new(src), NodeId::new(dst)).unwrap();
                let routed = router
                    .route(&t, NodeId::new(src), NodeId::new(dst))
                    .unwrap();
                assert_eq!(routed.links(), legacy.as_slice());
            }
        }
    }

    #[test]
    fn tree_router_rejects_cycles_and_disconnection() {
        let router = TreeRouter::new();
        assert!(router.validate(&ring4()).is_err());
        assert!(router
            .route(&ring4(), NodeId::new(0), NodeId::new(2))
            .is_err());
        let mut disconnected = Topology::new();
        disconnected.add_switch(SwitchId::new(0));
        disconnected.add_switch(SwitchId::new(1));
        assert!(router.validate(&disconnected).is_err());
        // Trees still pass after a rejection (the check is per topology).
        router.validate(&Topology::line(3, 1)).unwrap();
    }

    #[test]
    fn shortest_path_router_accepts_cycles() {
        let t = ring4();
        let router = ShortestPathRouter::new();
        router.validate(&t).unwrap();
        // sw0 -> sw3 uses the closing trunk: 3 links, not 5.
        let route = router.route(&t, NodeId::new(0), NodeId::new(3)).unwrap();
        assert_eq!(route.hops(), 3);
        assert_eq!(
            route.links()[1],
            HopLink::Trunk {
                from: SwitchId::new(0),
                to: SwitchId::new(3)
            }
        );
        let mut disconnected = Topology::new();
        disconnected.add_switch(SwitchId::new(0));
        disconnected.add_switch(SwitchId::new(1));
        assert!(router.validate(&disconnected).is_err());
    }

    #[test]
    fn routers_report_consistent_errors() {
        let t = Topology::line(2, 1);
        let routers: [&dyn Router; 3] = [
            &TreeRouter::new(),
            &ShortestPathRouter::new(),
            &EcmpRouter::new(7),
        ];
        for r in routers {
            assert!(r.route(&t, NodeId::new(0), NodeId::new(0)).is_err());
            assert!(r.route(&t, NodeId::new(0), NodeId::new(99)).is_err());
            assert!(r.route(&t, NodeId::new(99), NodeId::new(0)).is_err());
        }
    }

    #[test]
    fn ecmp_is_deterministic_per_seed_and_spreads_over_paths() {
        let t = ring4();
        let a = EcmpRouter::new(42);
        let b = EcmpRouter::new(42);
        // Equal-cost pair: sw0 -> sw2 has two 2-trunk paths.
        for (src, dst) in [(0u32, 2u32), (1, 3), (2, 0), (3, 1)] {
            let ra = a.route(&t, NodeId::new(src), NodeId::new(dst)).unwrap();
            let rb = b.route(&t, NodeId::new(src), NodeId::new(dst)).unwrap();
            assert_eq!(ra, rb, "same seed must give the same route");
            assert_eq!(ra.hops(), 4, "ECMP must still pick a shortest path");
        }
        // Over many node pairs on a larger ring, both equal-cost branches
        // are exercised.
        let big = Topology::ring(4, 8);
        let router = EcmpRouter::new(1);
        let mut via_sw1 = 0u32;
        let mut via_sw3 = 0u32;
        for k in 0..8u32 {
            for j in 0..8u32 {
                let route = router
                    .route(&big, NodeId::new(k), NodeId::new(16 + j))
                    .unwrap();
                match route.links()[1] {
                    HopLink::Trunk { to, .. } if to == SwitchId::new(1) => via_sw1 += 1,
                    HopLink::Trunk { to, .. } if to == SwitchId::new(3) => via_sw3 += 1,
                    other => panic!("unexpected first trunk {other:?}"),
                }
            }
        }
        assert!(via_sw1 > 0 && via_sw3 > 0, "ECMP must use both branches");
    }

    #[test]
    fn default_routes_is_the_single_primary() {
        let t = Topology::line(3, 1);
        let router = ShortestPathRouter::new();
        let routes = router.routes(&t, NodeId::new(0), NodeId::new(2)).unwrap();
        assert_eq!(routes.len(), 1);
        assert_eq!(
            routes[0],
            router.route(&t, NodeId::new(0), NodeId::new(2)).unwrap()
        );
    }

    #[test]
    fn k_shortest_enumerates_both_ways_around_a_ring() {
        let t = ring4();
        let router = KShortestRouter::new(4);
        router.validate(&t).unwrap();
        // sw0 -> sw2: two loop-free paths exist (via sw1 and via sw3).
        let paths = router.switch_paths(&t, SwitchId::new(0), SwitchId::new(2));
        assert_eq!(paths.len(), 2);
        assert_eq!(
            paths[0],
            vec![SwitchId::new(0), SwitchId::new(1), SwitchId::new(2)]
        );
        assert_eq!(
            paths[1],
            vec![SwitchId::new(0), SwitchId::new(3), SwitchId::new(2)]
        );
        // sw0 -> sw1: the direct trunk, then the long way around.
        let paths = router.switch_paths(&t, SwitchId::new(0), SwitchId::new(1));
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0], vec![SwitchId::new(0), SwitchId::new(1)]);
        assert_eq!(
            paths[1],
            vec![
                SwitchId::new(0),
                SwitchId::new(3),
                SwitchId::new(2),
                SwitchId::new(1)
            ]
        );
        // As routes: primary first, every candidate a valid Route.
        let routes = router.routes(&t, NodeId::new(0), NodeId::new(1)).unwrap();
        assert_eq!(routes.len(), 2);
        assert_eq!(
            routes[0],
            router.route(&t, NodeId::new(0), NodeId::new(1)).unwrap()
        );
        assert_eq!(routes[0].hops(), 3);
        assert_eq!(routes[1].hops(), 5);
    }

    #[test]
    fn k_shortest_is_deterministic_and_respects_k() {
        let t = Topology::torus(3, 3, 1);
        let a = KShortestRouter::new(3);
        let b = KShortestRouter::new(3);
        let pa = a.switch_paths(&t, SwitchId::new(0), SwitchId::new(4));
        let pb = b.switch_paths(&t, SwitchId::new(0), SwitchId::new(4));
        assert_eq!(pa, pb);
        assert_eq!(pa.len(), 3, "a torus has at least 3 loop-free paths");
        // Ascending length, shortest first.
        for w in pa.windows(2) {
            assert!(w[0].len() <= w[1].len());
        }
        // k = 1 degenerates to the single shortest path.
        let single = KShortestRouter::new(0); // clamped to 1
        assert_eq!(single.k(), 1);
        assert_eq!(
            single
                .switch_paths(&t, SwitchId::new(0), SwitchId::new(4))
                .len(),
            1
        );
    }

    #[test]
    fn k_shortest_survives_a_trunk_cut() {
        let mut t = ring4();
        let router = KShortestRouter::new(2);
        let before = router.routes(&t, NodeId::new(0), NodeId::new(3)).unwrap();
        assert_eq!(before[0].hops(), 3, "closing trunk is the primary");
        t.fail_trunk(SwitchId::new(3), SwitchId::new(0)).unwrap();
        let after = router.routes(&t, NodeId::new(0), NodeId::new(3)).unwrap();
        assert_eq!(after.len(), 1, "the degraded ring is a line: one path");
        assert_eq!(after[0].hops(), 5, "re-route goes the long way around");
        // Same-switch pairs never need the trunk graph.
        let local = router.routes(&t, NodeId::new(0), NodeId::new(0));
        assert!(local.is_err(), "same node is still rejected");
    }

    #[test]
    fn dense_next_hop_matches_the_tree_table() {
        for topology in [Topology::line(5, 1), Topology::ring(6, 1)] {
            let router = ShortestPathRouter::new();
            let table = router.next_hop_table(&topology);
            let dense = router.dense_next_hop(&topology);
            assert_eq!(dense.switch_count(), topology.switch_count());
            for from in topology.switches() {
                for to in topology.switches() {
                    let expected = if from == to {
                        None
                    } else {
                        table.get(&(from, to)).copied()
                    };
                    assert_eq!(dense.next_hop(from, to), expected, "{from} -> {to}");
                }
            }
            // Unknown switches resolve to nothing.
            assert_eq!(dense.next_hop(SwitchId::new(99), SwitchId::new(0)), None);
            assert!(dense.index_of(SwitchId::new(99)).is_none());
        }
    }

    #[test]
    fn dense_next_hop_is_cached_per_topology() {
        let t = Topology::line(4, 1);
        let router = ShortestPathRouter::new();
        let first = router.dense_next_hop(&t);
        let second = router.dense_next_hop(&t);
        assert!(Arc::ptr_eq(&first, &second));
        // The table and its dense form come from one cache entry.
        let table = router.next_hop_table(&t);
        let third = router.dense_next_hop(&t);
        assert!(Arc::ptr_eq(&first, &third));
        assert_eq!(table.len(), 4 * 3);
    }

    #[test]
    fn next_hop_cache_reuses_the_table() {
        let t = Topology::line(5, 1);
        let router = ShortestPathRouter::new();
        let first = router.next_hop_table(&t);
        let second = router.next_hop_table(&t);
        assert!(
            Arc::ptr_eq(&first, &second),
            "same topology reuses the table"
        );
        assert_eq!(first.len(), 5 * 4);
        // A structurally different topology misses the cache.
        let other = Topology::line(4, 1);
        let third = router.next_hop_table(&other);
        assert!(!Arc::ptr_eq(&first, &third));
    }

    #[test]
    fn next_hop_cache_keeps_churning_fingerprints_resident() {
        // Fault churn alternates between the healthy and the degraded
        // fingerprint; both must stay memoized so a repair is a lookup, not
        // a full recompute.
        let mut t = Topology::ring(5, 1);
        let router = ShortestPathRouter::new();
        let healthy = router.next_hop_table(&t);
        let healthy_dense = router.dense_next_hop(&t);
        t.fail_trunk(SwitchId::new(0), SwitchId::new(1)).unwrap();
        let degraded = router.next_hop_table(&t);
        assert!(!Arc::ptr_eq(&healthy, &degraded));
        t.repair_trunk(SwitchId::new(0), SwitchId::new(1)).unwrap();
        // Back to the healthy graph: same Arc, no rebuild.
        assert!(Arc::ptr_eq(&healthy, &router.next_hop_table(&t)));
        assert!(Arc::ptr_eq(&healthy_dense, &router.dense_next_hop(&t)));
        t.fail_trunk(SwitchId::new(0), SwitchId::new(1)).unwrap();
        assert!(Arc::ptr_eq(&degraded, &router.next_hop_table(&t)));
    }
}
