//! The *ResponseFrame* of Figure 18.4: the accept/reject answer flowing back
//! from the destination node (or directly from the switch, when the switch
//! itself rejects the request) towards the source node.
//!
//! The figure's data field contains a type byte identifying a response
//! packet, the 16-bit RT channel ID, the switch MAC address as the frame's
//! source, a 1-bit response code (0 = not OK, 1 = OK) and the 8-bit
//! connection request ID.  The response bit occupies a full byte on the wire
//! here (bit 0), with the remaining bits reserved.

use rt_types::{
    constants::{ETHERTYPE_RT_CONTROL, RT_FRAME_TYPE_RESPONSE},
    ChannelId, ConnectionRequestId, MacAddr, RtError, RtResult,
};

use crate::ethernet::EthernetFrame;
use crate::wire::{ByteReader, ByteWriter};

/// Wire size of the ResponseFrame payload in bytes.
pub const RESPONSE_FRAME_BYTES: usize = 11;

/// The verdict carried by a [`ResponseFrame`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseVerdict {
    /// The channel establishment was accepted (wire value 1).
    Accepted,
    /// The channel establishment was rejected (wire value 0).
    Rejected,
}

impl ResponseVerdict {
    /// `true` if this verdict accepts the channel.
    pub fn is_accepted(self) -> bool {
        matches!(self, ResponseVerdict::Accepted)
    }
}

/// A connection response for an RT channel request (Figure 18.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResponseFrame {
    /// The network-unique RT channel ID assigned by the switch; `None` when
    /// the switch rejected the request before assigning an ID (encoded as 0).
    pub rt_channel_id: Option<ChannelId>,
    /// MAC address of the switch (the frame's logical source, per the
    /// figure: "Source MAC addr. = switch addr.").
    pub switch_mac: MacAddr,
    /// Accept / reject verdict.
    pub verdict: ResponseVerdict,
    /// The connection request ID this response answers.
    pub connection_request_id: ConnectionRequestId,
}

impl ResponseFrame {
    /// Serialise the 11-byte payload.
    ///
    /// Layout (offsets in bytes): `0` type, `1` connection request ID,
    /// `2..4` RT channel ID, `4..10` switch MAC, `10` response code.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(RESPONSE_FRAME_BYTES);
        self.encode_into(&mut out);
        out
    }

    /// Append the serialised payload to `out` (same bytes as
    /// [`ResponseFrame::encode`]).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let base = out.len();
        let mut w = ByteWriter::from_vec(std::mem::take(out));
        w.put_u8(RT_FRAME_TYPE_RESPONSE);
        w.put_u8(self.connection_request_id.get());
        w.put_u16(self.rt_channel_id.map_or(0, |c| c.get()));
        w.put_slice(&self.switch_mac.octets());
        w.put_u8(match self.verdict {
            ResponseVerdict::Accepted => 1,
            ResponseVerdict::Rejected => 0,
        });
        debug_assert_eq!(w.len() - base, RESPONSE_FRAME_BYTES);
        *out = w.into_vec();
    }

    /// Parse a ResponseFrame payload; Ethernet padding after the 11 bytes is
    /// tolerated.
    pub fn decode(bytes: &[u8]) -> RtResult<Self> {
        let mut r = ByteReader::new(bytes, "ResponseFrame");
        let ty = r.get_u8()?;
        if ty != RT_FRAME_TYPE_RESPONSE {
            return Err(RtError::FrameDecode(format!(
                "ResponseFrame: type byte {ty:#04x} is not a response packet"
            )));
        }
        let connection_request_id = ConnectionRequestId::new(r.get_u8()?);
        let raw_channel = r.get_u16()?;
        let switch_mac = MacAddr::new(r.get_array::<6>()?);
        let code = r.get_u8()?;
        let verdict = match code & 0x01 {
            1 => ResponseVerdict::Accepted,
            _ => ResponseVerdict::Rejected,
        };
        Ok(ResponseFrame {
            rt_channel_id: if raw_channel == 0 {
                None
            } else {
                Some(ChannelId::new(raw_channel))
            },
            switch_mac,
            verdict,
            connection_request_id,
        })
    }

    /// Wrap this response in an Ethernet frame.
    pub fn into_ethernet(&self, eth_src: MacAddr, eth_dst: MacAddr) -> RtResult<EthernetFrame> {
        EthernetFrame::new(eth_dst, eth_src, ETHERTYPE_RT_CONTROL, self.encode())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_types::rng::Xoshiro256;

    fn sample(verdict: ResponseVerdict) -> ResponseFrame {
        ResponseFrame {
            rt_channel_id: Some(ChannelId::new(0x0102)),
            switch_mac: MacAddr::for_switch(),
            verdict,
            connection_request_id: ConnectionRequestId::new(42),
        }
    }

    #[test]
    fn golden_bytes_layout() {
        let bytes = sample(ResponseVerdict::Accepted).encode();
        assert_eq!(bytes.len(), RESPONSE_FRAME_BYTES);
        assert_eq!(bytes[0], RT_FRAME_TYPE_RESPONSE);
        assert_eq!(bytes[1], 42);
        assert_eq!(&bytes[2..4], &[0x01, 0x02]);
        assert_eq!(&bytes[4..10], &MacAddr::for_switch().octets());
        assert_eq!(bytes[10], 1);
        let rejected = sample(ResponseVerdict::Rejected).encode();
        assert_eq!(rejected[10], 0);
    }

    #[test]
    fn round_trip_both_verdicts() {
        for v in [ResponseVerdict::Accepted, ResponseVerdict::Rejected] {
            let f = sample(v);
            assert_eq!(ResponseFrame::decode(&f.encode()).unwrap(), f);
        }
    }

    #[test]
    fn rejection_without_channel_id() {
        let f = ResponseFrame {
            rt_channel_id: None,
            switch_mac: MacAddr::for_switch(),
            verdict: ResponseVerdict::Rejected,
            connection_request_id: ConnectionRequestId::new(1),
        };
        let g = ResponseFrame::decode(&f.encode()).unwrap();
        assert_eq!(g.rt_channel_id, None);
        assert!(!g.verdict.is_accepted());
    }

    #[test]
    fn encode_into_matches_owned_encode() {
        for v in [ResponseVerdict::Accepted, ResponseVerdict::Rejected] {
            let f = sample(v);
            let mut out = vec![0x11, 0x22];
            f.encode_into(&mut out);
            assert_eq!(&out[2..], &f.encode()[..]);
        }
    }

    #[test]
    fn rejects_wrong_type_and_truncation() {
        let mut bytes = sample(ResponseVerdict::Accepted).encode();
        bytes[0] = 0xee;
        assert!(ResponseFrame::decode(&bytes).is_err());
        let bytes = sample(ResponseVerdict::Accepted).encode();
        assert!(ResponseFrame::decode(&bytes[..10]).is_err());
    }

    #[test]
    fn survives_ethernet_padding() {
        let f = sample(ResponseVerdict::Accepted);
        let eth = f
            .into_ethernet(MacAddr::for_switch(), MacAddr::new([2, 0, 0, 0, 0, 1]))
            .unwrap();
        let decoded = EthernetFrame::decode(&eth.encode()).unwrap();
        assert_eq!(ResponseFrame::decode(&decoded.payload).unwrap(), f);
    }

    /// Randomised responses survive encode → decode.
    #[test]
    fn prop_round_trip() {
        let mut rng = Xoshiro256::new(0x2e59_0a5e);
        for _ in 0..512 {
            let chan = rng.below(1 << 16) as u16;
            let mut mac = [0u8; 6];
            for b in &mut mac {
                *b = rng.below(256) as u8;
            }
            let f = ResponseFrame {
                rt_channel_id: if chan == 0 {
                    None
                } else {
                    Some(ChannelId::new(chan))
                },
                switch_mac: MacAddr::new(mac),
                verdict: if rng.chance(0.5) {
                    ResponseVerdict::Accepted
                } else {
                    ResponseVerdict::Rejected
                },
                connection_request_id: ConnectionRequestId::new(rng.below(256) as u8),
            };
            assert_eq!(ResponseFrame::decode(&f.encode()).unwrap(), f);
        }
    }
}
