//! Ethernet II framing.
//!
//! The RT layer sits *above* unmodified Ethernet (that is the whole point of
//! the paper), so this module implements ordinary Ethernet II frames:
//! destination MAC, source MAC, EtherType, payload, and size accounting for
//! minimum-size padding and wire overhead (preamble + inter-frame gap).  The
//! FCS is accounted for in the length maths but not computed — the simulator
//! never corrupts frames, and computing a CRC-32 would only add noise to the
//! benchmarks.

use rt_types::{
    constants::{
        ETH_FCS_BYTES, ETH_HEADER_BYTES, ETH_MIN_PAYLOAD_BYTES, ETH_MTU_BYTES,
        ETH_WIRE_OVERHEAD_BYTES,
    },
    MacAddr, RtError, RtResult,
};

use crate::wire::{ByteReader, ByteWriter};

/// An Ethernet II frame: header plus payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EthernetFrame {
    /// Destination MAC address.
    pub dst: MacAddr,
    /// Source MAC address.
    pub src: MacAddr,
    /// EtherType of the payload.
    pub ethertype: u16,
    /// MAC client data (not yet padded to the 46-byte minimum).
    pub payload: Vec<u8>,
}

impl EthernetFrame {
    /// Build a frame, rejecting payloads that exceed the Ethernet MTU.
    pub fn new(dst: MacAddr, src: MacAddr, ethertype: u16, payload: Vec<u8>) -> RtResult<Self> {
        if payload.len() > ETH_MTU_BYTES {
            return Err(RtError::FrameEncode(format!(
                "payload of {} bytes exceeds the {} byte Ethernet MTU",
                payload.len(),
                ETH_MTU_BYTES
            )));
        }
        Ok(EthernetFrame {
            dst,
            src,
            ethertype,
            payload,
        })
    }

    /// Size of the MAC frame on the medium: header + padded payload + FCS.
    pub fn frame_bytes(&self) -> usize {
        let payload = self.payload.len().max(ETH_MIN_PAYLOAD_BYTES);
        ETH_HEADER_BYTES + payload + ETH_FCS_BYTES
    }

    /// Total wire occupancy including preamble/SFD and inter-frame gap; this
    /// is the quantity that converts to transmission time on a link.
    pub fn wire_bytes(&self) -> usize {
        self.frame_bytes() + ETH_WIRE_OVERHEAD_BYTES
    }

    /// Serialise header + payload (+ zero padding up to the minimum payload
    /// size).  The 4-byte FCS is emitted as zeroes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.frame_bytes());
        self.encode_into(&mut out);
        out
    }

    /// Append the serialised frame to `out` (same bytes as [`encode`],
    /// without allocating when `out` has capacity).
    ///
    /// [`encode`]: EthernetFrame::encode
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let mut w = ByteWriter::from_vec(std::mem::take(out));
        w.put_slice(&self.dst.octets());
        w.put_slice(&self.src.octets());
        w.put_u16(self.ethertype);
        w.put_slice(&self.payload);
        if self.payload.len() < ETH_MIN_PAYLOAD_BYTES {
            w.put_zeros(ETH_MIN_PAYLOAD_BYTES - self.payload.len());
        }
        w.put_zeros(ETH_FCS_BYTES);
        *out = w.into_vec();
    }

    /// Append the *unpadded* form to `out`: header + raw payload, no
    /// minimum-size padding and no FCS.  This is the representation stored
    /// in the frame arena — unlike the wire form it round-trips through
    /// [`decode_unpadded`] without growing short payloads, so the
    /// reconstructed struct (and hence its re-encoded wire bytes) is
    /// identical to the original.
    ///
    /// [`decode_unpadded`]: EthernetFrame::decode_unpadded
    pub fn encode_unpadded_into(&self, out: &mut Vec<u8>) {
        let mut w = ByteWriter::from_vec(std::mem::take(out));
        w.put_slice(&self.dst.octets());
        w.put_slice(&self.src.octets());
        w.put_u16(self.ethertype);
        w.put_slice(&self.payload);
        *out = w.into_vec();
    }

    /// Write the unpadded form into an exactly-sized slice (the shape the
    /// frame arena hands out: [`unpadded_len`] bytes, no spare capacity).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.unpadded_len()`.
    ///
    /// [`unpadded_len`]: EthernetFrame::unpadded_len
    pub fn encode_unpadded_to_slice(&self, out: &mut [u8]) {
        assert_eq!(
            out.len(),
            self.unpadded_len(),
            "slice must be exactly unpadded_len bytes"
        );
        out[0..6].copy_from_slice(&self.dst.octets());
        out[6..12].copy_from_slice(&self.src.octets());
        out[12..14].copy_from_slice(&self.ethertype.to_be_bytes());
        out[ETH_HEADER_BYTES..].copy_from_slice(&self.payload);
    }

    /// Length of the unpadded form produced by
    /// [`EthernetFrame::encode_unpadded_into`].
    pub fn unpadded_len(&self) -> usize {
        ETH_HEADER_BYTES + self.payload.len()
    }

    /// Parse the unpadded form produced by
    /// [`EthernetFrame::encode_unpadded_into`]: everything after the header
    /// is payload (there is no FCS to strip).
    pub fn decode_unpadded(bytes: &[u8]) -> RtResult<Self> {
        let mut r = ByteReader::new(bytes, "EthernetFrame(unpadded)");
        let dst = MacAddr::new(r.get_array::<6>()?);
        let src = MacAddr::new(r.get_array::<6>()?);
        let ethertype = r.get_u16()?;
        let payload = r.get_rest().to_vec();
        if payload.len() > ETH_MTU_BYTES {
            return Err(RtError::FrameDecode(format!(
                "EthernetFrame: payload of {} bytes exceeds MTU",
                payload.len()
            )));
        }
        Ok(EthernetFrame {
            dst,
            src,
            ethertype,
            payload,
        })
    }

    /// Parse a frame from its serialised form (as produced by [`encode`]).
    ///
    /// Padding cannot be distinguished from payload at this layer, so the
    /// payload returned may include trailing padding zeroes; upper-layer
    /// codecs (IPv4 total-length, RT control frame fixed sizes) trim it.
    ///
    /// [`encode`]: EthernetFrame::encode
    pub fn decode(bytes: &[u8]) -> RtResult<Self> {
        let mut r = ByteReader::new(bytes, "EthernetFrame");
        let dst = MacAddr::new(r.get_array::<6>()?);
        let src = MacAddr::new(r.get_array::<6>()?);
        let ethertype = r.get_u16()?;
        let rest = r.get_rest();
        if rest.len() < ETH_FCS_BYTES {
            return Err(RtError::FrameDecode(
                "EthernetFrame: truncated before FCS".into(),
            ));
        }
        let payload = rest[..rest.len() - ETH_FCS_BYTES].to_vec();
        if payload.len() > ETH_MTU_BYTES {
            return Err(RtError::FrameDecode(format!(
                "EthernetFrame: payload of {} bytes exceeds MTU",
                payload.len()
            )));
        }
        Ok(EthernetFrame {
            dst,
            src,
            ethertype,
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_types::constants::{ETHERTYPE_IPV4, MAX_FRAME_BYTES, MIN_FRAME_BYTES};

    fn addrs() -> (MacAddr, MacAddr) {
        (
            MacAddr::new([2, 0, 0, 0, 0, 1]),
            MacAddr::new([2, 0, 0, 0, 0, 2]),
        )
    }

    #[test]
    fn short_payload_is_padded_to_minimum() {
        let (dst, src) = addrs();
        let f = EthernetFrame::new(dst, src, ETHERTYPE_IPV4, vec![1, 2, 3]).unwrap();
        assert_eq!(f.frame_bytes(), MIN_FRAME_BYTES);
        assert_eq!(f.encode().len(), MIN_FRAME_BYTES);
        assert_eq!(f.wire_bytes(), MIN_FRAME_BYTES + 20);
    }

    #[test]
    fn full_payload_reaches_max_frame() {
        let (dst, src) = addrs();
        let f = EthernetFrame::new(dst, src, ETHERTYPE_IPV4, vec![0xaa; 1500]).unwrap();
        assert_eq!(f.frame_bytes(), MAX_FRAME_BYTES);
        assert_eq!(f.wire_bytes(), MAX_FRAME_BYTES + 20);
    }

    #[test]
    fn oversized_payload_rejected() {
        let (dst, src) = addrs();
        assert!(EthernetFrame::new(dst, src, ETHERTYPE_IPV4, vec![0; 1501]).is_err());
    }

    #[test]
    fn encode_decode_round_trip() {
        let (dst, src) = addrs();
        let payload: Vec<u8> = (0..200u16).map(|v| (v & 0xff) as u8).collect();
        let f = EthernetFrame::new(dst, src, 0x88B5, payload.clone()).unwrap();
        let bytes = f.encode();
        let g = EthernetFrame::decode(&bytes).unwrap();
        assert_eq!(g.dst, dst);
        assert_eq!(g.src, src);
        assert_eq!(g.ethertype, 0x88B5);
        assert_eq!(g.payload, payload);
    }

    #[test]
    fn round_trip_short_payload_keeps_padding() {
        let (dst, src) = addrs();
        let f = EthernetFrame::new(dst, src, ETHERTYPE_IPV4, vec![7, 8]).unwrap();
        let g = EthernetFrame::decode(&f.encode()).unwrap();
        // Padding is indistinguishable at this layer; payload grows to the
        // minimum payload size.
        assert_eq!(g.payload.len(), 46);
        assert_eq!(&g.payload[..2], &[7, 8]);
        assert!(g.payload[2..].iter().all(|&b| b == 0));
    }

    #[test]
    fn decode_rejects_truncated_frames() {
        assert!(EthernetFrame::decode(&[0u8; 10]).is_err());
        assert!(EthernetFrame::decode(&[0u8; 17]).is_err());
    }

    #[test]
    fn encode_into_matches_owned_encode() {
        let (dst, src) = addrs();
        for payload_len in [0usize, 3, 46, 200, 1500] {
            let payload: Vec<u8> = (0..payload_len).map(|v| (v & 0xff) as u8).collect();
            let f = EthernetFrame::new(dst, src, ETHERTYPE_IPV4, payload).unwrap();
            let mut out = Vec::new();
            f.encode_into(&mut out);
            assert_eq!(out, f.encode());
        }
    }

    #[test]
    fn unpadded_round_trip_is_struct_exact() {
        let (dst, src) = addrs();
        // Short payloads are exactly where the wire form loses information
        // to padding; the unpadded form must not.
        let f = EthernetFrame::new(dst, src, 0x88B5, vec![7, 8]).unwrap();
        let mut stored = Vec::new();
        f.encode_unpadded_into(&mut stored);
        assert_eq!(stored.len(), f.unpadded_len());
        let g = EthernetFrame::decode_unpadded(&stored).unwrap();
        assert_eq!(g, f);
        // And therefore the re-encoded wire bytes are identical too.
        assert_eq!(g.encode(), f.encode());
        // The slice writer (the arena's fill path) produces the same image.
        let mut slice_form = vec![0xffu8; f.unpadded_len()];
        f.encode_unpadded_to_slice(&mut slice_form);
        assert_eq!(slice_form, stored);
    }

    #[test]
    #[should_panic(expected = "exactly unpadded_len")]
    fn slice_encoder_rejects_misfit_slices() {
        let (dst, src) = addrs();
        let f = EthernetFrame::new(dst, src, 0x88B5, vec![7, 8]).unwrap();
        let mut short = vec![0u8; f.unpadded_len() - 1];
        f.encode_unpadded_to_slice(&mut short);
    }

    #[test]
    fn decode_unpadded_rejects_truncation_and_oversize() {
        assert!(EthernetFrame::decode_unpadded(&[0u8; 13]).is_err());
        let (dst, src) = addrs();
        let f = EthernetFrame::new(dst, src, ETHERTYPE_IPV4, vec![0; 1500]).unwrap();
        let mut stored = Vec::new();
        f.encode_unpadded_into(&mut stored);
        stored.push(0); // 1501-byte payload
        assert!(EthernetFrame::decode_unpadded(&stored).is_err());
    }
}
