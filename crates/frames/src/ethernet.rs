//! Ethernet II framing.
//!
//! The RT layer sits *above* unmodified Ethernet (that is the whole point of
//! the paper), so this module implements ordinary Ethernet II frames:
//! destination MAC, source MAC, EtherType, payload, and size accounting for
//! minimum-size padding and wire overhead (preamble + inter-frame gap).  The
//! FCS is accounted for in the length maths but not computed — the simulator
//! never corrupts frames, and computing a CRC-32 would only add noise to the
//! benchmarks.

use rt_types::{
    constants::{
        ETH_FCS_BYTES, ETH_HEADER_BYTES, ETH_MIN_PAYLOAD_BYTES, ETH_MTU_BYTES,
        ETH_WIRE_OVERHEAD_BYTES,
    },
    MacAddr, RtError, RtResult,
};

use crate::wire::{ByteReader, ByteWriter};

/// An Ethernet II frame: header plus payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EthernetFrame {
    /// Destination MAC address.
    pub dst: MacAddr,
    /// Source MAC address.
    pub src: MacAddr,
    /// EtherType of the payload.
    pub ethertype: u16,
    /// MAC client data (not yet padded to the 46-byte minimum).
    pub payload: Vec<u8>,
}

impl EthernetFrame {
    /// Build a frame, rejecting payloads that exceed the Ethernet MTU.
    pub fn new(dst: MacAddr, src: MacAddr, ethertype: u16, payload: Vec<u8>) -> RtResult<Self> {
        if payload.len() > ETH_MTU_BYTES {
            return Err(RtError::FrameEncode(format!(
                "payload of {} bytes exceeds the {} byte Ethernet MTU",
                payload.len(),
                ETH_MTU_BYTES
            )));
        }
        Ok(EthernetFrame {
            dst,
            src,
            ethertype,
            payload,
        })
    }

    /// Size of the MAC frame on the medium: header + padded payload + FCS.
    pub fn frame_bytes(&self) -> usize {
        let payload = self.payload.len().max(ETH_MIN_PAYLOAD_BYTES);
        ETH_HEADER_BYTES + payload + ETH_FCS_BYTES
    }

    /// Total wire occupancy including preamble/SFD and inter-frame gap; this
    /// is the quantity that converts to transmission time on a link.
    pub fn wire_bytes(&self) -> usize {
        self.frame_bytes() + ETH_WIRE_OVERHEAD_BYTES
    }

    /// Serialise header + payload (+ zero padding up to the minimum payload
    /// size).  The 4-byte FCS is emitted as zeroes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(self.frame_bytes());
        w.put_slice(&self.dst.octets());
        w.put_slice(&self.src.octets());
        w.put_u16(self.ethertype);
        w.put_slice(&self.payload);
        if self.payload.len() < ETH_MIN_PAYLOAD_BYTES {
            w.put_zeros(ETH_MIN_PAYLOAD_BYTES - self.payload.len());
        }
        w.put_zeros(ETH_FCS_BYTES);
        w.into_vec()
    }

    /// Parse a frame from its serialised form (as produced by [`encode`]).
    ///
    /// Padding cannot be distinguished from payload at this layer, so the
    /// payload returned may include trailing padding zeroes; upper-layer
    /// codecs (IPv4 total-length, RT control frame fixed sizes) trim it.
    ///
    /// [`encode`]: EthernetFrame::encode
    pub fn decode(bytes: &[u8]) -> RtResult<Self> {
        let mut r = ByteReader::new(bytes, "EthernetFrame");
        let dst = MacAddr::new(r.get_array::<6>()?);
        let src = MacAddr::new(r.get_array::<6>()?);
        let ethertype = r.get_u16()?;
        let rest = r.get_rest();
        if rest.len() < ETH_FCS_BYTES {
            return Err(RtError::FrameDecode(
                "EthernetFrame: truncated before FCS".into(),
            ));
        }
        let payload = rest[..rest.len() - ETH_FCS_BYTES].to_vec();
        if payload.len() > ETH_MTU_BYTES {
            return Err(RtError::FrameDecode(format!(
                "EthernetFrame: payload of {} bytes exceeds MTU",
                payload.len()
            )));
        }
        Ok(EthernetFrame {
            dst,
            src,
            ethertype,
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_types::constants::{ETHERTYPE_IPV4, MAX_FRAME_BYTES, MIN_FRAME_BYTES};

    fn addrs() -> (MacAddr, MacAddr) {
        (
            MacAddr::new([2, 0, 0, 0, 0, 1]),
            MacAddr::new([2, 0, 0, 0, 0, 2]),
        )
    }

    #[test]
    fn short_payload_is_padded_to_minimum() {
        let (dst, src) = addrs();
        let f = EthernetFrame::new(dst, src, ETHERTYPE_IPV4, vec![1, 2, 3]).unwrap();
        assert_eq!(f.frame_bytes(), MIN_FRAME_BYTES);
        assert_eq!(f.encode().len(), MIN_FRAME_BYTES);
        assert_eq!(f.wire_bytes(), MIN_FRAME_BYTES + 20);
    }

    #[test]
    fn full_payload_reaches_max_frame() {
        let (dst, src) = addrs();
        let f = EthernetFrame::new(dst, src, ETHERTYPE_IPV4, vec![0xaa; 1500]).unwrap();
        assert_eq!(f.frame_bytes(), MAX_FRAME_BYTES);
        assert_eq!(f.wire_bytes(), MAX_FRAME_BYTES + 20);
    }

    #[test]
    fn oversized_payload_rejected() {
        let (dst, src) = addrs();
        assert!(EthernetFrame::new(dst, src, ETHERTYPE_IPV4, vec![0; 1501]).is_err());
    }

    #[test]
    fn encode_decode_round_trip() {
        let (dst, src) = addrs();
        let payload: Vec<u8> = (0..200u16).map(|v| (v & 0xff) as u8).collect();
        let f = EthernetFrame::new(dst, src, 0x88B5, payload.clone()).unwrap();
        let bytes = f.encode();
        let g = EthernetFrame::decode(&bytes).unwrap();
        assert_eq!(g.dst, dst);
        assert_eq!(g.src, src);
        assert_eq!(g.ethertype, 0x88B5);
        assert_eq!(g.payload, payload);
    }

    #[test]
    fn round_trip_short_payload_keeps_padding() {
        let (dst, src) = addrs();
        let f = EthernetFrame::new(dst, src, ETHERTYPE_IPV4, vec![7, 8]).unwrap();
        let g = EthernetFrame::decode(&f.encode()).unwrap();
        // Padding is indistinguishable at this layer; payload grows to the
        // minimum payload size.
        assert_eq!(g.payload.len(), 46);
        assert_eq!(&g.payload[..2], &[7, 8]);
        assert!(g.payload[2..].iter().all(|&b| b == 0));
    }

    #[test]
    fn decode_rejects_truncated_frames() {
        assert!(EthernetFrame::decode(&[0u8; 10]).is_err());
        assert!(EthernetFrame::decode(&[0u8; 17]).is_err());
    }
}
