//! Top-level frame classification.
//!
//! The switch and the end-node RT layers receive raw Ethernet frames and
//! must decide which queue and which handler they belong to:
//!
//! * RT control frames (EtherType [`ETHERTYPE_RT_CONTROL`]) → the channel
//!   management software,
//! * IPv4 frames whose ToS is 255 → the deadline-sorted real-time queue,
//! * everything else → the FCFS best-effort queue.
//!
//! [`Frame::classify`] performs that dispatch and decodes the payload into
//! the corresponding typed frame.

use rt_types::{
    constants::{
        ETHERTYPE_IPV4, ETHERTYPE_RT_CONTROL, RT_FRAME_TYPE_CONNECT, RT_FRAME_TYPE_RESERVATION,
        RT_FRAME_TYPE_RESPONSE, RT_FRAME_TYPE_TEARDOWN,
    },
    ChannelId, RtError, RtResult,
};

use crate::ethernet::EthernetFrame;
use crate::ipv4::Ipv4Header;
use crate::reservation::{ReservationFrame, ReservationOp};
use crate::rt_data::{DeadlineStamp, RtDataFrame};
use crate::rt_request::RequestFrame;
use crate::rt_response::ResponseFrame;
use crate::wire::ByteReader;

/// A channel tear-down notification (an extension beyond the paper; the
/// paper only establishes channels, but a practical system must also release
/// their reserved capacity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TeardownFrame {
    /// The channel being torn down.
    pub rt_channel_id: ChannelId,
}

impl TeardownFrame {
    /// Wire size of the tear-down payload in bytes.
    pub const BYTES: usize = 3;

    /// Serialise: type byte + channel id.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::BYTES);
        self.encode_into(&mut out);
        out
    }

    /// Append the serialised payload to `out` (same bytes as
    /// [`TeardownFrame::encode`]).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(RT_FRAME_TYPE_TEARDOWN);
        out.extend_from_slice(&self.rt_channel_id.get().to_be_bytes());
    }

    /// Parse a tear-down payload.
    pub fn decode(bytes: &[u8]) -> RtResult<Self> {
        let mut r = ByteReader::new(bytes, "TeardownFrame");
        let ty = r.get_u8()?;
        if ty != RT_FRAME_TYPE_TEARDOWN {
            return Err(RtError::FrameDecode(format!(
                "TeardownFrame: type byte {ty:#04x} is not a teardown packet"
            )));
        }
        Ok(TeardownFrame {
            rt_channel_id: ChannelId::new(r.get_u16()?),
        })
    }
}

/// The result of classifying a *borrowed* Ethernet frame with
/// [`Frame::peek`]: the queueing-relevant facts, without materialising the
/// decoded payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FramePeek {
    /// A valid RT control frame (request / response / teardown /
    /// reservation) — real-time class, handled by the control plane.
    Control,
    /// A valid link-state flood frame (a reservation frame carrying the
    /// `LinkState` op) — same class and queueing as [`FramePeek::Control`],
    /// but accounted separately so flooding overhead is observable next to
    /// admission traffic.
    LinkState,
    /// A deadline-stamped real-time datagram; the stamp carries the absolute
    /// deadline and channel ID the queues need.
    RtData(DeadlineStamp),
    /// Everything else — FCFS best-effort traffic.
    BestEffort,
}

/// A classified, decoded frame as seen by the RT layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// RT channel establishment request (Figure 18.3).
    Request(RequestFrame),
    /// RT channel establishment response (Figure 18.4).
    Response(ResponseFrame),
    /// RT channel tear-down (extension).
    Teardown(TeardownFrame),
    /// Switch-to-switch reservation traffic of the distributed control
    /// plane (extension).
    Reservation(ReservationFrame),
    /// Deadline-stamped real-time data (§18.2.2).
    RtData(RtDataFrame),
    /// Anything else — ordinary best-effort traffic handled FCFS.
    BestEffort(EthernetFrame),
}

impl Frame {
    /// Classify and decode an Ethernet frame.
    ///
    /// Control frames with an unknown type byte and IPv4 frames that fail to
    /// parse are errors (a real implementation would count and drop them);
    /// IPv4 frames that are not marked real-time and frames of any other
    /// EtherType are passed through as [`Frame::BestEffort`].
    pub fn classify(eth: EthernetFrame) -> RtResult<Frame> {
        match eth.ethertype {
            ETHERTYPE_RT_CONTROL => {
                let ty = *eth
                    .payload
                    .first()
                    .ok_or_else(|| RtError::FrameDecode("empty RT control frame".into()))?;
                match ty {
                    RT_FRAME_TYPE_CONNECT => {
                        Ok(Frame::Request(RequestFrame::decode(&eth.payload)?))
                    }
                    RT_FRAME_TYPE_RESPONSE => {
                        Ok(Frame::Response(ResponseFrame::decode(&eth.payload)?))
                    }
                    RT_FRAME_TYPE_TEARDOWN => {
                        Ok(Frame::Teardown(TeardownFrame::decode(&eth.payload)?))
                    }
                    RT_FRAME_TYPE_RESERVATION => {
                        Ok(Frame::Reservation(ReservationFrame::decode(&eth.payload)?))
                    }
                    other => Err(RtError::FrameDecode(format!(
                        "unknown RT control frame type {other:#04x}"
                    ))),
                }
            }
            ETHERTYPE_IPV4 => {
                let ip = Ipv4Header::decode(&eth.payload)?;
                if ip.is_realtime() {
                    Ok(Frame::RtData(RtDataFrame::from_ethernet(&eth)?))
                } else {
                    Ok(Frame::BestEffort(eth))
                }
            }
            _ => Ok(Frame::BestEffort(eth)),
        }
    }

    /// Classify a *borrowed* Ethernet frame without decoding it into owned
    /// structures — the zero-copy counterpart of [`Frame::classify`] used by
    /// the simulator hot path.
    ///
    /// Accepts and rejects exactly the same set of frames as `classify`
    /// (control frames are fully validated, RT IPv4 frames are validated via
    /// [`RtDataFrame::peek_stamp`]); it only skips materialising the decoded
    /// payload.
    pub fn peek(eth: &EthernetFrame) -> RtResult<FramePeek> {
        match eth.ethertype {
            ETHERTYPE_RT_CONTROL => {
                let ty = *eth
                    .payload
                    .first()
                    .ok_or_else(|| RtError::FrameDecode("empty RT control frame".into()))?;
                match ty {
                    RT_FRAME_TYPE_CONNECT => {
                        RequestFrame::decode(&eth.payload)?;
                    }
                    RT_FRAME_TYPE_RESPONSE => {
                        ResponseFrame::decode(&eth.payload)?;
                    }
                    RT_FRAME_TYPE_TEARDOWN => {
                        TeardownFrame::decode(&eth.payload)?;
                    }
                    RT_FRAME_TYPE_RESERVATION => {
                        let rf = ReservationFrame::decode(&eth.payload)?;
                        if rf.op == ReservationOp::LinkState {
                            return Ok(FramePeek::LinkState);
                        }
                    }
                    other => {
                        return Err(RtError::FrameDecode(format!(
                            "unknown RT control frame type {other:#04x}"
                        )))
                    }
                }
                Ok(FramePeek::Control)
            }
            ETHERTYPE_IPV4 => {
                let ip = Ipv4Header::decode(&eth.payload)?;
                if ip.is_realtime() {
                    Ok(FramePeek::RtData(RtDataFrame::peek_stamp(eth)?))
                } else {
                    Ok(FramePeek::BestEffort)
                }
            }
            _ => Ok(FramePeek::BestEffort),
        }
    }

    /// `true` if this frame goes to the deadline-sorted real-time queue.
    pub fn is_realtime(&self) -> bool {
        matches!(
            self,
            Frame::Request(_)
                | Frame::Response(_)
                | Frame::Teardown(_)
                | Frame::Reservation(_)
                | Frame::RtData(_)
        )
    }

    /// `true` if this is a control-plane frame (establishment, reservation
    /// or tear-down traffic, as opposed to data or best effort).
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Frame::Request(_) | Frame::Response(_) | Frame::Teardown(_) | Frame::Reservation(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_types::{ConnectionRequestId, Ipv4Address, MacAddr, Slots};

    fn request() -> RequestFrame {
        RequestFrame {
            src_mac: MacAddr::for_node(rt_types::NodeId::new(1)),
            dst_mac: MacAddr::for_node(rt_types::NodeId::new(2)),
            src_ip: Ipv4Address::new(10, 0, 0, 1),
            dst_ip: Ipv4Address::new(10, 0, 0, 2),
            period: Slots::new(100),
            capacity: Slots::new(3),
            deadline: Slots::new(40),
            rt_channel_id: None,
            connection_request_id: ConnectionRequestId::new(1),
        }
    }

    #[test]
    fn classifies_request_and_response() {
        let req = request();
        let eth = req
            .into_ethernet(MacAddr::ZERO, MacAddr::for_switch())
            .unwrap();
        match Frame::classify(eth).unwrap() {
            Frame::Request(r) => assert_eq!(r, req),
            other => panic!("expected Request, got {other:?}"),
        }

        let resp = ResponseFrame {
            rt_channel_id: Some(ChannelId::new(3)),
            switch_mac: MacAddr::for_switch(),
            verdict: crate::rt_response::ResponseVerdict::Accepted,
            connection_request_id: ConnectionRequestId::new(1),
        };
        let eth = resp
            .into_ethernet(MacAddr::for_switch(), MacAddr::ZERO)
            .unwrap();
        assert!(matches!(
            Frame::classify(eth).unwrap(),
            Frame::Response(r) if r == resp
        ));
    }

    #[test]
    fn classifies_teardown() {
        let td = TeardownFrame {
            rt_channel_id: ChannelId::new(7),
        };
        let eth = EthernetFrame::new(
            MacAddr::for_switch(),
            MacAddr::ZERO,
            ETHERTYPE_RT_CONTROL,
            td.encode(),
        )
        .unwrap();
        assert!(matches!(
            Frame::classify(eth).unwrap(),
            Frame::Teardown(t) if t == td
        ));
    }

    #[test]
    fn teardown_round_trip_and_errors() {
        let td = TeardownFrame {
            rt_channel_id: ChannelId::new(65535),
        };
        assert_eq!(TeardownFrame::decode(&td.encode()).unwrap(), td);
        let mut out = vec![0x99];
        td.encode_into(&mut out);
        assert_eq!(&out[1..], &td.encode()[..]);
        assert!(TeardownFrame::decode(&[RT_FRAME_TYPE_TEARDOWN]).is_err());
        assert!(TeardownFrame::decode(&[0xff, 0, 1]).is_err());
    }

    #[test]
    fn classifies_rt_data_and_best_effort_ipv4() {
        // Real-time data frame.
        let data = RtDataFrame {
            eth_src: MacAddr::ZERO,
            eth_dst: MacAddr::for_switch(),
            stamp: crate::rt_data::DeadlineStamp::new(99, ChannelId::new(4)).unwrap(),
            src_port: 1,
            dst_port: 2,
            payload: vec![1, 2, 3],
        };
        let frame = Frame::classify(data.into_ethernet().unwrap()).unwrap();
        assert!(frame.is_realtime());
        assert!(matches!(frame, Frame::RtData(d) if d.stamp.channel == ChannelId::new(4)));

        // Plain (non-RT) IPv4 is best effort.
        let ip = Ipv4Header::udp(
            Ipv4Address::new(10, 0, 0, 1),
            Ipv4Address::new(10, 0, 0, 2),
            8,
        )
        .unwrap();
        let mut payload = ip.encode();
        payload.extend_from_slice(&crate::udp::UdpHeader::new(1, 2, 0).unwrap().encode());
        let eth =
            EthernetFrame::new(MacAddr::BROADCAST, MacAddr::ZERO, ETHERTYPE_IPV4, payload).unwrap();
        let frame = Frame::classify(eth).unwrap();
        assert!(!frame.is_realtime());
        assert!(matches!(frame, Frame::BestEffort(_)));
    }

    #[test]
    fn unknown_ethertype_is_best_effort() {
        let eth =
            EthernetFrame::new(MacAddr::BROADCAST, MacAddr::ZERO, 0x0806, vec![0; 28]).unwrap();
        assert!(matches!(
            Frame::classify(eth).unwrap(),
            Frame::BestEffort(_)
        ));
    }

    /// `peek` must agree with `classify` on both acceptance and class for a
    /// representative zoo of frames, including malformed ones.
    #[test]
    fn peek_agrees_with_classify() {
        // Well-formed control frames.
        let mut zoo: Vec<EthernetFrame> = vec![request()
            .into_ethernet(MacAddr::ZERO, MacAddr::for_switch())
            .unwrap()];
        let resp = ResponseFrame {
            rt_channel_id: Some(ChannelId::new(3)),
            switch_mac: MacAddr::for_switch(),
            verdict: crate::rt_response::ResponseVerdict::Accepted,
            connection_request_id: ConnectionRequestId::new(1),
        };
        zoo.push(
            resp.into_ethernet(MacAddr::for_switch(), MacAddr::ZERO)
                .unwrap(),
        );
        let td = TeardownFrame {
            rt_channel_id: ChannelId::new(7),
        };
        zoo.push(
            EthernetFrame::new(
                MacAddr::for_switch(),
                MacAddr::ZERO,
                ETHERTYPE_RT_CONTROL,
                td.encode(),
            )
            .unwrap(),
        );
        // Reservation traffic: a Probe (plain control) and a LinkState flood.
        let mut reservation = ReservationFrame {
            op: ReservationOp::Probe,
            reason: crate::reservation::ReservationReason::None,
            coordinator: rt_types::SwitchId::new(2),
            token: 9,
            source: rt_types::NodeId::new(1),
            destination: rt_types::NodeId::new(5),
            request_id: ConnectionRequestId::new(3),
            candidate: 0,
            hop: 1,
            channel: None,
            period: Slots::new(100),
            capacity: Slots::new(3),
            deadline: Slots::new(40),
            values: vec![1, 2],
        };
        zoo.push(
            reservation
                .into_ethernet(
                    MacAddr::for_switch_id(rt_types::SwitchId::new(2)),
                    MacAddr::for_switch_id(rt_types::SwitchId::new(3)),
                )
                .unwrap(),
        );
        reservation.op = ReservationOp::LinkState;
        reservation.values = vec![2, 3, 0, 1];
        zoo.push(
            reservation
                .into_ethernet(
                    MacAddr::for_switch_id(rt_types::SwitchId::new(2)),
                    MacAddr::for_switch_id(rt_types::SwitchId::new(3)),
                )
                .unwrap(),
        );
        // RT data.
        let data = RtDataFrame {
            eth_src: MacAddr::ZERO,
            eth_dst: MacAddr::for_switch(),
            stamp: crate::rt_data::DeadlineStamp::new(99, ChannelId::new(4)).unwrap(),
            src_port: 1,
            dst_port: 2,
            payload: vec![1, 2, 3],
        };
        zoo.push(data.into_ethernet().unwrap());
        // Plain best-effort IPv4 and a foreign EtherType.
        let ip = Ipv4Header::udp(
            Ipv4Address::new(10, 0, 0, 1),
            Ipv4Address::new(10, 0, 0, 2),
            8,
        )
        .unwrap();
        let mut payload = ip.encode();
        payload.extend_from_slice(&crate::udp::UdpHeader::new(1, 2, 0).unwrap().encode());
        zoo.push(
            EthernetFrame::new(MacAddr::BROADCAST, MacAddr::ZERO, ETHERTYPE_IPV4, payload).unwrap(),
        );
        zoo.push(
            EthernetFrame::new(MacAddr::BROADCAST, MacAddr::ZERO, 0x0806, vec![0; 28]).unwrap(),
        );
        // Malformed: unknown control type, empty control payload, truncated
        // request, garbage IPv4.
        zoo.push(
            EthernetFrame::new(
                MacAddr::for_switch(),
                MacAddr::ZERO,
                ETHERTYPE_RT_CONTROL,
                vec![0x7f, 1, 2, 3],
            )
            .unwrap(),
        );
        zoo.push(
            EthernetFrame::new(
                MacAddr::for_switch(),
                MacAddr::ZERO,
                ETHERTYPE_RT_CONTROL,
                vec![],
            )
            .unwrap(),
        );
        zoo.push(
            EthernetFrame::new(
                MacAddr::for_switch(),
                MacAddr::ZERO,
                ETHERTYPE_RT_CONTROL,
                vec![RT_FRAME_TYPE_CONNECT, 1, 2],
            )
            .unwrap(),
        );
        zoo.push(
            EthernetFrame::new(
                MacAddr::BROADCAST,
                MacAddr::ZERO,
                ETHERTYPE_IPV4,
                vec![0; 30],
            )
            .unwrap(),
        );

        for eth in zoo {
            let peeked = Frame::peek(&eth);
            let classified = Frame::classify(eth.clone());
            match (peeked, classified) {
                (Err(_), Err(_)) => {}
                (Ok(p), Ok(c)) => {
                    match p {
                        FramePeek::Control => {
                            assert!(c.is_control());
                            assert!(!matches!(
                                &c,
                                Frame::Reservation(rf) if rf.op == ReservationOp::LinkState
                            ));
                        }
                        FramePeek::LinkState => assert!(matches!(
                            &c,
                            Frame::Reservation(rf) if rf.op == ReservationOp::LinkState
                        )),
                        FramePeek::RtData(stamp) => match &c {
                            Frame::RtData(d) => assert_eq!(d.stamp, stamp),
                            other => panic!("peek said RtData, classify said {other:?}"),
                        },
                        FramePeek::BestEffort => {
                            assert!(matches!(c, Frame::BestEffort(_)))
                        }
                    }
                    assert_eq!(
                        matches!(
                            p,
                            FramePeek::Control | FramePeek::LinkState | FramePeek::RtData(_)
                        ),
                        c.is_realtime()
                    );
                }
                (p, c) => panic!("peek/classify disagree on {eth:?}: {p:?} vs {c:?}"),
            }
        }
    }

    #[test]
    fn malformed_control_frames_are_errors() {
        let eth = EthernetFrame::new(
            MacAddr::for_switch(),
            MacAddr::ZERO,
            ETHERTYPE_RT_CONTROL,
            vec![0x7f, 1, 2, 3],
        )
        .unwrap();
        assert!(Frame::classify(eth).is_err());

        let eth = EthernetFrame::new(
            MacAddr::for_switch(),
            MacAddr::ZERO,
            ETHERTYPE_RT_CONTROL,
            vec![],
        )
        .unwrap();
        assert!(Frame::classify(eth).is_err());
    }
}
