//! Small byte-oriented reader/writer helpers used by every codec in this
//! crate.
//!
//! The helpers keep bounds checking and error reporting in one place so the
//! individual frame codecs stay readable.

use rt_types::{RtError, RtResult};

/// Sequential big-endian writer over a growable byte buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a writer with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Create a writer that appends to an existing buffer, preserving its
    /// contents and capacity.  This is how the `encode_into` codec entry
    /// points reuse arena-pooled buffers without reallocating.
    pub fn from_vec(buf: Vec<u8>) -> Self {
        ByteWriter { buf }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a big-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append the low 48 bits of `v` in big-endian order (used for MAC
    /// addresses and the 48-bit absolute deadline of §18.2.2).
    pub fn put_u48(&mut self, v: u64) {
        let b = v.to_be_bytes();
        self.buf.extend_from_slice(&b[2..8]);
    }

    /// Append a big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append raw bytes.
    pub fn put_slice(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append `count` zero bytes (padding).
    pub fn put_zeros(&mut self, count: usize) {
        self.buf.resize(self.buf.len() + count, 0);
    }

    /// Finish writing and return the buffer.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

/// Sequential big-endian reader over a byte slice.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// A short label naming the frame being decoded, used in error messages.
    context: &'static str,
}

impl<'a> ByteReader<'a> {
    /// Create a reader over `buf`; `context` names the frame type for error
    /// messages.
    pub fn new(buf: &'a [u8], context: &'static str) -> Self {
        ByteReader {
            buf,
            pos: 0,
            context,
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> RtResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(RtError::FrameDecode(format!(
                "{}: need {} byte(s) at offset {}, only {} remaining",
                self.context,
                n,
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> RtResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a big-endian `u16`.
    pub fn get_u16(&mut self) -> RtResult<u16> {
        let s = self.take(2)?;
        Ok(u16::from_be_bytes([s[0], s[1]]))
    }

    /// Read a big-endian `u32`.
    pub fn get_u32(&mut self) -> RtResult<u32> {
        let s = self.take(4)?;
        Ok(u32::from_be_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Read a 48-bit big-endian value into the low bits of a `u64`.
    pub fn get_u48(&mut self) -> RtResult<u64> {
        let s = self.take(6)?;
        let mut b = [0u8; 8];
        b[2..8].copy_from_slice(s);
        Ok(u64::from_be_bytes(b))
    }

    /// Read a big-endian `u64`.
    pub fn get_u64(&mut self) -> RtResult<u64> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_be_bytes(b))
    }

    /// Read exactly `N` bytes into an array.
    pub fn get_array<const N: usize>(&mut self) -> RtResult<[u8; N]> {
        let s = self.take(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(s);
        Ok(out)
    }

    /// Read `n` bytes as a slice.
    pub fn get_slice(&mut self, n: usize) -> RtResult<&'a [u8]> {
        self.take(n)
    }

    /// Read all remaining bytes.
    pub fn get_rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }

    /// Error unless exactly `n` bytes remain.
    pub fn expect_remaining(&self, n: usize) -> RtResult<()> {
        if self.remaining() != n {
            return Err(RtError::FrameDecode(format!(
                "{}: expected {} trailing byte(s), found {}",
                self.context,
                n,
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// RFC 1071 internet checksum over `data` (used by the IPv4 and UDP codecs).
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(0xab);
        w.put_u16(0x1234);
        w.put_u32(0xdead_beef);
        w.put_u48(0x0102_0304_0506);
        w.put_u64(0x1122_3344_5566_7788);
        w.put_slice(&[9, 9, 9]);
        w.put_zeros(2);
        let buf = w.into_vec();
        assert_eq!(buf.len(), 1 + 2 + 4 + 6 + 8 + 3 + 2);

        let mut r = ByteReader::new(&buf, "test");
        assert_eq!(r.get_u8().unwrap(), 0xab);
        assert_eq!(r.get_u16().unwrap(), 0x1234);
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u48().unwrap(), 0x0102_0304_0506);
        assert_eq!(r.get_u64().unwrap(), 0x1122_3344_5566_7788);
        assert_eq!(r.get_slice(3).unwrap(), &[9, 9, 9]);
        assert_eq!(r.get_rest(), &[0, 0]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn from_vec_appends_and_keeps_capacity() {
        let mut base = Vec::with_capacity(64);
        base.extend_from_slice(&[1, 2]);
        let ptr = base.as_ptr();
        let mut w = ByteWriter::from_vec(base);
        w.put_u16(0x0304);
        let out = w.into_vec();
        assert_eq!(out, [1, 2, 3, 4]);
        assert!(out.capacity() >= 64);
        // Small writes into pre-allocated capacity must not reallocate.
        assert_eq!(out.as_ptr(), ptr);
    }

    #[test]
    fn reader_out_of_bounds_is_an_error() {
        let buf = [1u8, 2];
        let mut r = ByteReader::new(&buf, "short");
        assert!(r.get_u32().is_err());
        // The failed read must not advance the cursor past the end.
        assert_eq!(r.remaining(), 2);
        assert_eq!(r.get_u16().unwrap(), 0x0102);
        assert!(r.get_u8().is_err());
    }

    #[test]
    fn reader_expect_remaining() {
        let buf = [0u8; 4];
        let mut r = ByteReader::new(&buf, "pad");
        r.get_u16().unwrap();
        assert!(r.expect_remaining(2).is_ok());
        assert!(r.expect_remaining(3).is_err());
    }

    #[test]
    fn get_array_reads_exact() {
        let buf = [5u8, 6, 7, 8];
        let mut r = ByteReader::new(&buf, "arr");
        let a: [u8; 4] = r.get_array().unwrap();
        assert_eq!(a, [5, 6, 7, 8]);
        let mut r2 = ByteReader::new(&buf[..3], "arr");
        assert!(r2.get_array::<4>().is_err());
    }

    #[test]
    fn u48_masks_high_bits() {
        let mut w = ByteWriter::new();
        w.put_u48(0xffff_0102_0304_0506); // high 16 bits must be dropped
        let buf = w.into_vec();
        assert_eq!(buf, [0x01, 0x02, 0x03, 0x04, 0x05, 0x06]);
    }

    #[test]
    fn checksum_known_vector() {
        // Example from RFC 1071: bytes 00 01 f2 03 f4 f5 f6 f7.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        let sum = internet_checksum(&data);
        assert_eq!(sum, !0xddf2);
    }

    #[test]
    fn checksum_odd_length_and_validation() {
        let data = [0x01, 0x02, 0x03];
        let c = internet_checksum(&data);
        // Appending the checksum and re-summing must yield 0 (all-ones sum).
        let mut with = data.to_vec();
        with.push(0); // pad to even before inserting checksum at the end
        with.extend_from_slice(&c.to_be_bytes());
        // Validation property: checksum over data including its own checksum
        // field equals zero when the field was computed over zeroes.
        let mut check_input = data.to_vec();
        check_input.push(0);
        check_input.extend_from_slice(&c.to_be_bytes());
        assert_eq!(internet_checksum(&check_input), 0);
    }
}
