//! The *RequestFrame* of Figure 18.3: the connection request a source node
//! sends to the switch to establish an RT channel.
//!
//! The figure's data field carries, in addition to the Ethernet header whose
//! destination MAC is the switch: a type byte identifying a connect packet,
//! source and destination MAC and IP addresses of the requested channel, the
//! period `T_period`, the capacity `C` and the relative deadline
//! `T_deadline` (32 bits each, expressed in time slots), the 16-bit RT
//! channel ID (not yet valid in the node → switch direction; filled in by
//! the switch before forwarding to the destination) and the 8-bit
//! source-node-unique connection request ID.
//!
//! The figure does not fix the byte order of the fields, only their widths;
//! the layout chosen here (documented field by field in
//! [`RequestFrame::encode`]) totals 36 bytes and is covered by golden-bytes
//! tests so it cannot drift silently.

use rt_types::{
    constants::{ETHERTYPE_RT_CONTROL, RT_FRAME_TYPE_CONNECT},
    ChannelId, ConnectionRequestId, Ipv4Address, MacAddr, RtError, RtResult, Slots,
};

use crate::ethernet::EthernetFrame;
use crate::wire::{ByteReader, ByteWriter};

/// Wire size of the RequestFrame payload in bytes.
pub const REQUEST_FRAME_BYTES: usize = 36;

/// A connection request for a new RT channel (Figure 18.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestFrame {
    /// MAC address of the requesting (source) node.
    pub src_mac: MacAddr,
    /// MAC address of the destination node of the requested channel.
    pub dst_mac: MacAddr,
    /// IP address of the requesting node.
    pub src_ip: Ipv4Address,
    /// IP address of the destination node.
    pub dst_ip: Ipv4Address,
    /// Requested period `P_i` in time slots.
    pub period: Slots,
    /// Requested capacity `C_i` (frames per period) in time slots.
    pub capacity: Slots,
    /// Requested end-to-end relative deadline `d_i` in time slots.
    pub deadline: Slots,
    /// Network-unique RT channel ID; `None` until the switch assigns one
    /// (encoded as 0 on the wire, which is reserved as "unassigned").
    pub rt_channel_id: Option<ChannelId>,
    /// Source-node-unique connection request ID.
    pub connection_request_id: ConnectionRequestId,
}

impl RequestFrame {
    /// Serialise the 36-byte payload.
    ///
    /// Layout (offsets in bytes):
    /// `0` type, `1` connection request ID, `2..4` RT channel ID,
    /// `4..10` source MAC, `10..16` destination MAC, `16..20` source IP,
    /// `20..24` destination IP, `24..28` period, `28..32` capacity,
    /// `32..36` deadline.
    pub fn encode(&self) -> RtResult<Vec<u8>> {
        let mut out = Vec::with_capacity(REQUEST_FRAME_BYTES);
        self.encode_into(&mut out)?;
        Ok(out)
    }

    /// Append the serialised payload to `out` (same bytes as
    /// [`RequestFrame::encode`]).
    pub fn encode_into(&self, out: &mut Vec<u8>) -> RtResult<()> {
        for (name, v) in [
            ("period", self.period),
            ("capacity", self.capacity),
            ("deadline", self.deadline),
        ] {
            if v.get() > u32::MAX as u64 {
                return Err(RtError::FrameEncode(format!(
                    "RequestFrame: {name} of {v} does not fit the 32-bit wire field"
                )));
            }
        }
        let base = out.len();
        let mut w = ByteWriter::from_vec(std::mem::take(out));
        w.put_u8(RT_FRAME_TYPE_CONNECT);
        w.put_u8(self.connection_request_id.get());
        w.put_u16(self.rt_channel_id.map_or(0, |c| c.get()));
        w.put_slice(&self.src_mac.octets());
        w.put_slice(&self.dst_mac.octets());
        w.put_slice(&self.src_ip.octets());
        w.put_slice(&self.dst_ip.octets());
        w.put_u32(self.period.get() as u32);
        w.put_u32(self.capacity.get() as u32);
        w.put_u32(self.deadline.get() as u32);
        debug_assert_eq!(w.len() - base, REQUEST_FRAME_BYTES);
        *out = w.into_vec();
        Ok(())
    }

    /// Parse a RequestFrame payload.  Trailing padding (from Ethernet
    /// minimum-size padding) is tolerated and ignored.
    pub fn decode(bytes: &[u8]) -> RtResult<Self> {
        let mut r = ByteReader::new(bytes, "RequestFrame");
        let ty = r.get_u8()?;
        if ty != RT_FRAME_TYPE_CONNECT {
            return Err(RtError::FrameDecode(format!(
                "RequestFrame: type byte {ty:#04x} is not a connect packet"
            )));
        }
        let connection_request_id = ConnectionRequestId::new(r.get_u8()?);
        let raw_channel = r.get_u16()?;
        let src_mac = MacAddr::new(r.get_array::<6>()?);
        let dst_mac = MacAddr::new(r.get_array::<6>()?);
        let src_ip = Ipv4Address::from_octets(r.get_array::<4>()?);
        let dst_ip = Ipv4Address::from_octets(r.get_array::<4>()?);
        let period = Slots::new(r.get_u32()? as u64);
        let capacity = Slots::new(r.get_u32()? as u64);
        let deadline = Slots::new(r.get_u32()? as u64);
        Ok(RequestFrame {
            src_mac,
            dst_mac,
            src_ip,
            dst_ip,
            period,
            capacity,
            deadline,
            rt_channel_id: if raw_channel == 0 {
                None
            } else {
                Some(ChannelId::new(raw_channel))
            },
            connection_request_id,
        })
    }

    /// Wrap this request in an Ethernet frame addressed to the switch
    /// (node → switch leg) or to the destination node (switch → destination
    /// leg, after the switch has filled in the channel ID).
    pub fn into_ethernet(&self, eth_src: MacAddr, eth_dst: MacAddr) -> RtResult<EthernetFrame> {
        EthernetFrame::new(eth_dst, eth_src, ETHERTYPE_RT_CONTROL, self.encode()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_types::rng::Xoshiro256;

    fn sample() -> RequestFrame {
        RequestFrame {
            src_mac: MacAddr::new([2, 0, 0, 0, 0, 1]),
            dst_mac: MacAddr::new([2, 0, 0, 0, 0, 9]),
            src_ip: Ipv4Address::new(10, 0, 0, 1),
            dst_ip: Ipv4Address::new(10, 0, 0, 9),
            period: Slots::new(100),
            capacity: Slots::new(3),
            deadline: Slots::new(40),
            rt_channel_id: None,
            connection_request_id: ConnectionRequestId::new(7),
        }
    }

    #[test]
    fn golden_bytes_layout() {
        // The Fig. 18.5 experiment parameters: C=3, P=100, D=40.
        let bytes = sample().encode().unwrap();
        assert_eq!(bytes.len(), REQUEST_FRAME_BYTES);
        assert_eq!(bytes[0], RT_FRAME_TYPE_CONNECT);
        assert_eq!(bytes[1], 7); // request id
        assert_eq!(&bytes[2..4], &[0, 0]); // unassigned channel id
        assert_eq!(&bytes[4..10], &[2, 0, 0, 0, 0, 1]); // src mac
        assert_eq!(&bytes[10..16], &[2, 0, 0, 0, 0, 9]); // dst mac
        assert_eq!(&bytes[16..20], &[10, 0, 0, 1]); // src ip
        assert_eq!(&bytes[20..24], &[10, 0, 0, 9]); // dst ip
        assert_eq!(&bytes[24..28], &100u32.to_be_bytes()); // period
        assert_eq!(&bytes[28..32], &3u32.to_be_bytes()); // capacity
        assert_eq!(&bytes[32..36], &40u32.to_be_bytes()); // deadline
    }

    #[test]
    fn round_trip_with_and_without_channel_id() {
        let mut f = sample();
        assert_eq!(RequestFrame::decode(&f.encode().unwrap()).unwrap(), f);
        f.rt_channel_id = Some(ChannelId::new(0x1234));
        let g = RequestFrame::decode(&f.encode().unwrap()).unwrap();
        assert_eq!(g.rt_channel_id, Some(ChannelId::new(0x1234)));
        assert_eq!(g, f);
    }

    #[test]
    fn tolerates_ethernet_padding() {
        let f = sample();
        let eth = f
            .into_ethernet(MacAddr::new([2, 0, 0, 0, 0, 1]), MacAddr::for_switch())
            .unwrap();
        // 36-byte payload gets padded to 46 by Ethernet.
        let decoded = EthernetFrame::decode(&eth.encode()).unwrap();
        assert_eq!(decoded.payload.len(), 46);
        assert_eq!(RequestFrame::decode(&decoded.payload).unwrap(), f);
    }

    #[test]
    fn rejects_wrong_type_and_truncation() {
        let mut bytes = sample().encode().unwrap();
        bytes[0] = 0x7f;
        assert!(RequestFrame::decode(&bytes).is_err());
        let bytes = sample().encode().unwrap();
        assert!(RequestFrame::decode(&bytes[..REQUEST_FRAME_BYTES - 1]).is_err());
    }

    #[test]
    fn rejects_oversized_parameters() {
        let mut f = sample();
        f.period = Slots::new(u64::from(u32::MAX) + 1);
        assert!(f.encode().is_err());
        let mut out = Vec::new();
        assert!(f.encode_into(&mut out).is_err());
    }

    #[test]
    fn encode_into_matches_owned_encode() {
        let mut f = sample();
        f.rt_channel_id = Some(ChannelId::new(0x0905));
        let mut out = vec![0xcc];
        f.encode_into(&mut out).unwrap();
        assert_eq!(&out[1..], &f.encode().unwrap()[..]);
    }

    /// Randomised requests survive encode → decode at the fixed wire size.
    #[test]
    fn prop_round_trip() {
        let mut rng = Xoshiro256::new(0x52e9_7e57);
        for _ in 0..512 {
            let mut mac = [0u8; 6];
            let mut mac2 = [0u8; 6];
            let mut ip = [0u8; 4];
            let mut ip2 = [0u8; 4];
            for b in mac
                .iter_mut()
                .chain(&mut mac2)
                .chain(&mut ip)
                .chain(&mut ip2)
            {
                *b = rng.below(256) as u8;
            }
            let chan = rng.below(1 << 16) as u16;
            let f = RequestFrame {
                src_mac: MacAddr::new(mac),
                dst_mac: MacAddr::new(mac2),
                src_ip: Ipv4Address::from_octets(ip),
                dst_ip: Ipv4Address::from_octets(ip2),
                period: Slots::new(rng.below(1 << 32)),
                capacity: Slots::new(rng.below(1 << 32)),
                deadline: Slots::new(rng.below(1 << 32)),
                rt_channel_id: if chan == 0 {
                    None
                } else {
                    Some(ChannelId::new(chan))
                },
                connection_request_id: ConnectionRequestId::new(rng.below(256) as u8),
            };
            let bytes = f.encode().unwrap();
            assert_eq!(bytes.len(), REQUEST_FRAME_BYTES);
            assert_eq!(RequestFrame::decode(&bytes).unwrap(), f);
        }
    }
}
