//! Arena-pooled frame buffers.
//!
//! The simulator's store-and-forward hot path used to clone an owned
//! `Vec<u8>` payload at every hop; this module replaces that with a slab of
//! reusable buffers.  A frame's bytes are written **once** at injection into
//! a buffer borrowed from the [`FrameArena`], every subsequent hop hands off
//! the lightweight [`FrameRef`] index, and the buffer returns to the pool at
//! delivery or drop.  In steady state the pool therefore performs **zero**
//! allocations per frame: buffers are recycled by size class.
//!
//! Three size classes keep recycled capacity close to what frames actually
//! need: small (control frames), medium (sensor-sized data), and MTU
//! (everything else).  Each class backs its buffers with contiguous slab
//! *chunks* of [`ARENA_CHUNK_SLOTS`] fixed-capacity slots, so even a burst
//! that outruns the free list costs one allocation per 256 buffers — not
//! one per buffer — and neighbouring frames share cache lines and pages.
//!
//! # Ownership rules
//!
//! * A [`FrameRef`] is a *unique* handle: exactly one owner at a time, and
//!   the owner must eventually [`FrameArena::free`] it (or the pool reports
//!   it as leaked via [`FrameArena::outstanding`]).
//! * Every slot carries a generation counter that is bumped on free; a stale
//!   `FrameRef` (use after free, double free) is detected and panics rather
//!   than silently reading recycled bytes.

use rt_types::constants::{
    ARENA_CHUNK_SLOTS, ARENA_MEDIUM_BYTES, ARENA_MTU_BYTES, ARENA_SMALL_BYTES,
};

/// A generation-checked index into a [`FrameArena`].
///
/// `Copy` so it can ride inside events and port queues for free, but
/// logically a unique owner of the underlying buffer — see the module-level
/// ownership rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FrameRef {
    slot: u32,
    generation: u32,
}

impl FrameRef {
    /// The raw slot index (diagnostics only).
    pub fn slot(&self) -> u32 {
        self.slot
    }

    /// The generation the slot had when this reference was issued.
    pub fn generation(&self) -> u32 {
        self.generation
    }
}

/// The three buffer size classes of the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SizeClass {
    Small,
    Medium,
    Mtu,
}

impl SizeClass {
    fn for_len(len: usize) -> SizeClass {
        if len <= ARENA_SMALL_BYTES {
            SizeClass::Small
        } else if len <= ARENA_MEDIUM_BYTES {
            SizeClass::Medium
        } else {
            SizeClass::Mtu
        }
    }

    fn capacity(self) -> usize {
        match self {
            SizeClass::Small => ARENA_SMALL_BYTES,
            SizeClass::Medium => ARENA_MEDIUM_BYTES,
            SizeClass::Mtu => ARENA_MTU_BYTES,
        }
    }

    fn index(self) -> usize {
        match self {
            SizeClass::Small => 0,
            SizeClass::Medium => 1,
            SizeClass::Mtu => 2,
        }
    }
}

/// Slot metadata; the bytes live in the class's slab chunks.
#[derive(Debug)]
struct Slot {
    class: SizeClass,
    /// Index within the class (chunk = `class_slot / ARENA_CHUNK_SLOTS`,
    /// offset = `class_slot % ARENA_CHUNK_SLOTS × capacity`).
    class_slot: u32,
    /// Length of the frame currently stored.
    len: u32,
    generation: u32,
    in_use: bool,
}

/// Counters describing the pool's behaviour over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Buffers handed out that required carving a brand-new slot.
    pub fresh_allocations: u64,
    /// Buffers handed out by recycling a previously freed slot.
    pub reuses: u64,
    /// Buffers returned to the pool.
    pub frees: u64,
    /// Peak number of simultaneously outstanding buffers.
    pub high_water: usize,
}

/// A slab of reusable frame buffers, recycled by size class.
#[derive(Debug, Default)]
pub struct FrameArena {
    slots: Vec<Slot>,
    /// Free slot indices per size class (small / medium / MTU).
    free: [Vec<u32>; 3],
    /// Slab chunks per size class; each chunk holds [`ARENA_CHUNK_SLOTS`]
    /// buffers of the class capacity, contiguously.
    chunks: [Vec<Box<[u8]>>; 3],
    /// Slots carved so far per size class.
    class_slots: [u32; 3],
    outstanding: usize,
    stats: ArenaStats,
}

impl FrameArena {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Byte range of a slot within its class's chunks.
    fn slot_range(class: SizeClass, class_slot: u32, len: usize) -> (usize, usize, usize) {
        let chunk = class_slot as usize / ARENA_CHUNK_SLOTS;
        let offset = (class_slot as usize % ARENA_CHUNK_SLOTS) * class.capacity();
        (chunk, offset, offset + len)
    }

    /// Borrow a zeroed buffer of exactly `len` bytes, fill it with `fill`,
    /// and return the handle.  `len` must fit the MTU class (the largest
    /// frame the fabric can carry); the slice handed to `fill` is exactly
    /// `len` long, so a partial write leaves zeroes, never a previous
    /// frame's bytes.
    pub fn alloc_with<F>(&mut self, len: usize, fill: F) -> FrameRef
    where
        F: FnOnce(&mut [u8]),
    {
        let class = SizeClass::for_len(len);
        assert!(
            len <= class.capacity(),
            "frame of {len} bytes exceeds the arena's MTU class ({ARENA_MTU_BYTES} bytes)"
        );
        let slot = match self.free[class.index()].pop() {
            Some(idx) => {
                self.stats.reuses += 1;
                let s = &mut self.slots[idx as usize];
                debug_assert!(!s.in_use, "arena free list handed out a live slot");
                s.len = len as u32;
                s.in_use = true;
                idx
            }
            None => {
                let idx = u32::try_from(self.slots.len()).expect("arena slot count overflow");
                let class_slot = self.class_slots[class.index()];
                if class_slot as usize % ARENA_CHUNK_SLOTS == 0 {
                    self.chunks[class.index()]
                        .push(vec![0u8; ARENA_CHUNK_SLOTS * class.capacity()].into_boxed_slice());
                }
                self.class_slots[class.index()] += 1;
                self.slots.push(Slot {
                    class,
                    class_slot,
                    len: len as u32,
                    generation: 0,
                    in_use: true,
                });
                self.stats.fresh_allocations += 1;
                idx
            }
        };
        let s = &self.slots[slot as usize];
        let generation = s.generation;
        let (chunk, start, end) = Self::slot_range(class, s.class_slot, len);
        let buf = &mut self.chunks[class.index()][chunk][start..end];
        buf.fill(0);
        fill(buf);
        self.outstanding += 1;
        self.stats.high_water = self.stats.high_water.max(self.outstanding);
        FrameRef { slot, generation }
    }

    /// Copy `bytes` into a pooled buffer.
    pub fn store(&mut self, bytes: &[u8]) -> FrameRef {
        self.alloc_with(bytes.len(), |buf| buf.copy_from_slice(bytes))
    }

    /// The byte slice behind a checked slot.
    fn slot_bytes(&self, s: &Slot) -> &[u8] {
        let (chunk, start, end) = Self::slot_range(s.class, s.class_slot, s.len as usize);
        &self.chunks[s.class.index()][chunk][start..end]
    }

    /// The bytes behind `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is stale (the buffer was already freed) — that is a
    /// use-after-free bug in the caller, not a recoverable condition.
    pub fn bytes(&self, r: FrameRef) -> &[u8] {
        let s = &self.slots[r.slot as usize];
        assert!(
            s.in_use && s.generation == r.generation,
            "stale FrameRef: slot {} generation {} (current {}, in_use {})",
            r.slot,
            r.generation,
            s.generation,
            s.in_use
        );
        self.slot_bytes(s)
    }

    /// The bytes behind `r`, or `None` if the reference is stale.
    pub fn try_bytes(&self, r: FrameRef) -> Option<&[u8]> {
        let s = self.slots.get(r.slot as usize)?;
        (s.in_use && s.generation == r.generation).then(|| self.slot_bytes(s))
    }

    /// Return `r`'s buffer to the pool.  The slot's generation is bumped so
    /// any surviving copy of `r` becomes stale.
    ///
    /// # Panics
    ///
    /// Panics on double free / stale references.
    pub fn free(&mut self, r: FrameRef) {
        let s = &mut self.slots[r.slot as usize];
        assert!(
            s.in_use && s.generation == r.generation,
            "double free or stale FrameRef: slot {} generation {} (current {}, in_use {})",
            r.slot,
            r.generation,
            s.generation,
            s.in_use
        );
        s.in_use = false;
        s.generation = s.generation.wrapping_add(1);
        self.free[s.class.index()].push(r.slot);
        self.outstanding -= 1;
        self.stats.frees += 1;
    }

    /// Number of buffers currently handed out and not yet freed.  Zero when
    /// every frame has completed its lifecycle — the leak invariant the
    /// property harness checks after every scenario.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }

    /// Total slots ever carved (live + pooled).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of slab chunks allocated across all size classes — the
    /// arena's true heap-allocation count, amortised over
    /// [`ARENA_CHUNK_SLOTS`] buffers each.
    pub fn slab_chunks(&self) -> usize {
        self.chunks.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_and_read_back() {
        let mut a = FrameArena::new();
        let r = a.store(&[1, 2, 3]);
        assert_eq!(a.bytes(r), &[1, 2, 3]);
        assert_eq!(a.outstanding(), 1);
        a.free(r);
        assert_eq!(a.outstanding(), 0);
    }

    #[test]
    fn freed_slots_are_recycled_within_their_class() {
        let mut a = FrameArena::new();
        let r1 = a.store(&[0u8; 100]); // small class
        a.free(r1);
        let r2 = a.store(&[7u8; 50]); // small again: must reuse slot 0
        assert_eq!(r2.slot(), r1.slot());
        assert_ne!(r2.generation(), r1.generation());
        assert_eq!(a.stats().fresh_allocations, 1);
        assert_eq!(a.stats().reuses, 1);
        assert_eq!(a.bytes(r2), &[7u8; 50]);
        a.free(r2);
    }

    #[test]
    fn classes_do_not_mix() {
        let mut a = FrameArena::new();
        let small = a.store(&[0u8; 10]);
        let large = a.store(&[0u8; 1400]);
        a.free(small);
        a.free(large);
        // A medium request must not grab the small slot.
        let medium = a.store(&[0u8; 300]);
        assert_ne!(medium.slot(), small.slot());
        assert_ne!(medium.slot(), large.slot());
        // But a new MTU-class request reuses the MTU slot.
        let large2 = a.store(&[0u8; 1200]);
        assert_eq!(large2.slot(), large.slot());
        a.free(medium);
        a.free(large2);
        assert_eq!(a.outstanding(), 0);
    }

    #[test]
    fn steady_state_reuse_does_not_grow_the_slab() {
        let mut a = FrameArena::new();
        for round in 0..1000 {
            let r = a.alloc_with(200, |b| b.copy_from_slice(&[round as u8; 200]));
            assert_eq!(a.bytes(r)[0], round as u8);
            a.free(r);
        }
        assert_eq!(a.capacity(), 1);
        assert_eq!(a.stats().fresh_allocations, 1);
        assert_eq!(a.stats().reuses, 999);
        assert_eq!(a.stats().high_water, 1);
        assert_eq!(a.slab_chunks(), 1);
    }

    #[test]
    fn slab_chunks_amortise_fresh_allocations() {
        let mut a = FrameArena::new();
        // A burst beyond one chunk: 300 simultaneously live small buffers
        // span two chunks, not 300 separate allocations.
        let refs: Vec<_> = (0..300).map(|i| a.store(&[i as u8; 16])).collect();
        assert_eq!(a.stats().fresh_allocations, 300);
        assert_eq!(a.slab_chunks(), 2);
        for (i, r) in refs.iter().enumerate() {
            assert_eq!(a.bytes(*r), &[i as u8; 16]);
        }
        for r in refs {
            a.free(r);
        }
        assert_eq!(a.outstanding(), 0);
        // The chunks stay for reuse; a new burst carves no further chunks.
        let refs: Vec<_> = (0..300).map(|i| a.store(&[i as u8; 16])).collect();
        assert_eq!(a.slab_chunks(), 2);
        assert_eq!(a.stats().reuses, 300);
        for r in refs {
            a.free(r);
        }
    }

    #[test]
    fn stale_reference_is_detected() {
        let mut a = FrameArena::new();
        let r = a.store(&[1]);
        a.free(r);
        assert!(a.try_bytes(r).is_none());
        let reused = a.store(&[2]);
        // Same slot, new generation: the old ref stays dead.
        assert_eq!(reused.slot(), r.slot());
        assert!(a.try_bytes(r).is_none());
        assert_eq!(a.try_bytes(reused), Some(&[2u8][..]));
        a.free(reused);
    }

    #[test]
    #[should_panic(expected = "double free or stale FrameRef")]
    fn double_free_panics() {
        let mut a = FrameArena::new();
        let r = a.store(&[1]);
        a.free(r);
        a.free(r);
    }

    #[test]
    #[should_panic(expected = "stale FrameRef")]
    fn use_after_free_panics() {
        let mut a = FrameArena::new();
        let r = a.store(&[1]);
        a.free(r);
        let _ = a.bytes(r);
    }

    #[test]
    #[should_panic(expected = "exceeds the arena's MTU class")]
    fn oversized_frames_are_rejected() {
        let mut a = FrameArena::new();
        let _ = a.store(&vec![0u8; ARENA_MTU_BYTES + 1]);
    }

    #[test]
    fn alloc_with_hands_out_a_zeroed_exact_length_slice() {
        let mut a = FrameArena::new();
        let r1 = a.store(&[9u8; 64]);
        a.free(r1);
        // A partial write into a recycled slot must not leak the previous
        // frame's bytes: the slice is zeroed and exactly `len` long.
        let r2 = a.alloc_with(4, |b| {
            assert_eq!(b.len(), 4);
            b[..2].copy_from_slice(&[1, 2]);
        });
        assert_eq!(a.bytes(r2), &[1, 2, 0, 0]);
        a.free(r2);
    }

    #[test]
    fn high_water_tracks_peak_outstanding() {
        let mut a = FrameArena::new();
        let refs: Vec<_> = (0..5).map(|i| a.store(&[i as u8; 32])).collect();
        assert_eq!(a.stats().high_water, 5);
        for r in refs {
            a.free(r);
        }
        let r = a.store(&[0]);
        assert_eq!(a.stats().high_water, 5);
        a.free(r);
        assert_eq!(a.outstanding(), 0);
    }
}
