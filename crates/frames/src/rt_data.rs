//! Deadline-stamped real-time data frames (§18.2.2).
//!
//! Before an outgoing real-time UDP/IP datagram is handed to the Ethernet
//! layer, the RT layer rewrites its IPv4 header:
//!
//! * the **IP source address** and the **16 most significant bits of the IP
//!   destination address** — 48 bits in total — are set to the *absolute
//!   deadline* of the frame,
//! * the **16 least significant bits of the IP destination address** are set
//!   to the RT channel ID the frame belongs to,
//! * the **ToS** field is set to 255 (other values are reserved for future
//!   services).
//!
//! The switch and the destination node use the deadline for EDF ordering and
//! the channel ID for bookkeeping; the destination's RT layer restores the
//! original addresses from its channel table before delivering the datagram
//! to UDP.  [`DeadlineStamp`] implements the rewrite and its inverse, and
//! [`RtDataFrame`] is the convenience bundle of Ethernet + stamped IPv4 +
//! UDP + payload used by the simulator.

use rt_types::{
    constants::{ETHERTYPE_IPV4, IPV4_HEADER_BYTES, RT_TOS_VALUE, UDP_HEADER_BYTES},
    ChannelId, Ipv4Address, MacAddr, RtError, RtResult,
};

use crate::ethernet::EthernetFrame;
use crate::ipv4::{Ipv4Header, IP_PROTO_UDP};
use crate::udp::UdpHeader;

/// Maximum value representable by the 48-bit absolute-deadline field.
pub const MAX_DEADLINE_VALUE: u64 = (1 << 48) - 1;

/// The deadline/channel information carried inside a stamped IPv4 header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlineStamp {
    /// Absolute deadline of the frame, 48 bits.  The unit is whatever the RT
    /// layer schedules in (this crate does not care); the simulator uses
    /// nanoseconds of simulated time.
    pub absolute_deadline: u64,
    /// The RT channel the frame belongs to.
    pub channel: ChannelId,
}

impl DeadlineStamp {
    /// Create a stamp, rejecting deadlines that do not fit in 48 bits.
    pub fn new(absolute_deadline: u64, channel: ChannelId) -> RtResult<Self> {
        if absolute_deadline > MAX_DEADLINE_VALUE {
            return Err(RtError::FrameEncode(format!(
                "absolute deadline {absolute_deadline} exceeds the 48-bit field"
            )));
        }
        Ok(DeadlineStamp {
            absolute_deadline,
            channel,
        })
    }

    /// Apply the §18.2.2 rewrite to `header`: overwrite the addresses with
    /// deadline + channel ID and force ToS to 255.
    pub fn apply(&self, header: &Ipv4Header) -> Ipv4Header {
        let mut out = *header;
        out.tos = RT_TOS_VALUE;
        // 48-bit deadline: high 32 bits -> source address, low 16 bits ->
        // upper half of the destination address.
        out.src = Ipv4Address::from_u32((self.absolute_deadline >> 16) as u32);
        let dst_hi = (self.absolute_deadline & 0xffff) as u32;
        out.dst = Ipv4Address::from_u32((dst_hi << 16) | u32::from(self.channel.get()));
        out
    }

    /// Extract the stamp from a rewritten header.  Fails if the header is not
    /// marked as real-time (ToS ≠ 255).
    pub fn extract(header: &Ipv4Header) -> RtResult<Self> {
        if !header.is_realtime() {
            return Err(RtError::FrameDecode(format!(
                "not an RT data frame: ToS is {} (expected {})",
                header.tos, RT_TOS_VALUE
            )));
        }
        let src = u64::from(header.src.to_u32());
        let dst = header.dst.to_u32();
        let absolute_deadline = (src << 16) | u64::from(dst >> 16);
        let channel = ChannelId::new((dst & 0xffff) as u16);
        Ok(DeadlineStamp {
            absolute_deadline,
            channel,
        })
    }

    /// Undo the rewrite: restore the original addresses (known to the
    /// receiving RT layer from channel establishment) and clear the ToS.
    pub fn restore(
        header: &Ipv4Header,
        original_src: Ipv4Address,
        original_dst: Ipv4Address,
    ) -> Ipv4Header {
        let mut out = *header;
        out.tos = 0;
        out.src = original_src;
        out.dst = original_dst;
        out
    }
}

/// A complete real-time data frame: Ethernet + stamped IPv4 + UDP + payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtDataFrame {
    /// Ethernet source MAC.
    pub eth_src: MacAddr,
    /// Ethernet destination MAC (the switch on the uplink, the destination
    /// node on the downlink).
    pub eth_dst: MacAddr,
    /// The deadline/channel stamp.
    pub stamp: DeadlineStamp,
    /// UDP source port.
    pub src_port: u16,
    /// UDP destination port.
    pub dst_port: u16,
    /// UDP payload.
    pub payload: Vec<u8>,
}

impl RtDataFrame {
    /// Build the on-the-wire Ethernet frame for this RT datagram.
    pub fn into_ethernet(&self) -> RtResult<EthernetFrame> {
        let mut bytes =
            Vec::with_capacity(IPV4_HEADER_BYTES + UDP_HEADER_BYTES + self.payload.len());
        self.encode_payload_into(&mut bytes)?;
        EthernetFrame::new(self.eth_dst, self.eth_src, ETHERTYPE_IPV4, bytes)
    }

    /// Append the Ethernet *payload* of this datagram (stamped IPv4 header +
    /// UDP header + application payload) to `out` — the same bytes
    /// [`RtDataFrame::into_ethernet`] wraps in a frame, without the
    /// intermediate allocations.
    pub fn encode_payload_into(&self, out: &mut Vec<u8>) -> RtResult<()> {
        let udp = UdpHeader::new(self.src_port, self.dst_port, self.payload.len())?;
        let ip = Ipv4Header::udp(
            Ipv4Address::UNSPECIFIED,
            Ipv4Address::UNSPECIFIED,
            UDP_HEADER_BYTES + self.payload.len(),
        )?;
        let stamped = self.stamp.apply(&ip);
        stamped.encode_into(out);
        udp.encode_into(out);
        out.extend_from_slice(&self.payload);
        Ok(())
    }

    /// Validate an Ethernet frame as an RT data frame and extract its stamp
    /// *without copying the payload*.  Performs exactly the checks of
    /// [`RtDataFrame::from_ethernet`] (which is implemented on top of this),
    /// so the two accept and reject the same set of frames.
    pub fn peek_stamp(frame: &EthernetFrame) -> RtResult<DeadlineStamp> {
        if frame.ethertype != ETHERTYPE_IPV4 {
            return Err(RtError::FrameDecode(format!(
                "RtDataFrame: ethertype {:#06x} is not IPv4",
                frame.ethertype
            )));
        }
        let ip = Ipv4Header::decode(&frame.payload)?;
        if ip.protocol != IP_PROTO_UDP {
            return Err(RtError::FrameDecode(format!(
                "RtDataFrame: IP protocol {} is not UDP",
                ip.protocol
            )));
        }
        let stamp = DeadlineStamp::extract(&ip)?;
        let ip_payload_end = (ip.total_length as usize).min(frame.payload.len());
        if ip_payload_end < IPV4_HEADER_BYTES + UDP_HEADER_BYTES {
            return Err(RtError::FrameDecode(
                "RtDataFrame: datagram too short for a UDP header".into(),
            ));
        }
        UdpHeader::decode(&frame.payload[IPV4_HEADER_BYTES..])?;
        Ok(stamp)
    }

    /// Parse an RT data frame back out of an Ethernet frame.  Fails when the
    /// frame is not IPv4/UDP or not marked real-time.
    pub fn from_ethernet(frame: &EthernetFrame) -> RtResult<Self> {
        let stamp = Self::peek_stamp(frame)?;
        let ip = Ipv4Header::decode(&frame.payload)?;
        let udp = UdpHeader::decode(&frame.payload[IPV4_HEADER_BYTES..])?;
        let ip_payload_end = (ip.total_length as usize).min(frame.payload.len());
        let payload_start = IPV4_HEADER_BYTES + UDP_HEADER_BYTES;
        let payload_end = (payload_start + udp.payload_length()).min(ip_payload_end);
        let payload = frame.payload[payload_start..payload_end].to_vec();
        Ok(RtDataFrame {
            eth_src: frame.src,
            eth_dst: frame.dst,
            stamp,
            src_port: udp.src_port,
            dst_port: udp.dst_port,
            payload,
        })
    }

    /// Wire size (including preamble and inter-frame gap) of this frame when
    /// transmitted, in bytes.
    pub fn wire_bytes(&self) -> RtResult<usize> {
        Ok(self.into_ethernet()?.wire_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_types::rng::Xoshiro256;

    #[test]
    fn stamp_apply_and_extract_round_trip() {
        let original = Ipv4Header::udp(
            Ipv4Address::new(10, 0, 0, 1),
            Ipv4Address::new(10, 0, 0, 2),
            100,
        )
        .unwrap();
        let stamp = DeadlineStamp::new(0x0000_1234_5678_9abc, ChannelId::new(77)).unwrap();
        let stamped = stamp.apply(&original);
        assert_eq!(stamped.tos, RT_TOS_VALUE);
        assert!(stamped.is_realtime());
        // Length/protocol fields survive untouched.
        assert_eq!(stamped.total_length, original.total_length);
        assert_eq!(stamped.protocol, original.protocol);

        let extracted = DeadlineStamp::extract(&stamped).unwrap();
        assert_eq!(extracted, stamp);

        let restored = DeadlineStamp::restore(&stamped, original.src, original.dst);
        assert_eq!(restored, original);
    }

    #[test]
    fn stamp_rejects_oversized_deadline() {
        assert!(DeadlineStamp::new(MAX_DEADLINE_VALUE, ChannelId::new(1)).is_ok());
        assert!(DeadlineStamp::new(MAX_DEADLINE_VALUE + 1, ChannelId::new(1)).is_err());
    }

    #[test]
    fn extract_rejects_non_rt_frames() {
        let plain = Ipv4Header::udp(
            Ipv4Address::new(10, 0, 0, 1),
            Ipv4Address::new(10, 0, 0, 2),
            10,
        )
        .unwrap();
        assert!(DeadlineStamp::extract(&plain).is_err());
    }

    #[test]
    fn data_frame_round_trip() {
        let frame = RtDataFrame {
            eth_src: MacAddr::new([2, 0, 0, 0, 0, 1]),
            eth_dst: MacAddr::for_switch(),
            stamp: DeadlineStamp::new(123_456_789, ChannelId::new(9)).unwrap(),
            src_port: 5555,
            dst_port: 6666,
            payload: b"sensor reading 42".to_vec(),
        };
        let eth = frame.into_ethernet().unwrap();
        // Survives serialisation to raw bytes and back (including padding).
        let eth2 = EthernetFrame::decode(&eth.encode()).unwrap();
        let parsed = RtDataFrame::from_ethernet(&eth2).unwrap();
        assert_eq!(parsed, frame);
    }

    #[test]
    fn data_frame_rejects_non_ipv4_and_non_udp() {
        let eth =
            EthernetFrame::new(MacAddr::BROADCAST, MacAddr::ZERO, 0x88B5, vec![0u8; 60]).unwrap();
        assert!(RtDataFrame::from_ethernet(&eth).is_err());

        // IPv4 but TCP.
        let mut ip = Ipv4Header::udp(
            Ipv4Address::new(1, 2, 3, 4),
            Ipv4Address::new(5, 6, 7, 8),
            20,
        )
        .unwrap();
        ip.protocol = crate::ipv4::IP_PROTO_TCP;
        ip.tos = RT_TOS_VALUE;
        let eth = EthernetFrame::new(
            MacAddr::BROADCAST,
            MacAddr::ZERO,
            ETHERTYPE_IPV4,
            ip.encode(),
        )
        .unwrap();
        assert!(RtDataFrame::from_ethernet(&eth).is_err());
    }

    #[test]
    fn encode_payload_into_matches_into_ethernet() {
        let frame = RtDataFrame {
            eth_src: MacAddr::new([2, 0, 0, 0, 0, 1]),
            eth_dst: MacAddr::for_switch(),
            stamp: DeadlineStamp::new(123_456_789, ChannelId::new(9)).unwrap(),
            src_port: 5555,
            dst_port: 6666,
            payload: b"sensor reading 42".to_vec(),
        };
        let mut out = Vec::new();
        frame.encode_payload_into(&mut out).unwrap();
        assert_eq!(out, frame.into_ethernet().unwrap().payload);
    }

    #[test]
    fn wire_bytes_accounts_for_headers() {
        let frame = RtDataFrame {
            eth_src: MacAddr::ZERO,
            eth_dst: MacAddr::BROADCAST,
            stamp: DeadlineStamp::new(1, ChannelId::new(1)).unwrap(),
            src_port: 1,
            dst_port: 2,
            payload: vec![0u8; 1000],
        };
        // 14 (eth) + 20 (ip) + 8 (udp) + 1000 + 4 (fcs) + 20 (overhead)
        assert_eq!(frame.wire_bytes().unwrap(), 14 + 20 + 8 + 1000 + 4 + 20);
    }

    /// Randomised stamps always survive apply → extract.
    #[test]
    fn prop_stamp_round_trip() {
        let mut rng = Xoshiro256::new(0xd47a_57a3);
        for _ in 0..256 {
            let deadline = rng.range_inclusive(0, MAX_DEADLINE_VALUE);
            let chan = rng.below(1 << 16) as u16;
            let header = Ipv4Header::udp(
                Ipv4Address::new(10, 0, 0, 1),
                Ipv4Address::new(10, 0, 0, 2),
                64,
            )
            .unwrap();
            let stamp = DeadlineStamp::new(deadline, ChannelId::new(chan)).unwrap();
            let stamped = stamp.apply(&header);
            assert_eq!(DeadlineStamp::extract(&stamped).unwrap(), stamp);
        }
    }

    /// Randomised data frames survive encode → decode byte-for-byte.
    #[test]
    fn prop_data_frame_round_trip() {
        let mut rng = Xoshiro256::new(0xf4a3_0001);
        for _ in 0..128 {
            let deadline = rng.range_inclusive(0, MAX_DEADLINE_VALUE);
            let chan = rng.below(1 << 16) as u16;
            let sport = rng.below(1 << 16) as u16;
            let dport = rng.below(1 << 16) as u16;
            let payload_len = rng.below(1400) as usize;
            let payload: Vec<u8> = (0..payload_len).map(|_| rng.below(256) as u8).collect();
            let frame = RtDataFrame {
                eth_src: MacAddr::new([2, 0, 0, 0, 0, 3]),
                eth_dst: MacAddr::for_switch(),
                stamp: DeadlineStamp::new(deadline, ChannelId::new(chan)).unwrap(),
                src_port: sport,
                dst_port: dport,
                payload,
            };
            let eth = frame.into_ethernet().unwrap();
            let parsed =
                RtDataFrame::from_ethernet(&EthernetFrame::decode(&eth.encode()).unwrap()).unwrap();
            assert_eq!(parsed, frame);
        }
    }
}
