//! The switch-to-switch control frames of the *distributed* control plane
//! (an extension beyond the paper, whose channel management is centralised
//! in one switch).
//!
//! Distributed admission is a deterministic two-phase reservation along the
//! candidate route, carried in frames that really traverse the fabric:
//!
//! * **Probe** (forward, source access switch → destination access switch):
//!   each visited switch appends the current load of the route links it
//!   owns, so the deadline partition is computed from the same loads the
//!   central manager would have seen,
//! * **Reserve** (backward, destination access switch → coordinator): each
//!   visited switch feasibility-tests and tentatively reserves its owned
//!   links under the per-link deadlines carried by the frame,
//! * **Rollback** (from wherever a step failed, releasing every switch it
//!   visits): partial reservations never leak slack,
//! * **ReserveFailed** / **Confirm** (direct notifications to the
//!   coordinator): try the next candidate route, or commit the channel,
//! * **Release** (forward along the admitted route): tear an established
//!   channel's reservations down switch by switch,
//! * **LinkState** (flooded from the switches adjacent to a trunk event):
//!   each receiving switch applies the announced liveness to its own
//!   topology view and re-floods, so convergence happens at wire speed and
//!   two switches can briefly disagree about the fabric.
//!
//! One wire format serves all seven operations; the op-specific payload
//! (collected loads, per-link deadlines, the switch itinerary, or the
//! announced trunk) rides in the variable-length `values` list.

use rt_types::{
    constants::{ETHERTYPE_RT_CONTROL, RT_FRAME_TYPE_RESERVATION},
    ChannelId, ConnectionRequestId, MacAddr, NodeId, RtError, RtResult, Slots, SwitchId,
};

use crate::ethernet::EthernetFrame;
use crate::wire::{ByteReader, ByteWriter};

/// Wire size of the fixed part of a reservation payload, in bytes.
pub const RESERVATION_FRAME_FIXED_BYTES: usize = 35;

/// What a reservation frame asks the receiving switch to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReservationOp {
    /// Forward pass: append the loads of the route links you own and pass
    /// the frame on (the destination access switch then partitions the
    /// deadline and starts the Reserve pass).
    Probe,
    /// Backward pass: feasibility-test and tentatively reserve your owned
    /// links under the carried per-link deadlines.
    Reserve,
    /// Release the tentative (or committed) reservations of this request at
    /// every switch the frame visits.
    Rollback,
    /// Direct notification to the coordinator: the current candidate route
    /// failed its reservation; try the next one.
    ReserveFailed,
    /// Direct notification to the coordinator: the destination accepted,
    /// the reservation is committed end to end.
    Confirm,
    /// Tear-down pass along an admitted route: release the committed
    /// reservations switch by switch.
    Release,
    /// Link-state flood: a switch adjacent to a trunk event announces the
    /// trunk's new liveness to its neighbours, which apply it to their own
    /// topology view and re-flood.  `values` carries
    /// `[endpoint_a, endpoint_b, alive, epoch]`; the epoch deduplicates and
    /// orders announcements, so the flood terminates and late frames can
    /// never resurrect an older view.
    LinkState,
}

impl ReservationOp {
    fn to_wire(self) -> u8 {
        match self {
            ReservationOp::Probe => 1,
            ReservationOp::Reserve => 2,
            ReservationOp::Rollback => 3,
            ReservationOp::ReserveFailed => 4,
            ReservationOp::Confirm => 5,
            ReservationOp::Release => 6,
            ReservationOp::LinkState => 7,
        }
    }

    fn from_wire(v: u8) -> RtResult<Self> {
        Ok(match v {
            1 => ReservationOp::Probe,
            2 => ReservationOp::Reserve,
            3 => ReservationOp::Rollback,
            4 => ReservationOp::ReserveFailed,
            5 => ReservationOp::Confirm,
            6 => ReservationOp::Release,
            7 => ReservationOp::LinkState,
            other => {
                return Err(RtError::FrameDecode(format!(
                    "ReservationFrame: unknown op {other:#04x}"
                )))
            }
        })
    }
}

/// Why a Rollback / ReserveFailed was issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReservationReason {
    /// No failure (the op is not a failure notification).
    #[default]
    None,
    /// A link of the candidate route failed its feasibility test (or the
    /// deadline could not be partitioned over its hops).
    Infeasible,
    /// The destination node refused the channel.
    DestinationRejected,
    /// A tentative reservation's lease expired before the handshake
    /// completed (a coordinator died or the confirm path was cut); the
    /// slack was reclaimed by the owning site's sweep.
    LeaseExpired,
}

impl ReservationReason {
    fn to_wire(self) -> u8 {
        match self {
            ReservationReason::None => 0,
            ReservationReason::Infeasible => 1,
            ReservationReason::DestinationRejected => 2,
            ReservationReason::LeaseExpired => 3,
        }
    }

    fn from_wire(v: u8) -> RtResult<Self> {
        Ok(match v {
            0 => ReservationReason::None,
            1 => ReservationReason::Infeasible,
            2 => ReservationReason::DestinationRejected,
            3 => ReservationReason::LeaseExpired,
            other => {
                return Err(RtError::FrameDecode(format!(
                    "ReservationFrame: unknown reason {other:#04x}"
                )))
            }
        })
    }
}

/// One switch-to-switch control frame of the two-phase reservation protocol.
///
/// The route itself is *not* carried: every switch shares the converged
/// topology and the deterministic router, so `(source, destination,
/// candidate)` identifies the candidate route exactly — each hop recomputes
/// it locally.  Only the `Release` op (which may outlive topology changes)
/// carries its switch itinerary explicitly, in `values`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReservationFrame {
    /// The operation requested of the receiving switch.
    pub op: ReservationOp,
    /// Failure reason (Rollback / ReserveFailed), [`ReservationReason::None`]
    /// otherwise.
    pub reason: ReservationReason,
    /// The coordinating switch — the source node's access switch, which
    /// owns the in-flight reservation state for this request.
    pub coordinator: SwitchId,
    /// Coordinator-unique token identifying the in-flight reservation.
    pub token: u16,
    /// Source node of the requested channel.
    pub source: NodeId,
    /// Destination node of the requested channel.
    pub destination: NodeId,
    /// The source node's connection request id (echoed into the final
    /// response).
    pub request_id: ConnectionRequestId,
    /// Index of the candidate route being attempted (into the router's
    /// deterministic candidate list).
    pub candidate: u8,
    /// Current position in the candidate route's switch sequence.
    pub hop: u8,
    /// The assigned channel id, once one exists (`None` on the wire as 0).
    pub channel: Option<ChannelId>,
    /// Requested period `P_i` in slots.
    pub period: Slots,
    /// Requested capacity `C_i` in slots.
    pub capacity: Slots,
    /// Requested end-to-end deadline `d_i` in slots.
    pub deadline: Slots,
    /// Op-specific payload: collected per-link loads (Probe), per-link
    /// deadline slots (Reserve), or the switch itinerary (Release).
    pub values: Vec<u64>,
}

impl ReservationFrame {
    /// Serialise the payload: 35 fixed bytes plus `4·values.len()`.
    ///
    /// Layout (offsets in bytes): `0` type, `1` op, `2` reason,
    /// `3` request id, `4` candidate, `5` hop, `6..8` token,
    /// `8..10` channel id, `10..14` coordinator, `14..18` source,
    /// `18..22` destination, `22..26` period, `26..30` capacity,
    /// `30..34` deadline, `34` value count, then the 32-bit values.
    pub fn encode(&self) -> RtResult<Vec<u8>> {
        let mut out = Vec::with_capacity(RESERVATION_FRAME_FIXED_BYTES + 4 * self.values.len());
        self.encode_into(&mut out)?;
        Ok(out)
    }

    /// Append the serialised payload to `out` (same bytes as
    /// [`ReservationFrame::encode`]).
    pub fn encode_into(&self, out: &mut Vec<u8>) -> RtResult<()> {
        for (name, v) in [
            ("period", self.period.get()),
            ("capacity", self.capacity.get()),
            ("deadline", self.deadline.get()),
        ] {
            if v > u32::MAX as u64 {
                return Err(RtError::FrameEncode(format!(
                    "ReservationFrame: {name} of {v} does not fit the 32-bit wire field"
                )));
            }
        }
        if self.values.len() > u8::MAX as usize {
            return Err(RtError::FrameEncode(format!(
                "ReservationFrame: {} values do not fit the 8-bit count",
                self.values.len()
            )));
        }
        for &v in &self.values {
            if v > u32::MAX as u64 {
                return Err(RtError::FrameEncode(format!(
                    "ReservationFrame: value {v} does not fit the 32-bit wire field"
                )));
            }
        }
        let base = out.len();
        let mut w = ByteWriter::from_vec(std::mem::take(out));
        w.put_u8(RT_FRAME_TYPE_RESERVATION);
        w.put_u8(self.op.to_wire());
        w.put_u8(self.reason.to_wire());
        w.put_u8(self.request_id.get());
        w.put_u8(self.candidate);
        w.put_u8(self.hop);
        w.put_u16(self.token);
        w.put_u16(self.channel.map_or(0, |c| c.get()));
        w.put_u32(self.coordinator.get());
        w.put_u32(self.source.get());
        w.put_u32(self.destination.get());
        w.put_u32(self.period.get() as u32);
        w.put_u32(self.capacity.get() as u32);
        w.put_u32(self.deadline.get() as u32);
        w.put_u8(self.values.len() as u8);
        for &v in &self.values {
            w.put_u32(v as u32);
        }
        debug_assert_eq!(
            w.len() - base,
            RESERVATION_FRAME_FIXED_BYTES + 4 * self.values.len()
        );
        *out = w.into_vec();
        Ok(())
    }

    /// Parse a reservation payload.  Trailing padding (from Ethernet
    /// minimum-size padding) is tolerated and ignored.
    pub fn decode(bytes: &[u8]) -> RtResult<Self> {
        let mut r = ByteReader::new(bytes, "ReservationFrame");
        let ty = r.get_u8()?;
        if ty != RT_FRAME_TYPE_RESERVATION {
            return Err(RtError::FrameDecode(format!(
                "ReservationFrame: type byte {ty:#04x} is not a reservation packet"
            )));
        }
        let op = ReservationOp::from_wire(r.get_u8()?)?;
        let reason = ReservationReason::from_wire(r.get_u8()?)?;
        let request_id = ConnectionRequestId::new(r.get_u8()?);
        let candidate = r.get_u8()?;
        let hop = r.get_u8()?;
        let token = r.get_u16()?;
        let raw_channel = r.get_u16()?;
        let coordinator = SwitchId::new(r.get_u32()?);
        let source = NodeId::new(r.get_u32()?);
        let destination = NodeId::new(r.get_u32()?);
        let period = Slots::new(u64::from(r.get_u32()?));
        let capacity = Slots::new(u64::from(r.get_u32()?));
        let deadline = Slots::new(u64::from(r.get_u32()?));
        let count = r.get_u8()? as usize;
        let mut values = Vec::with_capacity(count);
        for _ in 0..count {
            values.push(u64::from(r.get_u32()?));
        }
        Ok(ReservationFrame {
            op,
            reason,
            coordinator,
            token,
            source,
            destination,
            request_id,
            candidate,
            hop,
            channel: if raw_channel == 0 {
                None
            } else {
                Some(ChannelId::new(raw_channel))
            },
            period,
            capacity,
            deadline,
            values,
        })
    }

    /// Wrap this frame in Ethernet between two per-switch control-plane
    /// addresses ([`MacAddr::for_switch_id`]).
    pub fn into_ethernet(&self, eth_src: MacAddr, eth_dst: MacAddr) -> RtResult<EthernetFrame> {
        EthernetFrame::new(eth_dst, eth_src, ETHERTYPE_RT_CONTROL, self.encode()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_types::rng::Xoshiro256;

    fn sample() -> ReservationFrame {
        ReservationFrame {
            op: ReservationOp::Probe,
            reason: ReservationReason::None,
            coordinator: SwitchId::new(3),
            token: 0x1234,
            source: NodeId::new(7),
            destination: NodeId::new(19),
            request_id: ConnectionRequestId::new(5),
            candidate: 1,
            hop: 2,
            channel: None,
            period: Slots::new(100),
            capacity: Slots::new(3),
            deadline: Slots::new(40),
            values: vec![0, 4, 2],
        }
    }

    #[test]
    fn golden_bytes_layout() {
        let bytes = sample().encode().unwrap();
        assert_eq!(bytes.len(), RESERVATION_FRAME_FIXED_BYTES + 4 * 3);
        assert_eq!(bytes[0], RT_FRAME_TYPE_RESERVATION);
        assert_eq!(bytes[1], 1); // op = Probe
        assert_eq!(bytes[2], 0); // reason = None
        assert_eq!(bytes[3], 5); // request id
        assert_eq!(bytes[4], 1); // candidate
        assert_eq!(bytes[5], 2); // hop
        assert_eq!(&bytes[6..8], &0x1234u16.to_be_bytes());
        assert_eq!(&bytes[8..10], &[0, 0]); // unassigned channel
        assert_eq!(&bytes[10..14], &3u32.to_be_bytes()); // coordinator
        assert_eq!(&bytes[14..18], &7u32.to_be_bytes()); // source
        assert_eq!(&bytes[18..22], &19u32.to_be_bytes()); // destination
        assert_eq!(&bytes[22..26], &100u32.to_be_bytes()); // period
        assert_eq!(&bytes[26..30], &3u32.to_be_bytes()); // capacity
        assert_eq!(&bytes[30..34], &40u32.to_be_bytes()); // deadline
        assert_eq!(bytes[34], 3); // value count
        assert_eq!(&bytes[35..39], &0u32.to_be_bytes());
        assert_eq!(&bytes[39..43], &4u32.to_be_bytes());
        assert_eq!(&bytes[43..47], &2u32.to_be_bytes());
    }

    #[test]
    fn round_trip_every_op_and_reason() {
        for op in [
            ReservationOp::Probe,
            ReservationOp::Reserve,
            ReservationOp::Rollback,
            ReservationOp::ReserveFailed,
            ReservationOp::Confirm,
            ReservationOp::Release,
            ReservationOp::LinkState,
        ] {
            for reason in [
                ReservationReason::None,
                ReservationReason::Infeasible,
                ReservationReason::DestinationRejected,
                ReservationReason::LeaseExpired,
            ] {
                let mut f = sample();
                f.op = op;
                f.reason = reason;
                f.channel = Some(ChannelId::new(9));
                assert_eq!(ReservationFrame::decode(&f.encode().unwrap()).unwrap(), f);
            }
        }
    }

    #[test]
    fn golden_bytes_link_state() {
        let f = ReservationFrame {
            op: ReservationOp::LinkState,
            reason: ReservationReason::None,
            coordinator: SwitchId::new(4),
            token: 0,
            source: NodeId::new(0),
            destination: NodeId::new(0),
            request_id: ConnectionRequestId::new(0),
            candidate: 0,
            hop: 0,
            channel: None,
            period: Slots::new(0),
            capacity: Slots::new(0),
            deadline: Slots::new(0),
            // [endpoint_a, endpoint_b, alive, epoch]
            values: vec![4, 9, 0, 17],
        };
        let bytes = f.encode().unwrap();
        assert_eq!(bytes.len(), RESERVATION_FRAME_FIXED_BYTES + 4 * 4);
        assert_eq!(bytes[0], RT_FRAME_TYPE_RESERVATION);
        assert_eq!(bytes[1], 7); // op = LinkState
        assert_eq!(bytes[2], 0); // reason = None
        assert_eq!(&bytes[10..14], &4u32.to_be_bytes()); // origin switch
        assert_eq!(bytes[34], 4); // value count
        assert_eq!(&bytes[35..39], &4u32.to_be_bytes()); // endpoint a
        assert_eq!(&bytes[39..43], &9u32.to_be_bytes()); // endpoint b
        assert_eq!(&bytes[43..47], &0u32.to_be_bytes()); // alive = false
        assert_eq!(&bytes[47..51], &17u32.to_be_bytes()); // epoch
        assert_eq!(ReservationFrame::decode(&bytes).unwrap(), f);
    }

    #[test]
    fn golden_bytes_lease_expired_reason() {
        let mut f = sample();
        f.op = ReservationOp::ReserveFailed;
        f.reason = ReservationReason::LeaseExpired;
        let bytes = f.encode().unwrap();
        assert_eq!(bytes[1], 4); // op = ReserveFailed
        assert_eq!(bytes[2], 3); // reason = LeaseExpired
        assert_eq!(ReservationFrame::decode(&bytes).unwrap(), f);
    }

    #[test]
    fn tolerates_ethernet_padding() {
        let mut f = sample();
        f.values.clear(); // 35-byte payload, padded to 46 by Ethernet
        let eth = f
            .into_ethernet(
                MacAddr::for_switch_id(SwitchId::new(0)),
                MacAddr::for_switch_id(SwitchId::new(1)),
            )
            .unwrap();
        let decoded = EthernetFrame::decode(&eth.encode()).unwrap();
        assert_eq!(decoded.payload.len(), 46);
        assert_eq!(ReservationFrame::decode(&decoded.payload).unwrap(), f);
    }

    #[test]
    fn encode_into_matches_owned_encode() {
        let mut f = sample();
        f.channel = Some(ChannelId::new(9));
        let mut out = vec![0x42];
        f.encode_into(&mut out).unwrap();
        assert_eq!(&out[1..], &f.encode().unwrap()[..]);
        // Oversized fields fail encode_into the same way they fail encode.
        let mut f = sample();
        f.values = vec![u64::from(u32::MAX) + 1];
        let mut out = Vec::new();
        assert!(f.encode_into(&mut out).is_err());
    }

    #[test]
    fn rejects_malformed_frames() {
        let mut bytes = sample().encode().unwrap();
        bytes[0] = 0x7f;
        assert!(ReservationFrame::decode(&bytes).is_err());
        let mut bytes = sample().encode().unwrap();
        bytes[1] = 0x7f; // unknown op
        assert!(ReservationFrame::decode(&bytes).is_err());
        let mut bytes = sample().encode().unwrap();
        bytes[2] = 0x7f; // unknown reason
        assert!(ReservationFrame::decode(&bytes).is_err());
        let bytes = sample().encode().unwrap();
        // Truncated inside the value list.
        assert!(ReservationFrame::decode(&bytes[..bytes.len() - 2]).is_err());
        // Oversized fields fail encode.
        let mut f = sample();
        f.period = Slots::new(u64::from(u32::MAX) + 1);
        assert!(f.encode().is_err());
        let mut f = sample();
        f.values = vec![u64::from(u32::MAX) + 1];
        assert!(f.encode().is_err());
        let mut f = sample();
        f.values = vec![1; 300];
        assert!(f.encode().is_err());
    }

    /// Randomised frames survive encode → decode.
    #[test]
    fn prop_round_trip() {
        let mut rng = Xoshiro256::new(0x4e5e_44e5);
        for _ in 0..512 {
            let ops = [
                ReservationOp::Probe,
                ReservationOp::Reserve,
                ReservationOp::Rollback,
                ReservationOp::ReserveFailed,
                ReservationOp::Confirm,
                ReservationOp::Release,
                ReservationOp::LinkState,
            ];
            let chan = rng.below(1 << 16) as u16;
            let f = ReservationFrame {
                op: ops[rng.below(ops.len() as u64) as usize],
                reason: ReservationReason::None,
                coordinator: SwitchId::new(rng.below(1 << 32) as u32),
                token: rng.below(1 << 16) as u16,
                source: NodeId::new(rng.below(1 << 32) as u32),
                destination: NodeId::new(rng.below(1 << 32) as u32),
                request_id: ConnectionRequestId::new(rng.below(256) as u8),
                candidate: rng.below(256) as u8,
                hop: rng.below(256) as u8,
                channel: if chan == 0 {
                    None
                } else {
                    Some(ChannelId::new(chan))
                },
                period: Slots::new(rng.below(1 << 32)),
                capacity: Slots::new(rng.below(1 << 32)),
                deadline: Slots::new(rng.below(1 << 32)),
                values: (0..rng.below(20)).map(|_| rng.below(1 << 32)).collect(),
            };
            assert_eq!(ReservationFrame::decode(&f.encode().unwrap()).unwrap(), f);
        }
    }
}
