//! # rt-frames
//!
//! Wire formats for the switched real-time Ethernet stack:
//!
//! * plain Ethernet II framing ([`ethernet`]),
//! * IPv4 and UDP headers with internet checksums ([`ipv4`], [`udp`]),
//! * the paper's RT-layer control frames — the *RequestFrame* of Figure 18.3
//!   ([`rt_request`]) and the *ResponseFrame* of Figure 18.4
//!   ([`rt_response`]),
//! * the deadline-stamping of outgoing real-time datagrams described in
//!   §18.2.2, where the absolute deadline and the RT-channel ID are written
//!   over the IP source/destination addresses and the ToS field is set to
//!   255 ([`rt_data`]),
//! * a top-level [`codec::Frame`] enum that classifies and round-trips any of
//!   the above (plus [`codec::Frame::peek`], the borrowed zero-copy
//!   classifier the simulator hot path uses),
//! * an arena of reusable frame buffers ([`arena`]) so the simulator can
//!   pass a [`arena::FrameRef`] index hop to hop instead of cloning payloads.
//!
//! Every codec offers both an owned `encode() -> Vec<u8>` entry point and an
//! `encode_into(&mut Vec<u8>)` variant that appends to a caller-supplied
//! (typically arena-pooled) buffer; the two are byte-for-byte identical,
//! which the golden-bytes tests in each module enforce.
//!
//! Everything is plain safe Rust over `Vec<u8>`/`&[u8]`; no external byte
//! crates are required.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod codec;
pub mod ethernet;
pub mod ipv4;
pub mod reservation;
pub mod rt_data;
pub mod rt_request;
pub mod rt_response;
pub mod udp;
pub mod wire;

pub use arena::{ArenaStats, FrameArena, FrameRef};
pub use codec::{Frame, FramePeek};
pub use ethernet::EthernetFrame;
pub use ipv4::Ipv4Header;
pub use reservation::{ReservationFrame, ReservationOp, ReservationReason};
pub use rt_data::RtDataFrame;
pub use rt_request::RequestFrame;
pub use rt_response::ResponseFrame;
pub use udp::UdpHeader;
