//! UDP header encode/decode.
//!
//! Outgoing real-time traffic from an end node "uses UDP and is put in a
//! deadline-sorted queue in the RT layer" (§18.2.1), so RT data frames are
//! UDP/IP datagrams underneath.  The checksum is computed over the
//! pseudo-header as usual; note that once the RT layer overwrites the IP
//! addresses with the absolute deadline the original checksum no longer
//! verifies — the receiver restores the addresses before handing the
//! datagram to UDP, exactly as a real implementation of the paper would.

use rt_types::{constants::UDP_HEADER_BYTES, Ipv4Address, RtError, RtResult};

use crate::wire::{internet_checksum, ByteReader, ByteWriter};

/// A UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Header + payload length in bytes.
    pub length: u16,
    /// Checksum over pseudo-header, header and payload (0 = not computed).
    pub checksum: u16,
}

impl UdpHeader {
    /// Build a header for a payload of `payload_len` bytes.
    pub fn new(src_port: u16, dst_port: u16, payload_len: usize) -> RtResult<Self> {
        let length = UDP_HEADER_BYTES + payload_len;
        if length > u16::MAX as usize {
            return Err(RtError::FrameEncode(format!(
                "UDP datagram of {length} bytes exceeds 65535"
            )));
        }
        Ok(UdpHeader {
            src_port,
            dst_port,
            length: length as u16,
            checksum: 0,
        })
    }

    /// Payload length implied by the length field.
    pub fn payload_length(&self) -> usize {
        (self.length as usize).saturating_sub(UDP_HEADER_BYTES)
    }

    /// Serialise the header (8 bytes) without computing a checksum.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(UDP_HEADER_BYTES);
        self.encode_into(&mut out);
        out
    }

    /// Append the serialised header to `out` (same bytes as
    /// [`UdpHeader::encode`]).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let mut w = ByteWriter::from_vec(std::mem::take(out));
        w.put_u16(self.src_port);
        w.put_u16(self.dst_port);
        w.put_u16(self.length);
        w.put_u16(self.checksum);
        *out = w.into_vec();
    }

    /// Serialise the header with the checksum computed over the IPv4
    /// pseudo-header, the header itself and `payload`.
    pub fn encode_with_checksum(
        &self,
        src: Ipv4Address,
        dst: Ipv4Address,
        payload: &[u8],
    ) -> Vec<u8> {
        let mut h = *self;
        h.checksum = 0;
        h.checksum = udp_checksum(src, dst, &h, payload);
        h.encode()
    }

    /// Parse a header from the first 8 bytes of `bytes`.
    pub fn decode(bytes: &[u8]) -> RtResult<Self> {
        let mut r = ByteReader::new(bytes, "UdpHeader");
        let src_port = r.get_u16()?;
        let dst_port = r.get_u16()?;
        let length = r.get_u16()?;
        let checksum = r.get_u16()?;
        if (length as usize) < UDP_HEADER_BYTES {
            return Err(RtError::FrameDecode(format!(
                "UdpHeader: length {length} smaller than the header"
            )));
        }
        Ok(UdpHeader {
            src_port,
            dst_port,
            length,
            checksum,
        })
    }

    /// Verify the checksum of this header against a payload and address pair.
    /// A transmitted checksum of 0 means "not computed" and always verifies.
    pub fn verify_checksum(&self, src: Ipv4Address, dst: Ipv4Address, payload: &[u8]) -> bool {
        if self.checksum == 0 {
            return true;
        }
        let mut h = *self;
        h.checksum = 0;
        udp_checksum(src, dst, &h, payload) == self.checksum
    }
}

/// Compute the UDP checksum over the IPv4 pseudo-header, `header` (with its
/// checksum field zeroed) and `payload`.
pub fn udp_checksum(src: Ipv4Address, dst: Ipv4Address, header: &UdpHeader, payload: &[u8]) -> u16 {
    let mut w = ByteWriter::with_capacity(12 + UDP_HEADER_BYTES + payload.len());
    // Pseudo-header.
    w.put_slice(&src.octets());
    w.put_slice(&dst.octets());
    w.put_u8(0);
    w.put_u8(super::ipv4::IP_PROTO_UDP);
    w.put_u16(header.length);
    // Header with zero checksum.
    w.put_u16(header.src_port);
    w.put_u16(header.dst_port);
    w.put_u16(header.length);
    w.put_u16(0);
    w.put_slice(payload);
    let sum = internet_checksum(&w.into_vec());
    // Per RFC 768 a computed checksum of 0 is transmitted as all ones.
    if sum == 0 {
        0xffff
    } else {
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let h = UdpHeader::new(5000, 6000, 100).unwrap();
        assert_eq!(h.length, 108);
        assert_eq!(h.payload_length(), 100);
        let g = UdpHeader::decode(&h.encode()).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn oversized_payload_rejected() {
        assert!(UdpHeader::new(1, 2, 70_000).is_err());
    }

    #[test]
    fn encode_into_matches_owned_encode() {
        let h = UdpHeader::new(5000, 6000, 100).unwrap();
        let mut out = vec![0xfe];
        h.encode_into(&mut out);
        assert_eq!(&out[1..], &h.encode()[..]);
    }

    #[test]
    fn checksum_round_trip() {
        let src = Ipv4Address::new(10, 0, 0, 1);
        let dst = Ipv4Address::new(10, 0, 0, 2);
        let payload = b"hello real-time world";
        let h = UdpHeader::new(1234, 4321, payload.len()).unwrap();
        let bytes = h.encode_with_checksum(src, dst, payload);
        let g = UdpHeader::decode(&bytes).unwrap();
        assert_ne!(g.checksum, 0);
        assert!(g.verify_checksum(src, dst, payload));
        // Any corruption breaks it.
        assert!(!g.verify_checksum(src, dst, b"hello real-time worlD"));
        assert!(!g.verify_checksum(Ipv4Address::new(10, 0, 0, 3), dst, payload));
    }

    #[test]
    fn zero_checksum_always_verifies() {
        let h = UdpHeader::new(1, 2, 4).unwrap();
        assert!(h.verify_checksum(
            Ipv4Address::UNSPECIFIED,
            Ipv4Address::UNSPECIFIED,
            &[1, 2, 3, 4]
        ));
    }

    #[test]
    fn short_length_field_rejected() {
        let mut bytes = UdpHeader::new(1, 2, 10).unwrap().encode();
        bytes[4] = 0;
        bytes[5] = 4; // length 4 < 8
        assert!(UdpHeader::decode(&bytes).is_err());
    }

    #[test]
    fn truncated_header_rejected() {
        assert!(UdpHeader::decode(&[0u8; 7]).is_err());
    }
}
