//! IPv4 header encode/decode.
//!
//! The RT layer of the paper reuses ordinary IPv4 datagrams for real-time
//! data but *rewrites* three header fields before transmission (§18.2.2):
//! the ToS byte is set to 255, and the source address plus the upper half of
//! the destination address are replaced by the 48-bit absolute deadline (the
//! lower half of the destination address carries the RT channel ID).  This
//! module implements the plain header; the rewriting lives in
//! [`crate::rt_data`].

use rt_types::{
    constants::{IPV4_HEADER_BYTES, RT_TOS_VALUE},
    Ipv4Address, RtError, RtResult,
};

use crate::wire::{internet_checksum, ByteReader, ByteWriter};

/// IP protocol number for UDP.
pub const IP_PROTO_UDP: u8 = 17;
/// IP protocol number for TCP.
pub const IP_PROTO_TCP: u8 = 6;

/// An IPv4 header without options (IHL = 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Type of Service byte; 255 marks real-time traffic in the RT layer.
    pub tos: u8,
    /// Total datagram length (header + payload) in bytes.
    pub total_length: u16,
    /// Identification field.
    pub identification: u16,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol (UDP = 17, TCP = 6).
    pub protocol: u8,
    /// Source address.
    pub src: Ipv4Address,
    /// Destination address.
    pub dst: Ipv4Address,
}

impl Ipv4Header {
    /// A conventional UDP header template for a payload of `payload_len`
    /// bytes (the UDP header itself is part of the IP payload).
    pub fn udp(src: Ipv4Address, dst: Ipv4Address, ip_payload_len: usize) -> RtResult<Self> {
        let total = IPV4_HEADER_BYTES + ip_payload_len;
        if total > u16::MAX as usize {
            return Err(RtError::FrameEncode(format!(
                "IPv4 datagram of {total} bytes exceeds 65535"
            )));
        }
        Ok(Ipv4Header {
            tos: 0,
            total_length: total as u16,
            identification: 0,
            ttl: 64,
            protocol: IP_PROTO_UDP,
            src,
            dst,
        })
    }

    /// `true` if the ToS marks this datagram as RT-layer real-time traffic.
    pub fn is_realtime(&self) -> bool {
        self.tos == RT_TOS_VALUE
    }

    /// Length of the IP payload implied by `total_length`.
    pub fn payload_length(&self) -> usize {
        (self.total_length as usize).saturating_sub(IPV4_HEADER_BYTES)
    }

    /// Serialise the header (20 bytes) with a correct header checksum.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(IPV4_HEADER_BYTES);
        self.encode_into(&mut out);
        out
    }

    /// Append the serialised header to `out` (same bytes as
    /// [`Ipv4Header::encode`]).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let base = out.len();
        let mut w = ByteWriter::from_vec(std::mem::take(out));
        w.put_u8(0x45); // version 4, IHL 5
        w.put_u8(self.tos);
        w.put_u16(self.total_length);
        w.put_u16(self.identification);
        w.put_u16(0x4000); // flags: don't fragment, offset 0
        w.put_u8(self.ttl);
        w.put_u8(self.protocol);
        w.put_u16(0); // checksum placeholder
        w.put_slice(&self.src.octets());
        w.put_slice(&self.dst.octets());
        let mut bytes = w.into_vec();
        let csum = internet_checksum(&bytes[base..]);
        bytes[base + 10..base + 12].copy_from_slice(&csum.to_be_bytes());
        *out = bytes;
    }

    /// Parse a header from the first 20 bytes of `bytes`, verifying version,
    /// IHL and the header checksum.
    pub fn decode(bytes: &[u8]) -> RtResult<Self> {
        let mut r = ByteReader::new(bytes, "Ipv4Header");
        let ver_ihl = r.get_u8()?;
        if ver_ihl >> 4 != 4 {
            return Err(RtError::FrameDecode(format!(
                "Ipv4Header: version {} is not 4",
                ver_ihl >> 4
            )));
        }
        if ver_ihl & 0x0f != 5 {
            return Err(RtError::FrameDecode(
                "Ipv4Header: options (IHL != 5) are not supported".into(),
            ));
        }
        let tos = r.get_u8()?;
        let total_length = r.get_u16()?;
        let identification = r.get_u16()?;
        let _flags_frag = r.get_u16()?;
        let ttl = r.get_u8()?;
        let protocol = r.get_u8()?;
        let _checksum = r.get_u16()?;
        let src = Ipv4Address::from_octets(r.get_array::<4>()?);
        let dst = Ipv4Address::from_octets(r.get_array::<4>()?);
        if (total_length as usize) < IPV4_HEADER_BYTES {
            return Err(RtError::FrameDecode(format!(
                "Ipv4Header: total length {total_length} smaller than the header"
            )));
        }
        // Validate the header checksum over the 20 header bytes.
        if bytes.len() >= IPV4_HEADER_BYTES && internet_checksum(&bytes[..IPV4_HEADER_BYTES]) != 0 {
            return Err(RtError::FrameDecode(
                "Ipv4Header: header checksum mismatch".into(),
            ));
        }
        Ok(Ipv4Header {
            tos,
            total_length,
            identification,
            ttl,
            protocol,
            src,
            dst,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Header {
        Ipv4Header {
            tos: 0,
            total_length: 48,
            identification: 0x1234,
            ttl: 64,
            protocol: IP_PROTO_UDP,
            src: Ipv4Address::new(10, 0, 0, 1),
            dst: Ipv4Address::new(10, 0, 0, 2),
        }
    }

    #[test]
    fn encode_is_20_bytes_with_valid_checksum() {
        let bytes = sample().encode();
        assert_eq!(bytes.len(), IPV4_HEADER_BYTES);
        assert_eq!(internet_checksum(&bytes), 0);
    }

    #[test]
    fn encode_decode_round_trip() {
        let h = sample();
        let g = Ipv4Header::decode(&h.encode()).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn corrupted_checksum_is_rejected() {
        let mut bytes = sample().encode();
        bytes[15] ^= 0xff;
        assert!(Ipv4Header::decode(&bytes).is_err());
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut bytes = sample().encode();
        bytes[0] = 0x65; // version 6
        assert!(Ipv4Header::decode(&bytes).is_err());
    }

    #[test]
    fn options_are_rejected() {
        let mut bytes = sample().encode();
        bytes[0] = 0x46; // IHL 6
        assert!(Ipv4Header::decode(&bytes).is_err());
    }

    #[test]
    fn udp_constructor_sets_lengths() {
        let h = Ipv4Header::udp(
            Ipv4Address::new(10, 0, 0, 1),
            Ipv4Address::new(10, 0, 0, 2),
            100,
        )
        .unwrap();
        assert_eq!(h.total_length, 120);
        assert_eq!(h.payload_length(), 100);
        assert_eq!(h.protocol, IP_PROTO_UDP);
        assert!(!h.is_realtime());
        assert!(
            Ipv4Header::udp(Ipv4Address::UNSPECIFIED, Ipv4Address::UNSPECIFIED, 70_000).is_err()
        );
    }

    #[test]
    fn realtime_flag_follows_tos() {
        let mut h = sample();
        assert!(!h.is_realtime());
        h.tos = RT_TOS_VALUE;
        assert!(h.is_realtime());
        let g = Ipv4Header::decode(&h.encode()).unwrap();
        assert!(g.is_realtime());
    }

    #[test]
    fn encode_into_matches_owned_encode_at_any_offset() {
        let h = sample();
        let mut out = Vec::new();
        h.encode_into(&mut out);
        assert_eq!(out, h.encode());
        // Appending after existing bytes must checksum only the header.
        let mut out = vec![0xaa, 0xbb];
        h.encode_into(&mut out);
        assert_eq!(&out[..2], &[0xaa, 0xbb]);
        assert_eq!(&out[2..], &h.encode()[..]);
    }

    #[test]
    fn truncated_header_is_rejected() {
        let bytes = sample().encode();
        assert!(Ipv4Header::decode(&bytes[..19]).is_err());
    }
}
