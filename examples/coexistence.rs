//! Coexistence of real-time and best-effort traffic on the same links.
//!
//! The RT layer keeps ordinary TCP/IP traffic in a FCFS queue behind the
//! deadline-sorted real-time queue, so bulk transfers cannot endanger the
//! real-time guarantees — they only use whatever capacity the RT channels
//! leave over.  This example loads one uplink/downlink pair with an RT
//! channel plus increasing amounts of best-effort traffic and prints how the
//! two classes fare.
//!
//! Run with: `cargo run --example coexistence`

use switched_rt_ethernet::core::{DpsKind, RtChannelSpec, RtNetwork};
use switched_rt_ethernet::types::{Duration, NodeId};

fn run(be_frames: u64) -> (u64, u64, u64, Duration) {
    let mut network = RtNetwork::builder()
        .star(3)
        .dps(DpsKind::Asymmetric)
        .build()
        .expect("a star always builds");
    let spec = RtChannelSpec::paper_default();
    let tx = network
        .establish_channel(NodeId::new(0), NodeId::new(1), spec)
        .expect("handshake")
        .expect("accepted");

    let start = network.now() + Duration::from_millis(1);
    network
        .send_periodic(NodeId::new(0), tx.id, 20, 1400, start)
        .expect("periodic traffic");

    // Best-effort frames back-to-back from the same source to the same
    // destination (sharing both links with the RT channel).
    let slot = network.simulator().config().link_speed.slot_duration();
    for k in 0..be_frames {
        network
            .send_best_effort(
                NodeId::new(0),
                NodeId::new(1),
                1400,
                start + slot.saturating_mul(k),
            )
            .expect("best effort");
    }
    network.run_to_completion().expect("run");

    let stats = network.simulator().stats();
    (
        stats.rt_delivered,
        stats.total_deadline_misses,
        stats.be_delivered,
        stats.worst_case_latency().unwrap_or(Duration::ZERO),
    )
}

fn main() {
    println!("RT channel (C=3, P=100, d=40) sharing its links with a best-effort flood:\n");
    println!(
        "{:>10} {:>10} {:>10} {:>12} {:>16}",
        "BE frames", "RT frames", "RT misses", "BE delivered", "RT worst latency"
    );
    for be_frames in [0u64, 100, 500, 2000] {
        let (rt, misses, be, worst) = run(be_frames);
        println!(
            "{be_frames:>10} {rt:>10} {misses:>10} {be:>12} {:>16}",
            worst.to_string()
        );
        assert_eq!(
            misses, 0,
            "real-time deadlines must hold under any best-effort load"
        );
    }
    println!(
        "\nreal-time deadline misses stay at zero no matter how much best-effort load is offered;"
    );
    println!("best-effort throughput simply absorbs the remaining link capacity.");
}
