//! The establishment handshake in slow motion.
//!
//! Shows the three-party protocol of §18.2.2 at frame level — the
//! RequestFrame a node sends to the switch, the admission decision, the
//! forwarded request, the destination's ResponseFrame and the final response
//! back to the source — without the simulator, by driving the state machines
//! (node RT layers and switch channel manager) directly.  Also demonstrates
//! a rejection once the uplink saturates, and a tear-down.
//!
//! Run with: `cargo run --example channel_establishment`

use switched_rt_ethernet::core::manager::{SwitchAction, SwitchChannelManager};
use switched_rt_ethernet::core::rtlayer::{EstablishmentOutcome, RtLayer, RtLayerConfig};
use switched_rt_ethernet::core::{AdmissionController, DpsKind, RtChannelSpec, SystemState};
use switched_rt_ethernet::frames::Frame;
use switched_rt_ethernet::types::NodeId;

fn main() {
    // A switch managing a 3-node star, using symmetric partitioning.
    let mut switch = SwitchChannelManager::new(AdmissionController::new(
        SystemState::with_nodes((0..3).map(NodeId::new)),
        DpsKind::Symmetric.build(),
    ));
    let mut source = RtLayer::new(NodeId::new(0), RtLayerConfig::default());
    let mut destination = RtLayer::new(NodeId::new(1), RtLayerConfig::default());
    let spec = RtChannelSpec::paper_default();

    println!("== establishing an RT channel node0 -> node1 ==\n");

    // (1) The application asks its RT layer; the layer emits a RequestFrame
    //     addressed to the switch.
    let (request_id, eth) = source.request_channel(NodeId::new(1), spec).unwrap();
    println!(
        "node0  -> switch : RequestFrame (request id {request_id}, {} bytes on the wire)",
        eth.wire_bytes()
    );

    // (2) The switch runs admission control and forwards the annotated
    //     request to the destination.
    let request = match Frame::classify(eth).unwrap() {
        Frame::Request(r) => r,
        _ => unreachable!(),
    };
    let actions = switch.handle_request(&request).unwrap();
    let forwarded = match &actions[0] {
        SwitchAction::ForwardRequest { to, frame } => {
            println!(
                "switch -> {to}  : RequestFrame forwarded, assigned RT channel id {}",
                frame.rt_channel_id.unwrap()
            );
            *frame
        }
        other => unreachable!("first channel is feasible, got {other:?}"),
    };

    // (3) The destination answers with a ResponseFrame.
    let (response_eth, accepted) = destination.handle_forwarded_request(&forwarded).unwrap();
    println!(
        "node1  -> switch : ResponseFrame ({})",
        if accepted { "OK" } else { "Not OK" }
    );
    let response = match Frame::classify(response_eth).unwrap() {
        Frame::Response(r) => r,
        _ => unreachable!(),
    };

    // (4) The switch records the verdict and forwards it to the source.
    let actions = switch.handle_response(&response).unwrap();
    let final_response = match &actions[0] {
        SwitchAction::SendResponse { to, frame } => {
            println!("switch -> {to}  : ResponseFrame forwarded to the source");
            *frame
        }
        _ => unreachable!(),
    };

    // (5) The source's RT layer matches the response to its request.
    match source.handle_response(&final_response).unwrap() {
        EstablishmentOutcome::Established(tx) => {
            println!(
                "\nchannel {} established: d_i={} split over uplink/downlink by the switch\n",
                tx.id, tx.spec.deadline
            );
        }
        EstablishmentOutcome::Rejected { .. } => unreachable!(),
    }

    // == saturation: SDPS allows 6 such channels per uplink, the 7th fails ==
    println!("== requesting more channels until the uplink saturates ==\n");
    for n in 2..=7 {
        let (_, eth) = source.request_channel(NodeId::new(2), spec).unwrap();
        let request = match Frame::classify(eth).unwrap() {
            Frame::Request(r) => r,
            _ => unreachable!(),
        };
        let actions = switch.handle_request(&request).unwrap();
        match &actions[0] {
            SwitchAction::ForwardRequest { .. } => {
                println!("request #{n}: feasible, forwarded to node2")
            }
            SwitchAction::SendResponse { frame, .. } => {
                println!(
                    "request #{n}: rejected directly by the switch (verdict OK={})",
                    frame.verdict.is_accepted()
                );
            }
            other => unreachable!("a star switch only forwards or answers, got {other:?}"),
        }
    }
    println!("\nwith SDPS and C=3, d_iu=20, a single uplink fits exactly 6 channels (6*3 <= 20).");
}
