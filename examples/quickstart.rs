//! Quickstart: open an RT channel, send periodic traffic, check the delay
//! guarantee.
//!
//! Builds a small star network (one switch, four nodes), establishes one RT
//! channel with the paper's parameters over the simulated wire (full
//! RequestFrame / ResponseFrame handshake), drives twenty periodic messages
//! across it and verifies that every frame arrived within the guaranteed
//! bound `d_i + T_latency` (Eq. 18.1).
//!
//! Run with: `cargo run --example quickstart`

use switched_rt_ethernet::core::{DpsKind, RtChannelSpec, RtNetwork};
use switched_rt_ethernet::types::{Duration, NodeId};

fn main() {
    // 1. A star network with 4 end nodes, ADPS deadline partitioning.
    let mut network = RtNetwork::builder()
        .star(4)
        .dps(DpsKind::Asymmetric)
        .build()
        .expect("a star always builds");

    // 2. Ask for an RT channel from node 0 to node 1 with the paper's
    //    traffic contract: 3 maximum-sized frames every 100 slots, to be
    //    delivered within 40 slots.
    let spec = RtChannelSpec::paper_default();
    let channel = network
        .establish_channel(NodeId::new(0), NodeId::new(1), spec)
        .expect("handshake completes")
        .expect("the empty network accepts the first channel");
    println!(
        "established RT channel {} from node0 to {} (d_i = {})",
        channel.id, channel.destination.node, spec.deadline
    );

    // 3. Send 20 periodic messages (each C_i = 3 frames of 1400 B payload).
    let start = network.now() + Duration::from_millis(1);
    network
        .send_periodic(NodeId::new(0), channel.id, 20, 1400, start)
        .expect("channel is established");
    network.run_to_completion().expect("simulation runs");

    // 4. Check the guarantee.
    let stats = network.simulator().stats();
    let bound = network.deadline_bound(&spec);
    let worst = stats.worst_case_latency().expect("frames were delivered");
    println!(
        "delivered {} real-time frames, worst-case latency {} (bound {})",
        stats.rt_delivered, worst, bound
    );
    println!(
        "deadline misses: {} -> guarantee {}",
        stats.total_deadline_misses,
        if stats.all_deadlines_met() && worst <= bound {
            "HELD"
        } else {
            "VIOLATED"
        }
    );
    assert!(stats.all_deadlines_met());
    assert!(worst <= bound);
}
