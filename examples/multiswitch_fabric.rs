//! RT channels across a 3-switch line fabric — the paper's "future work"
//! running end to end on the (simulated) wire.
//!
//! Three access switches in a chain, two masters and two slaves on each.
//! Channels are requested *across* switch boundaries, so every one crosses
//! one or both trunks; the establishment handshake itself travels through
//! the fabric to the managing switch, admission runs the per-link EDF test
//! on every hop of the route with the end-to-end deadline partitioned over
//! the hops, and admitted channels then carry periodic traffic whose
//! per-hop EDF deadlines order the trunk queues.
//!
//! The example drives more than 1000 real-time frames and checks that every
//! single one met both its stamped deadline and the hop-count-aware
//! analytical bound `d_i·slot + T_latency(hops)`.
//!
//! Run with: `cargo run --example multiswitch_fabric`
//!
//! `--shards N` runs the sharded-simulator smoke instead: the same line
//! fabric under a pre-generated cross-switch workload plus a mid-run trunk
//! cut and repair, driven once on the single-thread simulator and once on
//! [`ShardedSimulator`] with `N` worker threads, asserting the two runs
//! are **byte-for-byte identical** — deliveries, statistics and event
//! counts.

use switched_rt_ethernet::core::{MultiHopDps, RtChannelSpec, RtNetwork};
use switched_rt_ethernet::netsim::{
    FaultScript, FrameStoreKind, SchedulerKind, ShardedSimulator, SimConfig, Simulator,
};
use switched_rt_ethernet::traffic::{FabricScenario, ScenarioFrameSource};
use switched_rt_ethernet::types::{Duration, HopLink, SimTime, SwitchId};

/// The `--shards N` mode: single-thread oracle vs. sharded run on the same
/// workload and fault script, compared byte for byte.
fn sharded_smoke(shards: usize) {
    let fabric = FabricScenario::line(3, 2, 2);
    let workload = ScenarioFrameSource::new(fabric.clone(), 3_000, Duration::from_micros(1))
        .payload_len(200)
        .drain_all();
    // Cut the sw1--sw2 trunk mid-run and splice it back: the smoke covers
    // the coordinator's fault barrier, not just steady-state windowing.
    let faults = FaultScript::new()
        .fail_at(
            SimTime::from_micros(800),
            SwitchId::new(1),
            SwitchId::new(2),
        )
        .repair_at(SimTime::from_millis(2), SwitchId::new(1), SwitchId::new(2));

    let oracle_config = SimConfig {
        scheduler: SchedulerKind::Heap,
        frame_store: FrameStoreKind::Arena,
        ..SimConfig::default()
    };
    let mut oracle = Simulator::with_topology(oracle_config, fabric.topology())
        .expect("a line fabric always builds");
    oracle
        .inject_batch(workload.clone())
        .expect("workload is valid");
    oracle
        .schedule_faults(&faults)
        .expect("faults are in-window");
    oracle.run_to_idle();
    let oracle_events = oracle.events_processed();
    let oracle_deliveries: Vec<_> = oracle
        .poll_deliveries()
        .into_iter()
        .map(|d| (d.frame, d.receiver, d.delivered_at, d.eth.encode()))
        .collect();

    let sharded_config = SimConfig {
        scheduler: SchedulerKind::Calendar,
        frame_store: FrameStoreKind::Arena,
        ..SimConfig::default()
    };
    let mut sharded = ShardedSimulator::new(sharded_config, fabric.topology(), shards)
        .expect("a line fabric satisfies the lookahead bound");
    sharded.inject_batch(workload).expect("workload is valid");
    sharded
        .schedule_faults(&faults)
        .expect("faults are in-window");
    sharded.run_to_idle();
    println!(
        "sharded smoke: {} switches across {} shards, {} conservative windows",
        fabric.switch_count(),
        sharded.shard_count(),
        sharded.windows_executed(),
    );

    assert_eq!(
        oracle.stats().summary(),
        sharded.stats().summary(),
        "merged sharded statistics must reproduce the oracle accumulator"
    );
    let sharded_deliveries: Vec<_> = sharded
        .poll_deliveries()
        .into_iter()
        .map(|d| (d.frame, d.receiver, d.delivered_at, d.eth.encode()))
        .collect();
    assert_eq!(
        oracle_deliveries, sharded_deliveries,
        "sharded deliveries must be byte-identical to the oracle"
    );
    assert_eq!(oracle_events, sharded.events_processed());
    assert_eq!(sharded.arena_outstanding(), 0, "no pooled buffer may leak");
    println!(
        "oracle and sharded runs identical: {} deliveries, {} events, summary {}",
        sharded_deliveries.len(),
        oracle_events,
        sharded.stats().summary(),
    );
    println!("byte-for-byte equivalence across {shards} shards HELD");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--shards") {
        let shards = args
            .get(i + 1)
            .and_then(|n| n.parse().ok())
            .expect("--shards takes a shard count");
        return sharded_smoke(shards);
    }
    // 1. The fabric: sw0 -- sw1 -- sw2, nodes 0..12 attached switch-major.
    let fabric = FabricScenario::line(3, 2, 2);
    let mut network = RtNetwork::builder()
        .topology(fabric.topology())
        .multihop_dps(MultiHopDps::Asymmetric)
        .build()
        .expect("a line fabric always builds");
    println!(
        "fabric: {} switches in a line, {} end nodes, managing switch {}",
        fabric.switch_count(),
        fabric.node_count(),
        network.simulator().manager_switch(),
    );

    // 2. Request cross-switch channels with the paper's traffic contract.
    let spec = RtChannelSpec::paper_default();
    let requests = fabric.cross_switch_requests(9, spec);
    let mut established = Vec::new();
    println!("\nestablishing {} cross-switch channels:", requests.len());
    for r in &requests {
        match network
            .establish_channel(r.source, r.destination, r.spec)
            .expect("handshake completes")
        {
            Some(tx) => {
                let hops = network
                    .manager()
                    .channel_route(tx.id)
                    .expect("channel known")
                    .path
                    .len();
                println!(
                    "  {} -> {}  accepted as {} ({hops} hops)",
                    r.source, r.destination, tx.id
                );
                established.push((r.source, tx));
            }
            None => println!(
                "  {} -> {}  rejected (a link on the route is full)",
                r.source, r.destination
            ),
        }
    }

    // 3. Periodic traffic: enough messages that well over 1000 RT data
    //    frames cross the fabric (C = 3 frames per message).
    let messages_per_channel = 1 + 1000 / (established.len() as u64 * spec.capacity.get());
    let start = network.now() + Duration::from_millis(1);
    for (source, tx) in &established {
        network
            .send_periodic(*source, tx.id, messages_per_channel, 1400, start)
            .expect("send periodic");
    }
    network.run_to_completion().expect("simulation runs");

    // 4. The guarantee, per channel and globally.
    let stats = network.simulator().stats();
    println!("\nper-channel results ({messages_per_channel} messages each):");
    for (_, tx) in &established {
        let ch = stats.channel(tx.id).expect("channel delivered frames");
        let bound = network.channel_deadline_bound(tx.id).expect("bound");
        println!(
            "  {}  frames={:<4} worst={:<12} mean={:<12} bound={:<12} misses={}",
            tx.id,
            ch.delivered,
            ch.max_latency.to_string(),
            ch.mean_latency().to_string(),
            bound.to_string(),
            ch.deadline_misses,
        );
        assert!(ch.max_latency <= bound, "hop-aware Eq. 18.1 bound violated");
        assert_eq!(ch.deadline_misses, 0);
    }

    for (from, to) in [(0u32, 1u32), (1, 0), (1, 2), (2, 1)] {
        if let Some(trunk) = stats.hop_link(HopLink::Trunk {
            from: SwitchId::new(from),
            to: SwitchId::new(to),
        }) {
            println!(
                "  trunk sw{from}->sw{to}: {} frames, {} busy",
                trunk.frames, trunk.busy_time,
            );
        }
    }

    println!(
        "\ndelivered {} real-time frames over the fabric, deadline misses: {}",
        stats.rt_delivered, stats.total_deadline_misses
    );
    println!("run summary: {}", stats.summary());
    assert!(
        stats.rt_delivered > 1000,
        "the example must drive > 1000 RT frames"
    );
    assert!(stats.all_deadlines_met());
    assert_eq!(stats.clamped_events, 0, "no causality clamps may occur");
    println!("every frame met its deadline -> the multi-hop guarantee HELD");
}
