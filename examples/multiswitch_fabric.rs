//! RT channels across a 3-switch line fabric — the paper's "future work"
//! running end to end on the (simulated) wire.
//!
//! Three access switches in a chain, two masters and two slaves on each.
//! Channels are requested *across* switch boundaries, so every one crosses
//! one or both trunks; the establishment handshake itself travels through
//! the fabric to the managing switch, admission runs the per-link EDF test
//! on every hop of the route with the end-to-end deadline partitioned over
//! the hops, and admitted channels then carry periodic traffic whose
//! per-hop EDF deadlines order the trunk queues.
//!
//! The example drives more than 1000 real-time frames and checks that every
//! single one met both its stamped deadline and the hop-count-aware
//! analytical bound `d_i·slot + T_latency(hops)`.
//!
//! Run with: `cargo run --example multiswitch_fabric`

use switched_rt_ethernet::core::{MultiHopDps, RtChannelSpec, RtNetwork};
use switched_rt_ethernet::traffic::FabricScenario;
use switched_rt_ethernet::types::{Duration, HopLink, SwitchId};

fn main() {
    // 1. The fabric: sw0 -- sw1 -- sw2, nodes 0..12 attached switch-major.
    let fabric = FabricScenario::line(3, 2, 2);
    let mut network = RtNetwork::builder()
        .topology(fabric.topology())
        .multihop_dps(MultiHopDps::Asymmetric)
        .build()
        .expect("a line fabric always builds");
    println!(
        "fabric: {} switches in a line, {} end nodes, managing switch {}",
        fabric.switch_count(),
        fabric.node_count(),
        network.simulator().manager_switch(),
    );

    // 2. Request cross-switch channels with the paper's traffic contract.
    let spec = RtChannelSpec::paper_default();
    let requests = fabric.cross_switch_requests(9, spec);
    let mut established = Vec::new();
    println!("\nestablishing {} cross-switch channels:", requests.len());
    for r in &requests {
        match network
            .establish_channel(r.source, r.destination, r.spec)
            .expect("handshake completes")
        {
            Some(tx) => {
                let hops = network
                    .manager()
                    .channel_route(tx.id)
                    .expect("channel known")
                    .path
                    .len();
                println!(
                    "  {} -> {}  accepted as {} ({hops} hops)",
                    r.source, r.destination, tx.id
                );
                established.push((r.source, tx));
            }
            None => println!(
                "  {} -> {}  rejected (a link on the route is full)",
                r.source, r.destination
            ),
        }
    }

    // 3. Periodic traffic: enough messages that well over 1000 RT data
    //    frames cross the fabric (C = 3 frames per message).
    let messages_per_channel = 1 + 1000 / (established.len() as u64 * spec.capacity.get());
    let start = network.now() + Duration::from_millis(1);
    for (source, tx) in &established {
        network
            .send_periodic(*source, tx.id, messages_per_channel, 1400, start)
            .expect("send periodic");
    }
    network.run_to_completion().expect("simulation runs");

    // 4. The guarantee, per channel and globally.
    let stats = network.simulator().stats();
    println!("\nper-channel results ({messages_per_channel} messages each):");
    for (_, tx) in &established {
        let ch = stats.channel(tx.id).expect("channel delivered frames");
        let bound = network.channel_deadline_bound(tx.id).expect("bound");
        println!(
            "  {}  frames={:<4} worst={:<12} mean={:<12} bound={:<12} misses={}",
            tx.id,
            ch.delivered,
            ch.max_latency.to_string(),
            ch.mean_latency().to_string(),
            bound.to_string(),
            ch.deadline_misses,
        );
        assert!(ch.max_latency <= bound, "hop-aware Eq. 18.1 bound violated");
        assert_eq!(ch.deadline_misses, 0);
    }

    for (from, to) in [(0u32, 1u32), (1, 0), (1, 2), (2, 1)] {
        if let Some(trunk) = stats.hop_link(HopLink::Trunk {
            from: SwitchId::new(from),
            to: SwitchId::new(to),
        }) {
            println!(
                "  trunk sw{from}->sw{to}: {} frames, {} busy",
                trunk.frames, trunk.busy_time,
            );
        }
    }

    println!(
        "\ndelivered {} real-time frames over the fabric, deadline misses: {}",
        stats.rt_delivered, stats.total_deadline_misses
    );
    println!("run summary: {}", stats.summary());
    assert!(
        stats.rt_delivered > 1000,
        "the example must drive > 1000 RT frames"
    );
    assert!(stats.all_deadlines_met());
    assert_eq!(stats.clamped_events, 0, "no causality clamps may occur");
    println!("every frame met its deadline -> the multi-hop guarantee HELD");
}
