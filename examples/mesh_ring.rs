//! RT channels over a *cyclic* fabric — a ring of four access switches,
//! routed by shortest paths, running end to end on the (simulated) wire.
//!
//! The paper's analysis treats every directed link as an independent EDF
//! processor, so nothing stops the fabric from containing cycles once path
//! selection is explicit: `RtNetworkBuilder` + `ShortestPathRouter` build a
//! ring (the line of `multiswitch_fabric` plus one redundant closing
//! trunk), admission runs the per-link EDF test along each channel's
//! *routed* path, and the wire follows the same route through per-channel
//! forwarding entries.
//!
//! The example establishes cross-switch channels all around the ring,
//! drives more than 1000 real-time frames and checks that every single one
//! met both its stamped deadline and the hop-count-aware analytical bound
//! `d_i·slot + T_latency(hops)`.
//!
//! Run with: `cargo run --example mesh_ring`

use switched_rt_ethernet::core::{MultiHopDps, RtChannelSpec, RtNetwork};
use switched_rt_ethernet::traffic::FabricScenario;
use switched_rt_ethernet::types::{Duration, HopLink, ShortestPathRouter, SwitchId};

fn main() {
    // 1. The fabric: sw0 - sw1 - sw2 - sw3 - sw0, two masters and two
    //    slaves per switch (nodes 0..16, switch-major).
    let fabric = FabricScenario::ring(4, 2, 2);
    let topology = fabric.topology();
    assert!(!topology.is_tree(), "the ring must be cyclic");
    let mut network = RtNetwork::builder()
        .topology(topology)
        .router(ShortestPathRouter::new())
        .multihop_dps(MultiHopDps::Asymmetric)
        .build()
        .expect("shortest-path routing serves any connected mesh");
    println!(
        "fabric: ring of {} switches ({} trunks, cyclic), {} end nodes, router {:?}",
        fabric.switch_count(),
        network.simulator().topology().trunk_count(),
        fabric.node_count(),
        network.router().name(),
    );

    // 2. Request cross-switch channels with the paper's traffic contract.
    //    The rotation visits every switch pair, so both ring directions and
    //    the closing trunk all carry channels.
    let spec = RtChannelSpec::paper_default();
    let requests = fabric.cross_switch_requests(12, spec);
    let mut established = Vec::new();
    println!("\nestablishing {} cross-switch channels:", requests.len());
    for r in &requests {
        match network
            .establish_channel(r.source, r.destination, r.spec)
            .expect("handshake completes")
        {
            Some(tx) => {
                let route = network
                    .manager()
                    .channel_route(tx.id)
                    .expect("channel known");
                println!(
                    "  {} -> {}  accepted as {} ({} hops: {})",
                    r.source,
                    r.destination,
                    tx.id,
                    route.path.len(),
                    route.path,
                );
                // On the 4-ring no shortest route needs more than 2 trunks.
                assert!(route.path.len() <= 4);
                established.push((r.source, tx));
            }
            None => println!(
                "  {} -> {}  rejected (a link on the route is full)",
                r.source, r.destination
            ),
        }
    }

    // 3. Periodic traffic: enough messages that well over 1000 RT data
    //    frames cross the fabric (C = 3 frames per message).
    let messages_per_channel = 1 + 1000 / (established.len() as u64 * spec.capacity.get());
    let start = network.now() + Duration::from_millis(1);
    for (source, tx) in &established {
        network
            .send_periodic(*source, tx.id, messages_per_channel, 1400, start)
            .expect("send periodic");
    }
    network.run_to_completion().expect("simulation runs");

    // 4. The guarantee, per channel and globally: every measured worst-case
    //    delay within the hop-aware Eq. 18.1 bound of the *selected* route.
    let stats = network.simulator().stats();
    println!("\nper-channel results ({messages_per_channel} messages each):");
    for (_, tx) in &established {
        let ch = stats.channel(tx.id).expect("channel delivered frames");
        let bound = network.channel_deadline_bound(tx.id).expect("bound");
        println!(
            "  {}  frames={:<4} worst={:<12} mean={:<12} bound={:<12} misses={}",
            tx.id,
            ch.delivered,
            ch.max_latency.to_string(),
            ch.mean_latency().to_string(),
            bound.to_string(),
            ch.deadline_misses,
        );
        assert!(ch.max_latency <= bound, "hop-aware Eq. 18.1 bound violated");
        assert_eq!(ch.deadline_misses, 0);
    }

    // The closing trunk is real traffic-bearing capacity, not decoration.
    let closing = [(3u32, 0u32), (0, 3)]
        .iter()
        .filter_map(|&(from, to)| {
            stats.hop_link(HopLink::Trunk {
                from: SwitchId::new(from),
                to: SwitchId::new(to),
            })
        })
        .map(|l| l.frames)
        .sum::<u64>();
    println!("\nclosing trunk sw3<->sw0 carried {closing} frames");
    assert!(closing > 0, "shortest paths must use the closing trunk");

    println!(
        "delivered {} real-time frames over the ring, deadline misses: {}",
        stats.rt_delivered, stats.total_deadline_misses
    );
    assert!(
        stats.rt_delivered > 1000,
        "the example must drive > 1000 RT frames"
    );
    assert!(stats.all_deadlines_met());
    println!("every frame met its deadline -> the guarantee HELD on a cyclic fabric");
}
