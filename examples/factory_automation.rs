//! A factory-automation cell: heterogeneous control loops over one switch.
//!
//! The scenario the paper's introduction motivates: a controller node runs
//! several control loops against sensors and actuators with *different*
//! periods and deadlines —
//!
//! * a fast motion-control loop (tight deadline, small payload, short
//!   period),
//! * a medium-rate pressure/flow loop,
//! * a slow temperature monitoring loop with a relaxed deadline,
//!
//! while a best-effort file transfer (e.g. a firmware update) crosses the
//! same links.  The example establishes all channels over the wire, runs one
//! second of simulated traffic and reports the per-channel worst-case
//! latency against each loop's own bound.
//!
//! Run with: `cargo run --example factory_automation`

use switched_rt_ethernet::core::{DpsKind, RtChannelSpec, RtNetwork};
use switched_rt_ethernet::types::{Duration, NodeId, Slots};

struct ControlLoop {
    name: &'static str,
    destination: NodeId,
    spec: RtChannelSpec,
    payload: usize,
}

fn main() {
    // Node 0: the controller (master).  Nodes 1..=3: drive, valve, sensor.
    let mut network = RtNetwork::builder()
        .star(5)
        .dps(DpsKind::Asymmetric)
        .build()
        .expect("a star always builds");
    let controller = NodeId::new(0);

    let loops = [
        ControlLoop {
            name: "motion control",
            destination: NodeId::new(1),
            // 1 frame every 8 slots (~1 ms at 100 Mbit/s), deadline 4 slots.
            spec: RtChannelSpec::new(Slots::new(8), Slots::new(1), Slots::new(4)).unwrap(),
            payload: 128,
        },
        ControlLoop {
            name: "pressure loop",
            destination: NodeId::new(2),
            // 2 frames every 80 slots, deadline 30 slots.
            spec: RtChannelSpec::new(Slots::new(80), Slots::new(2), Slots::new(30)).unwrap(),
            payload: 600,
        },
        ControlLoop {
            name: "temperature scan",
            destination: NodeId::new(3),
            // 3 frames every 400 slots, deadline 200 slots.
            spec: RtChannelSpec::new(Slots::new(400), Slots::new(3), Slots::new(200)).unwrap(),
            payload: 1400,
        },
    ];

    println!("establishing control loops from the controller (node0):");
    let mut established = Vec::new();
    for l in &loops {
        let tx = network
            .establish_channel(controller, l.destination, l.spec)
            .expect("handshake completes")
            .expect("cell has capacity for its own control loops");
        println!(
            "  {:<17} -> {}  P={} C={} d={}  channel {}",
            l.name, l.destination, l.spec.period, l.spec.capacity, l.spec.deadline, tx.id
        );
        established.push((l, tx));
    }

    // One simulated second of traffic per loop.
    let start = network.now() + Duration::from_millis(1);
    let slot = network.simulator().config().link_speed.slot_duration();
    for (l, tx) in &established {
        let period = slot.saturating_mul(l.spec.period.get());
        let messages = Duration::from_secs(1).as_nanos() / period.as_nanos().max(1);
        network
            .send_periodic(controller, tx.id, messages, l.payload, start)
            .expect("send periodic");
    }
    // A best-effort firmware download to the drive over the same links.
    for k in 0..500u64 {
        network
            .send_best_effort(
                controller,
                NodeId::new(1),
                1400,
                start + slot.saturating_mul(2 * k),
            )
            .expect("send best effort");
    }

    network.run_to_completion().expect("simulation runs");
    let stats = network.simulator().stats();

    println!("\nper-loop results after 1 s of simulated traffic:");
    for (l, tx) in &established {
        let channel_stats = stats.channel(tx.id).expect("loop delivered frames");
        let bound = network.deadline_bound(&l.spec);
        println!(
            "  {:<17} frames={:<5} worst={:<12} mean={:<12} bound={:<12} misses={}",
            l.name,
            channel_stats.delivered,
            channel_stats.max_latency.to_string(),
            channel_stats.mean_latency().to_string(),
            bound.to_string(),
            channel_stats.deadline_misses
        );
        assert!(channel_stats.max_latency <= bound);
        assert_eq!(channel_stats.deadline_misses, 0);
    }
    println!(
        "\nbest-effort firmware frames delivered alongside: {} (dropped {})",
        stats.be_delivered, stats.be_dropped
    );
    println!("all control loops met their deadlines while the download ran.");
}
