//! Master/slave admission control: SDPS vs ADPS (the paper's headline
//! result, Figure 18.5, at one operating point).
//!
//! An industrial cell with 10 masters (controllers) and 50 slaves (drives,
//! I/O stations) requests 200 identical RT channels master → slave.  The
//! example runs the switch's admission control twice — once with symmetric
//! deadline partitioning, once with asymmetric — and prints how many
//! channels each master managed to open, illustrating how ADPS removes the
//! uplink bottleneck.
//!
//! Run with: `cargo run --example master_slave_admission`

use switched_rt_ethernet::core::{
    AdmissionController, AdmissionDecision, DpsKind, RtChannelSpec, SystemState,
};
use switched_rt_ethernet::traffic::{RequestPattern, Scenario};
use switched_rt_ethernet::types::LinkId;

fn run(dps: DpsKind) -> (u64, Vec<u64>) {
    let scenario = Scenario::paper_master_slave();
    let spec = RtChannelSpec::paper_default();
    let requests = RequestPattern::MasterSlaveRoundRobin.generate(&scenario, 200, spec);

    let mut switch =
        AdmissionController::new(SystemState::with_nodes(scenario.nodes()), dps.build());
    let mut per_master = vec![0u64; scenario.master_count() as usize];
    for request in &requests {
        match switch
            .request(request.source, request.destination, request.spec)
            .expect("valid request")
        {
            AdmissionDecision::Accepted(_) => {
                per_master[request.source.get() as usize] += 1;
            }
            AdmissionDecision::Rejected { .. } => {}
        }
    }
    // Show the final reserved utilisation of master 0's uplink.
    let uplink_util = switch
        .state()
        .link_utilisation(LinkId::uplink(scenario.master(0)));
    println!(
        "  {} accepted {} / 200 channels; master0 uplink utilisation {:.1}%",
        switch.dps_name(),
        switch.accepted_count(),
        uplink_util * 100.0
    );
    (switch.accepted_count(), per_master)
}

fn main() {
    println!("Master/slave admission with the paper's parameters (C=3, P=100, D=40):\n");
    let (sdps_total, sdps_per_master) = run(DpsKind::Symmetric);
    let (adps_total, adps_per_master) = run(DpsKind::Asymmetric);

    println!("\nchannels per master (10 masters):");
    println!("  SDPS: {sdps_per_master:?}");
    println!("  ADPS: {adps_per_master:?}");
    println!(
        "\nADPS accepted {:.1}x as many channels as SDPS ({adps_total} vs {sdps_total}).",
        adps_total as f64 / sdps_total as f64
    );
    assert!(adps_total > sdps_total);
}
