//! # switched-rt-ethernet
//!
//! A reproduction of *"Real-Time Communication for Industrial Embedded
//! Systems Using Switched Ethernet"* (Hoang & Jonsson, 2004): hard-real-time
//! periodic traffic over unmodified full-duplex switched Ethernet, using a
//! thin RT layer, per-link EDF scheduling, switch-side admission control and
//! deadline partitioning (SDPS / ADPS).
//!
//! This facade crate re-exports the workspace crates under one roof:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`types`] | `rt-types` | time slots, simulated time, ids, addresses, constants |
//! | [`frames`] | `rt-frames` | Ethernet/IPv4/UDP codecs, RequestFrame, ResponseFrame, deadline-stamped data frames |
//! | [`edf`] | `rt-edf` | EDF theory: utilisation, busy periods, `h(t)`, feasibility tests, EDF/FCFS queues |
//! | [`netsim`] | `rt-netsim` | discrete-event simulator of the switched Ethernet star |
//! | [`core`] | `rt-core` | RT channels, DPS (SDPS/ADPS), admission control, switch manager, node RT layer, full-stack network |
//! | [`traffic`] | `rt-traffic` | scenarios, request patterns, background traffic, seeded RNG |
//!
//! ## Quick example: admission control with ADPS
//!
//! ```
//! use switched_rt_ethernet::core::{AdmissionController, DpsKind, RtChannelSpec, SystemState};
//! use switched_rt_ethernet::types::NodeId;
//!
//! // A star with one master (node 0) and three slaves.
//! let state = SystemState::with_nodes((0..4).map(NodeId::new));
//! let mut switch = AdmissionController::new(state, DpsKind::Asymmetric.build());
//!
//! // Request RT channels with the paper's parameters (C=3, P=100, d=40).
//! let spec = RtChannelSpec::paper_default();
//! let decision = switch.request(NodeId::new(0), NodeId::new(1), spec).unwrap();
//! assert!(decision.is_accepted());
//! let channel = decision.channel().unwrap();
//! assert_eq!(channel.split.uplink + channel.split.downlink, spec.deadline);
//! ```
//!
//! See the `examples/` directory for end-to-end scenarios that run the full
//! handshake and periodic traffic over the simulated network.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Foundation types (`rt-types`).
pub mod types {
    pub use rt_types::*;
}

/// Wire formats (`rt-frames`).
pub mod frames {
    pub use rt_frames::*;
}

/// EDF scheduling theory and queues (`rt-edf`).
pub mod edf {
    pub use rt_edf::*;
}

/// Discrete-event network simulator (`rt-netsim`).
pub mod netsim {
    pub use rt_netsim::*;
}

/// The RT layer, deadline partitioning and admission control (`rt-core`).
pub mod core {
    pub use rt_core::*;
}

/// Workload and scenario generation (`rt-traffic`).
pub mod traffic {
    pub use rt_traffic::*;
}

pub use rt_core::{
    AdmissionController, Adps, ChannelManager, DeadlinePartitioningScheme, DpsKind,
    FabricChannelManager, MultiHopAdmission, MultiHopDps, RtChannel, RtChannelSpec, RtNetwork,
    RtNetworkBuilder, Sdps, SystemState,
};
pub use rt_types::{
    ChannelId, EcmpRouter, HopLink, LinkId, NodeId, Route, Router, ShortestPathRouter, Slots,
    SwitchId, Topology, TreeRouter,
};
